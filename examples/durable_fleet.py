"""Durable fleet monitoring: open, ingest, checkpoint, crash, recover.

A monitoring engine that serves real traffic cannot afford either failure
mode of naive snapshotting: losing everything since the last snapshot
when the process dies, or paying a full-fleet serialization every time it
wants safety.  This example walks the durable-session lifecycle that
fixes both:

1. ``MultiSeriesEngine.open(store, spec=...)`` starts a session whose
   configuration is committed to the store's manifest immediately;
2. every ingested batch is appended to the write-ahead log *before* the
   engine advances, so a kill -9 at any moment loses at most the
   in-flight batch;
3. ``engine.checkpoint()`` persists only the *cohorts* that changed --
   on a mostly-idle fleet that is a couple of small segment files;
4. a "crashed" process (here: simply abandoning the engine object
   without ``close()``) is recovered by reopening the store: spec from
   the manifest, state from the segments, the surviving WAL tail
   replayed bit-identically;
5. the recovered engine's outputs are compared against an uninterrupted
   twin to show the streams are exactly equal.

Run with::

    PYTHONPATH=src python examples/durable_fleet.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec
from repro.streaming import MultiSeriesEngine

PERIOD = 48
N_HOSTS = 12
ROUNDS = PERIOD * 10


def make_fleet(seed: int = 7) -> dict:
    """Per-host latency-like series: daily season, drift, noise."""
    rng = np.random.default_rng(seed)
    time_axis = np.arange(ROUNDS)
    fleet = {}
    for host in range(N_HOSTS):
        values = (
            20.0
            + 6.0 * np.sin(2 * np.pi * time_axis / PERIOD + 0.3 * host)
            + 0.01 * time_axis
            + rng.normal(0.0, 0.4, ROUNDS)
        )
        fleet[f"web-{host:02d}.latency_ms"] = values
    return fleet


def main() -> None:
    spec = EngineSpec(
        pipeline=PipelineSpec(
            decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
            detector=DetectorSpec("nsigma", {"threshold": 5.0}),
        ),
        initialization_length=4 * PERIOD,
    )
    fleet = make_fleet()
    batches = [
        [(key, values[position]) for key, values in fleet.items()]
        for position in range(ROUNDS)
    ]
    root = Path(tempfile.mkdtemp(prefix="durable-fleet-")) / "store"

    # ------------------------------------------------- phase 1: live engine
    engine = MultiSeriesEngine.open(root, spec=spec)
    checkpoint_at = PERIOD * 6
    crash_at = PERIOD * 8
    for batch in batches[:checkpoint_at]:
        engine.ingest(batch)
    summary = engine.checkpoint()
    print(
        f"checkpoint: generation {summary.generation}, wrote "
        f"{summary.cohorts_written}/{summary.cohorts_total} cohorts "
        f"({summary.series_written} series)"
    )
    for batch in batches[checkpoint_at:crash_at]:
        engine.ingest(batch)
    points_before_crash = engine.fleet_stats().points_total
    print(
        f"crash! engine dies with {points_before_crash} points ingested, "
        f"{crash_at - checkpoint_at} rounds of them only in the WAL"
    )
    # No close(), no checkpoint: the process is gone.  (The WAL already
    # holds every batch since the last checkpoint.)
    del engine

    # ------------------------------------------------- phase 2: recovery
    recovered = MultiSeriesEngine.open(root)  # spec comes from the manifest
    print(
        f"recovered: {len(recovered)} series, "
        f"{recovered.fleet_stats().points_total} points "
        "(checkpoint + WAL replay)"
    )
    assert recovered.fleet_stats().points_total == points_before_crash

    # ------------------------------------- phase 3: prove nothing was lost
    oracle = MultiSeriesEngine.from_spec(spec)
    for batch in batches[:crash_at]:
        oracle.ingest(batch)
    mismatches = 0
    anomalies = 0
    for batch in batches[crash_at:]:
        recovered_records = recovered.ingest(batch)
        oracle_records = oracle.ingest(batch)
        anomalies += sum(record.is_anomaly for record in recovered_records)
        if [r.record for r in recovered_records] != [
            r.record for r in oracle_records
        ]:
            mismatches += 1
    print(
        f"streamed {ROUNDS - crash_at} post-recovery rounds: "
        f"{mismatches} mismatching rounds vs an uninterrupted engine, "
        f"{anomalies} anomalies flagged"
    )
    assert mismatches == 0, "recovery must be bit-identical"

    recovered.close()  # final checkpoint; WAL is now empty
    print(f"closed cleanly; store at {root} survives for the next run")
    shutil.rmtree(root.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
