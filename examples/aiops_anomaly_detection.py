"""AIOps-style anomaly detection on a cloud request-rate stream.

This is the scenario that motivates the paper: a database-service request
rate with daily seasonality is monitored online; operators want alerts with
low latency when the metric misbehaves.  The script injects three incidents
(a spike, a dip and a short outage) into a Real1-like trace, wires
OneShotSTL into the streaming pipeline, and reports which incidents were
flagged and how quickly.

Run with:  python examples/aiops_anomaly_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import inject_collective, inject_dip, inject_spike, make_real1_like
from repro.periodicity import find_length
from repro.streaming import StreamingPipeline
from repro.core import OneShotSTL


def main() -> None:
    # A request-rate-shaped trace with daily seasonality (period 400 here).
    trace = make_real1_like(length=4800, period=400, seed=21)
    values = trace.values.copy()

    # Three injected incidents in the online region.
    incidents = {}
    values, labels = inject_spike(values, 2600, magnitude=6.0)
    incidents["traffic spike"] = (2600, labels)
    values, labels = inject_dip(values, 3300, magnitude=6.0)
    incidents["traffic drop"] = (3300, labels)
    values, labels = inject_collective(values, 4000, length=40, magnitude=3.0)
    incidents["partial outage"] = (4000, labels)

    # Initialize on the first four days.
    initialization_length = 1600
    period = find_length(values[:initialization_length], max_period=800)
    print(f"detected period: {period}")

    pipeline = StreamingPipeline(
        OneShotSTL(period, shift_window=20), anomaly_threshold=5.0
    )
    pipeline.initialize(values[:initialization_length])

    alerts = []
    for record in map(pipeline.process, values[initialization_length:]):
        if record.is_anomaly:
            alerts.append(record.index)

    print(f"number of alert points: {len(alerts)}")
    for name, (position, _) in incidents.items():
        matching = [alert for alert in alerts if abs(alert - position) <= 50]
        if matching:
            delay = min(matching) - position
            print(f"  {name:15s} at index {position}: detected (delay {delay:+d} points)")
        else:
            print(f"  {name:15s} at index {position}: MISSED")

    false_alarms = [
        alert
        for alert in alerts
        if all(abs(alert - position) > 50 for position, _ in incidents.values())
    ]
    print(f"alert points outside any incident window: {len(false_alarms)}")

    # The pipeline can also forecast the next hour of traffic for capacity
    # planning.
    forecast = pipeline.forecast(60)
    print("forecast for the next 60 points:", np.round(forecast[:5], 3), "...")


if __name__ == "__main__":
    main()
