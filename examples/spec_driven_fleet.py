"""Spec-driven fleet: JSON configuration, per-key overrides, portable checkpoints.

Where ``fleet_monitoring.py`` hand-wires its engine, this script treats the
deployment as *data*, the way a production config system would:

* the whole fleet -- decomposer, scorer, initialization window, and
  per-metric-class overrides -- is one JSON document, parsed into an
  :class:`~repro.specs.EngineSpec` and built through the component
  registry (``repro.registry``);
* most metrics run the fleet default (OneShotSTL, 15-minute daily
  seasonality), while one latency metric overrides to a different period
  and a stricter threshold -- heterogeneous fleets, one engine;
* mid-stream the engine is saved to a **versioned portable checkpoint**
  (``{format_version, engine_spec, per-series state}``) and reloaded as a
  brand-new engine built only from that file, simulating a worker handoff;
  the script verifies the continued stream is identical to the
  uninterrupted one.

Run with:  PYTHONPATH=src python examples/spec_driven_fleet.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import EngineSpec, MultiSeriesEngine, build

PERIOD = 96  # one day at 15-minute resolution
DAYS = 7

#: the deployment, exactly as it would sit in a config repository
FLEET_CONFIG = json.dumps(
    {
        "pipeline": {
            "decomposer": {
                "name": "oneshotstl",
                # Stiff trend (lambda=100): the trend must not bend around
                # outliers before the residual is scored (README quickstart).
                "params": {
                    "period": PERIOD,
                    "lambda1": 100.0,
                    "lambda2": 100.0,
                    "shift_window": 0,
                },
            },
            "detector": {"name": "nsigma", "params": {"threshold": 5.0}},
        },
        "initialization_length": 4 * PERIOD,
        "overrides": {
            # Latency has a shorter cycle and pages earlier than traffic.
            "db-01.latency_ms": {
                "decomposer": {
                    "name": "oneshotstl",
                    "params": {
                        "period": PERIOD // 2,
                        "lambda1": 100.0,
                        "lambda2": 100.0,
                        "shift_window": 0,
                    },
                },
                "detector": {"name": "nsigma", "params": {"threshold": 4.0}},
            }
        },
    }
)


def make_metric(key: str, rng: np.random.Generator) -> np.ndarray:
    time = np.arange(PERIOD * DAYS)
    if key == "db-01.latency_ms":
        values = 3.0 + 0.5 * np.sin(2 * np.pi * time / (PERIOD // 2))
        values = values + rng.normal(0.0, 0.05, time.size)
        values[PERIOD * 5 + 17] += 4.0  # a slow-query incident
        return values
    host = int(key.split("-")[1].split(".")[0])
    level = 50.0 + 10.0 * host
    values = level + 8.0 * np.sin(2 * np.pi * time / PERIOD)
    values = values + rng.normal(0.0, 0.8, time.size)
    if host == 2:
        values[PERIOD * 5 + 40] += 35.0  # a traffic spike
    return values


def main() -> None:
    rng = np.random.default_rng(23)
    spec = EngineSpec.from_json(FLEET_CONFIG)
    print("fleet default:", spec.pipeline.decomposer.name, spec.pipeline.decomposer.params)
    for key, override in spec.overrides.items():
        print(f"override for {key}:", override.decomposer.params)

    engine = build(spec)
    keys = [f"host-{index:02d}.req_rate" for index in range(1, 5)]
    keys.append("db-01.latency_ms")
    data = {key: make_metric(key, rng) for key in keys}
    length = PERIOD * DAYS
    cut = PERIOD * 5  # checkpoint here, mid-stream

    def batches(start: int, stop: int):
        for position in range(start, stop):
            yield [(key, float(data[key][position])) for key in keys]

    for batch in batches(0, cut):
        engine.ingest(batch)

    checkpoint = Path(tempfile.gettempdir()) / "spec_driven_fleet.ckpt"
    engine.save(checkpoint)
    print(f"\nsaved checkpoint: {checkpoint} ({checkpoint.stat().st_size} bytes)")

    # Continue the original engine...
    original_tail = [engine.ingest(batch) for batch in batches(cut, length)]
    # ...and, independently, a fresh engine built only from the file.
    restored = MultiSeriesEngine.load(checkpoint)
    restored_tail = [restored.ingest(batch) for batch in batches(cut, length)]

    identical = all(
        [r.record for r in expected] == [r.record for r in actual]
        for expected, actual in zip(original_tail, restored_tail)
    )
    print("restored stream identical to uninterrupted run:", identical)
    if not identical:
        raise SystemExit("checkpoint round-trip diverged!")

    print("\nper-series anomalies (restored engine):")
    stats = restored.fleet_stats()
    for key in keys:
        series = stats.per_series[key]
        print(f"  {key:22s} status={series.status.value:7s} anomalies={series.anomalies}")
    checkpoint.unlink()


if __name__ == "__main__":
    main()
