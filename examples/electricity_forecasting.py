"""Long-horizon forecasting on an Electricity-like load series.

Compares OneShotSTL's decomposition-based forecast against a seasonal-naive
baseline and the direct ridge proxy on a strongly seasonal electricity-load
style series, using the same rolling-origin protocol as the paper's
Table 5, and reports both accuracy and wall-clock time.

Run with:  python examples/electricity_forecasting.py
"""

from __future__ import annotations

import time

from repro.datasets import make_tsf_dataset
from repro.forecasting import (
    DirectRidgeForecaster,
    OneShotSTLForecaster,
    SeasonalNaiveForecaster,
    evaluate_on_series,
)


def main() -> None:
    series = make_tsf_dataset("Electricity", seed=1)
    horizon = 96
    print(f"dataset: {series.name}, period {series.period}, length {len(series)}")
    print(f"forecast horizon: {horizon}, rolling origins: 5\n")

    forecasters = [
        SeasonalNaiveForecaster(series.period),
        DirectRidgeForecaster(input_window=4 * series.period, horizon=horizon),
        OneShotSTLForecaster(series.period, shift_window=20),
    ]

    print(f"{'method':15s} {'MAE':>8s} {'MSE':>8s} {'seconds':>8s}")
    for forecaster in forecasters:
        start = time.perf_counter()
        evaluation = evaluate_on_series(forecaster, series, horizon=horizon, max_origins=5)
        elapsed = time.perf_counter() - start
        print(
            f"{evaluation.method:15s} {evaluation.mae:8.4f} {evaluation.mse:8.4f} {elapsed:8.2f}"
        )

    print(
        "\nOn strongly seasonal load data the decomposition-based forecast is "
        "competitive with the trained model at a fraction of the cost, which "
        "is the paper's Table 5 takeaway."
    )


if __name__ == "__main__":
    main()
