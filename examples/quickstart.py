"""Quickstart: online seasonal-trend decomposition with OneShotSTL.

The script builds a seasonal stream with a trend break, detects its period,
selects the smoothness parameter the way the paper does, initializes
OneShotSTL on a four-period prefix, decomposes the rest of the stream one
point at a time, and finally forecasts one period ahead.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import OneShotSTL, find_length, select_lambda
from repro.datasets import make_syn1
from repro.metrics import mae


def main() -> None:
    # 1. A synthetic stream with known ground-truth components.
    data = make_syn1(length=3000, period=200, seed=0)
    values = data.values

    # 2. Estimate the seasonal period from the initialization window, as a
    #    production system would (the generator used period = 200).
    initialization_length = 4 * 200
    period = find_length(values[:initialization_length], max_period=600)
    print(f"detected period: {period} (ground truth 200)")

    # 3. Select the trend-smoothness parameter on the training window by
    #    matching batch STL (paper Section 5.1.4).
    smoothness = select_lambda(
        values[:initialization_length], period, iterations=4, method="jointstl"
    )
    print(f"selected lambda: {smoothness}")

    # 4. Initialize on the prefix, then stream the rest.
    model = OneShotSTL(period, lambda1=smoothness, lambda2=smoothness, shift_window=20)
    model.initialize(values[:initialization_length])

    trends, seasonals, residuals = [], [], []
    for value in values[initialization_length:]:
        point = model.update(float(value))
        trends.append(point.trend)
        seasonals.append(point.seasonal)
        residuals.append(point.residual)

    online = slice(initialization_length, None)
    print(f"trend    MAE vs ground truth: {mae(data.trend[online], trends):.4f}")
    print(f"seasonal MAE vs ground truth: {mae(data.seasonal[online], seasonals):.4f}")
    print(f"residual standard deviation : {np.std(residuals):.4f}")

    # 5. Forecast one period ahead from the end of the stream.
    forecast = model.forecast(period)
    print(f"forecast for the next period: min={forecast.min():.2f} max={forecast.max():.2f}")
    print("first five forecast values  :", np.round(forecast[:5], 3))


if __name__ == "__main__":
    main()
