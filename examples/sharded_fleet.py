"""Sharded serving: four worker processes, a SIGKILL, and a failover.

One process eventually runs out of cores and memory for a keyed fleet.
The sharding tier (``repro.sharding``) scales the durable engine
horizontally while keeping its exactness contract:

1. ``ClusterSpec.for_root(spec, root, n_shards=4)`` describes the tier
   as plain data -- one shared ``EngineSpec`` plus one checkpoint-store
   directory per shard;
2. ``ShardRouter(cluster)`` starts the workers, each a durable
   ``MultiSeriesEngine.open()`` session over its own exclusively-locked
   store; series keys map to shards by consistent hashing;
3. ``router.ingest({key: values})`` fans a columnar grid out with one
   message per shard and fans the result arrays back in -- never
   per-point IPC;
4. a worker killed with ``SIGKILL`` (here: deliberately; in production:
   the OOM killer) is replaced on the next request -- the replacement
   reopens the dead worker's store and replays the surviving WAL prefix
   bit-identically.  The raised ``ShardFailoverError`` says whether the
   in-flight slice survived into the WAL, so the caller knows exactly
   whether to re-send it;
5. the recovered cluster's outputs are compared against a single
   uninterrupted in-process engine to show nothing drifted;
6. a *hung* worker (injected via the ``repro.faults`` plan a router can
   ship to its workers) is caught by the request watchdog -- the router
   SIGKILLs it past the deadline and fails over, reporting
   ``cause="hang"`` instead of ``"crash"``;
7. a corrupted checkpoint segment (one flipped bit on disk) is
   quarantined on the next start under the router's default
   ``recovery="quarantine"`` policy: the shard comes up serving every
   other series, and ``router.health()`` names exactly the keys that
   were lost with the damaged cohort.

Run with::

    PYTHONPATH=src python examples/sharded_fleet.py
"""

import json
import os
import shutil
import signal
import tempfile
from pathlib import Path

import numpy as np

from repro.faults import WORKER_RECV, FaultInjector
from repro.sharding import (
    ClusterSpec,
    ConsistentHashRing,
    ShardFailoverError,
    ShardRouter,
)
from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec
from repro.streaming import MultiSeriesEngine

PERIOD = 24
N_SERIES = 40
N_SHARDS = 4
ROUNDS = PERIOD * 10
CHUNK = PERIOD


def make_fleet(seed: int = 11) -> dict:
    """Per-sensor series: daily season, drift, noise."""
    rng = np.random.default_rng(seed)
    time_axis = np.arange(ROUNDS)
    fleet = {}
    for sensor in range(N_SERIES):
        values = (
            50.0
            + 8.0 * np.sin(2 * np.pi * time_axis / PERIOD + 0.2 * sensor)
            + 0.02 * time_axis
            + rng.normal(0.0, 0.5, ROUNDS)
        )
        fleet[f"sensor-{sensor:03d}"] = values
    return fleet


def main() -> None:
    spec = EngineSpec(
        pipeline=PipelineSpec(
            decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
            detector=DetectorSpec("nsigma", {"threshold": 5.0}),
        ),
        initialization_length=4 * PERIOD,
    )
    fleet = make_fleet()
    root = Path(tempfile.mkdtemp(prefix="sharded-fleet-")) / "cluster"
    cluster = ClusterSpec.for_root(spec, root, n_shards=N_SHARDS)
    chunks = [
        {key: values[start : start + CHUNK] for key, values in fleet.items()}
        for start in range(0, ROUNDS, CHUNK)
    ]
    kill_before_chunk = len(chunks) - 3

    with ShardRouter(cluster) as router:
        placement: dict = {}
        for key in fleet:
            placement.setdefault(router.shard_of(key), []).append(key)
        print(
            f"{N_SERIES} series across {N_SHARDS} shards: "
            + ", ".join(
                f"{shard}={len(keys)}"
                for shard, keys in sorted(placement.items())
            )
        )
        anomalies = 0
        for position, chunk in enumerate(chunks):
            if position == kill_before_chunk:
                # Simulate an external failure (an OOM kill, a node
                # reboot) by SIGKILLing one worker process outright.
                victim = router.shard_of("sensor-000")
                os.kill(router._workers[victim].process.pid, signal.SIGKILL)
                print(f"killed the worker serving {victim!r} (SIGKILL)")
            try:
                result = router.ingest(chunk)
            except ShardFailoverError as failover:
                print(
                    f"failover: shard {failover.shard_id!r} replaced, "
                    f"recovered to {failover.recovered_points} points; "
                    + (
                        "in-flight slice survived the WAL"
                        if failover.batch_survived
                        else "in-flight slice lost -- re-sending it"
                    )
                )
                retry = {
                    key: values
                    for key, values in chunk.items()
                    if router.shard_of(key) == failover.shard_id
                }
                if failover.batch_survived:
                    retry = {}
                survivors = {
                    key: values
                    for key, values in chunk.items()
                    if key not in retry
                }
                # Survivor shards already applied their slices (per-shard
                # application is not transactional across the cluster),
                # so only the failed shard's keys go around again.
                del survivors
                if retry:
                    result = router.ingest(retry)
                    anomalies += int(result.is_anomaly.sum())
                continue
            anomalies += int(result.is_anomaly.sum())
        stats = router.stats()
        print(
            f"cluster after failover: {stats.series_total} series, "
            f"{stats.points_total} points, {anomalies} anomalies flagged"
        )
        assert stats.points_total == N_SERIES * ROUNDS

        # ------------------------------- prove the failover lost nothing
        oracle = MultiSeriesEngine.from_spec(spec)
        oracle.ingest(fleet)
        drifted = [
            key
            for key in fleet
            if not np.array_equal(
                router.forecast(key, PERIOD), oracle.forecast(key, PERIOD)
            )
        ]
        print(
            f"forecast parity vs an uninterrupted engine: "
            f"{N_SERIES - len(drifted)}/{N_SERIES} series bit-identical"
        )
        assert not drifted, "failover must be bit-identical"

    print(f"closed cleanly; stores under {root} survive for the next run")

    # ------------------------------------------- self-healing demo: hang
    # A worker that stops answering (a livelock, a stuck disk) is worse
    # than one that dies: nothing closes the pipe.  The router's watchdog
    # times the request out, SIGKILLs the hung worker and fails over the
    # same way -- the injected fault below makes the victim sleep on its
    # next command, far past the 2 s request deadline.
    victim = ConsistentHashRing(
        [shard.shard_id for shard in cluster.shards]
    ).shard_for("sensor-000")
    hang_plan = [FaultInjector(point=WORKER_RECV, action="hang", duration=60.0)]
    with ShardRouter(
        cluster, request_timeout=2.0, fault_plans={victim: hang_plan}
    ) as router:
        try:
            router.forecast("sensor-000", PERIOD)
        except ShardFailoverError as failover:
            print(
                f"hang: shard {failover.shard_id!r} missed its deadline "
                f"(cause={failover.cause!r}); watchdog killed it and a "
                "replacement recovered the store"
            )
        router.forecast("sensor-000", PERIOD)  # the replacement answers
        health = router.health()[victim]
        print(
            f"health after the hang: state={health.state!r}, "
            f"restarts={health.restarts}"
        )

    # ------------------------------------- self-healing demo: corruption
    # Flip one bit inside a checkpoint segment -- silent disk corruption.
    # recovery="strict" (the engine default) would refuse the store; the
    # router's default recovery="quarantine" moves the damaged cohort
    # aside, serves everything else, and names the lost keys in health().
    store_root = Path(
        next(s.store_path for s in cluster.shards if s.shard_id == victim)
    )
    manifest = json.loads((store_root / "MANIFEST.json").read_text())
    segment = manifest["cohorts"][0]["segment"]
    segment_path = store_root / "segments" / segment
    raw = bytearray(segment_path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    segment_path.write_bytes(bytes(raw))
    print(f"flipped one bit in {victim!r}'s segment {segment!r}")

    with ShardRouter(cluster) as router:
        health = router.health()[victim]
        stats = router.stats()
        print(
            f"quarantine: shard {victim!r} came up {health.state!r}, "
            f"lost {len(health.quarantined_keys)} series "
            f"({sorted(health.quarantined_keys)[:3]} ...); cluster serves "
            f"{stats.series_total}/{N_SERIES} series"
        )
        assert health.state == "degraded"
        assert 0 < stats.series_total < N_SERIES

    shutil.rmtree(root.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
