"""Fleet monitoring: one engine, hundreds of metrics, checkpoint/resume.

The paper's O(1) update makes online decomposition cheap enough to run on
*every* monitored metric.  This script simulates a small service fleet --
one request-rate metric per host, all with daily seasonality but different
levels and noise -- and drives them through a single
:class:`~repro.streaming.MultiSeriesEngine`:

* observations arrive interleaved across hosts, exactly as a metrics
  gateway would deliver them, and are ingested in batches;
* the steady-state feed switches to the fully columnar form -- ``{key:
  values}`` chunks in, :class:`~repro.streaming.IngestResult` arrays out
  -- so neither input tuples nor per-row record objects are built on the
  hot path, and alert triage runs as vectorized NumPy over the result
  arrays (records are materialized only for the rows actually reported);
* one host develops a traffic spike and another a seasonality shift
  (a maintenance job moving its daily peak);
* the engine is checkpointed mid-stream and restored, demonstrating that
  a monitoring service can persist its state and resume deterministically;
* at the end the fleet statistics report per-host anomaly counts and
  update-latency percentiles.

Run with:  PYTHONPATH=src python examples/fleet_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.streaming import MultiSeriesEngine

PERIOD = 96  # one day at 15-minute resolution
DAYS = 8
HOSTS = 12


def make_host_metric(host: int, rng: np.random.Generator) -> np.ndarray:
    time = np.arange(PERIOD * DAYS)
    level = 50.0 + 10.0 * host
    daily = (8.0 + host) * np.sin(2 * np.pi * time / PERIOD)
    values = level + daily + rng.normal(0.0, 0.8, time.size)
    if host == 3:  # a sudden traffic spike on day 6
        values[PERIOD * 6 + 30] += 40.0
    if host == 7:  # a maintenance job shifts this host's daily peak
        shifted = time[PERIOD * 6 :] + 10
        values[PERIOD * 6 :] = (
            level
            + (8.0 + host) * np.sin(2 * np.pi * shifted / PERIOD)
            + rng.normal(0.0, 0.8, shifted.size)
        )
    return values


def main() -> None:
    rng = np.random.default_rng(7)
    metrics = {f"host-{host:02d}": make_host_metric(host, rng) for host in range(HOSTS)}

    # Stiff trend (lambda = 100), as the TSAD detectors use: for anomaly
    # detection the trend must not bend around outliers, otherwise part of
    # the anomaly is absorbed before the residual is scored.
    engine = MultiSeriesEngine.for_oneshotstl(
        PERIOD,
        anomaly_threshold=5.0,
        shift_window=20,
        lambda1=100.0,
        lambda2=100.0,
    )

    # Stream the first six days interleaved, as a metrics gateway would.
    length = PERIOD * DAYS
    checkpoint_at = PERIOD * 6
    for position in range(checkpoint_at):
        engine.ingest([(key, series[position]) for key, series in metrics.items()])

    # Persist the fleet state mid-stream, then keep going.
    checkpoint = engine.snapshot()
    print(f"checkpoint taken after {checkpoint_at} points per host")

    # Steady state goes fully columnar: chunked {key: values} batches in,
    # struct-of-arrays IngestResult out.  The triage below never builds a
    # per-row record for the ~99% of points that are normal.
    alerts: dict[str, list[int]] = {}
    chunk = PERIOD // 4
    for start in range(checkpoint_at, length, chunk):
        stop = min(start + chunk, length)
        result = engine.ingest_columnar(
            {key: series[start:stop] for key, series in metrics.items()}
        )
        for position in np.flatnonzero(result.is_anomaly):
            record = result[int(position)]  # record built on demand
            alerts.setdefault(record.key, []).append(
                start + int(position) // len(metrics)
            )

    # A crashed service restores the checkpoint and replays the same feed --
    # and lands on the identical alert set.
    replayed = MultiSeriesEngine.for_oneshotstl(
        PERIOD,
        anomaly_threshold=5.0,
        shift_window=20,
        lambda1=100.0,
        lambda2=100.0,
    )
    replayed.restore(checkpoint)
    replayed_alerts: dict[str, list[int]] = {}
    for position in range(checkpoint_at, length):
        for record in replayed.ingest(
            [(key, series[position]) for key, series in metrics.items()]
        ):
            if record.is_anomaly:
                replayed_alerts.setdefault(record.key, []).append(position)
    print(f"restore + replay reproduces alerts exactly: {alerts == replayed_alerts}")

    stats = engine.fleet_stats()
    print(
        f"\nfleet: {stats.series_total} hosts, "
        f"{stats.points_total} points ingested, "
        f"{stats.anomalies_total} anomalous points"
    )
    print(f"{'host':10s}  {'points':>7s}  {'alerts':>6s}  {'p50 us':>8s}  {'p99 us':>8s}")
    for key in sorted(metrics):
        series = stats.per_series[key]
        latency = series.latency
        print(
            f"{key:10s}  {series.points:7d}  {series.anomalies:6d}  "
            f"{latency.median_seconds * 1e6:8.1f}  {latency.p99_seconds * 1e6:8.1f}"
        )

    spiked = alerts.get("host-03", [])
    print(
        f"\nhost-03 spike at index {PERIOD * 6 + 30}: "
        f"{'detected' if any(abs(a - (PERIOD * 6 + 30)) <= 1 for a in spiked) else 'missed'}"
    )
    shift_alerts = alerts.get("host-07", [])
    print(
        "host-07 seasonality shift: onset flagged by the detection residual "
        f"({len(shift_alerts)} alert points), then re-explained by the "
        "phase-shift search"
    )

    # Capacity planning: forecast the next three hours for every host.
    forecasts = {key: engine.forecast(key, 12) for key in sorted(metrics)[:3]}
    for key, forecast in forecasts.items():
        print(f"forecast {key}: {np.round(forecast[:4], 1)} ...")


if __name__ == "__main__":
    main()
