"""Seasonality-shift handling (paper Section 3.4) in action.

Builds a stream whose seasonal pattern shifts by 12 samples halfway
through -- the situation Figure 3 of the paper illustrates -- and compares
OneShotSTL with the shift search disabled (H = 0) and enabled (H = 20).
The run prints the residual size around the shift and the shift the search
identified.

Run with:  python examples/seasonality_shift_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import OneShotSTL


def main() -> None:
    period = 100
    cycles = 16
    shift = 12
    rng = np.random.default_rng(3)
    time_index = np.arange(period * cycles)

    seasonal = np.sin(2 * np.pi * time_index / period) + 0.4 * np.sin(
        4 * np.pi * time_index / period
    )
    values = seasonal + 0.03 * rng.normal(size=time_index.size)
    shift_start = period * 10
    values[shift_start:] = (
        np.sin(2 * np.pi * (time_index[shift_start:] + shift) / period)
        + 0.4 * np.sin(4 * np.pi * (time_index[shift_start:] + shift) / period)
        + 0.03 * rng.normal(size=time_index.size - shift_start)
    )

    initialization_length = period * 6
    results = {}
    for shift_window in (0, 20):
        model = OneShotSTL(period, shift_window=shift_window, shift_threshold=4.0)
        model.initialize(values[:initialization_length])
        residuals = np.array(
            [model.update(float(v)).residual for v in values[initialization_length:]]
        )
        results[shift_window] = (residuals, model.current_shift)

    window = slice(shift_start - initialization_length, shift_start - initialization_length + period)
    print(f"true shift injected at index {shift_start}: {shift} samples\n")
    for shift_window, (residuals, detected) in results.items():
        transition_error = np.abs(residuals[window]).mean()
        steady_error = np.abs(residuals[window.stop :]).mean()
        print(
            f"H = {shift_window:2d}: mean |residual| during the shifted period "
            f"= {transition_error:.4f}, afterwards = {steady_error:.4f}, "
            f"last detected shift = {detected}"
        )

    print(
        "\nWith H = 20 the search recognizes the shifted phase immediately, so "
        "the residual stays near the noise floor through the transition instead "
        "of spiking for a whole period."
    )


if __name__ == "__main__":
    main()
