"""Network serving demo: columnar HTTP ingest, pagination, degraded mode.

Everything below the wire is a library; ``repro.serving`` turns it into a
service.  This demo walks the full front door:

1. a real asyncio HTTP server (started in a thread here; in production
   ``python -m repro.serving --store DIR`` or ``--cluster SPEC.json``)
   over a **2-shard cluster** of durable worker processes;
2. columnar bulk ingest -- one request carries the whole fleet's rounds
   as a raw float64 grid, never per-point JSON;
3. paging through ``GET /v1/anomalies`` with the keyset cursor;
4. a graceful shutdown (drain, checkpoint every shard, release leases),
   then a restart over the *same* stores with one shard wired to
   crash-loop -- simulating a wedged node that SIGKILLs on every write;
5. the degraded contract: strict ingest answers 503, ``GET /health``
   names the down shard, and ``allow_partial=1`` serves the surviving
   shard while naming exactly the keys it skipped.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.faults import FaultInjector
from repro.serving import (
    EngineBackend,  # noqa: F401  (single-engine alternative to the cluster)
    RouterBackend,
    ServingApp,
    ServingClient,
    ServingError,
    ServingServer,
)
from repro.sharding import ClusterSpec, ShardRouter
from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec

PERIOD = 12
N_SERIES = 24
N_SHARDS = 2
ROUNDS = PERIOD * 8


def make_grid(seed: int = 9) -> tuple[list, np.ndarray]:
    """Round-major ``(ROUNDS, N_SERIES)`` seasonal grid with spikes."""
    rng = np.random.default_rng(seed)
    keys = [f"sensor-{index:03d}" for index in range(N_SERIES)]
    time_axis = np.arange(ROUNDS)[:, None]
    phase = rng.uniform(0.0, 2 * np.pi, N_SERIES)[None, :]
    grid = (
        50.0
        + 8.0 * np.sin(2 * np.pi * time_axis / PERIOD + phase)
        + rng.normal(0.0, 0.5, (ROUNDS, N_SERIES))
    )
    # Recurring fat spikes in the live region -> ring entries to page.
    warm = 3 * PERIOD
    for column in range(N_SERIES):
        spike_rows = range(warm + column % PERIOD, ROUNDS, 2 * PERIOD)
        grid[list(spike_rows), column] += 60.0
    return keys, grid


def serve(backend) -> tuple[ServingServer, str, int]:
    server = ServingServer(ServingApp(backend))
    host, port = server.start_in_thread()
    return server, host, port


def main() -> None:
    spec = EngineSpec(
        pipeline=PipelineSpec(
            decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
            detector=DetectorSpec("nsigma", {"threshold": 4.0}),
        ),
        initialization_length=2 * PERIOD,
    )
    root = Path(tempfile.mkdtemp(prefix="serving-demo-")) / "cluster"
    cluster = ClusterSpec.for_root(spec, root, n_shards=N_SHARDS)
    keys, grid = make_grid()

    # ---- phase 1: healthy cluster behind the HTTP front door ----------
    router = ShardRouter(cluster)
    server, host, port = serve(RouterBackend(router))
    with ServingClient(host, port) as client:
        health = client.health()
        print(
            f"health: {health['status']}, backend={health['backend']}, "
            f"shards={sorted(health['shards'])}"
        )
        summary = client.ingest(keys, grid)
        print(
            f"ingested {summary.rows} points across {len(summary.keys)} "
            f"series in one columnar request "
            f"({summary.anomalies_total} anomalies flagged)"
        )
        stats = client.series_stats(keys[0])
        print(
            f"{keys[0]}: {stats['points']} points, "
            f"{stats['anomalies']} anomalies, status={stats['status']}"
        )

        print("latest anomalies, newest first, 4 per page:")
        cursor = None
        pages = 0
        while True:
            listing = client.anomalies(limit=4, sort="-index", cursor=cursor)
            pages += 1
            for item in listing["items"]:
                print(
                    f"  round {item['index']:3d}  {item['key']}  "
                    f"value {item['value']:7.1f}  "
                    f"score {item['anomaly_score']:5.1f}"
                )
            cursor = listing["page"]["next_cursor"]
            if cursor is None or pages == 2:  # two pages are enough here
                print(f"  ... {listing['page']['total']} total in the ring")
                break
    server.stop()  # drain, checkpoint every shard, release the leases
    print("graceful shutdown: shards checkpointed, leases released\n")

    # ---- phase 2: same stores, one shard wedged into a crash loop -----
    victim = "shard-000"
    router = ShardRouter(
        cluster,
        circuit_threshold=2,
        fault_plans={
            victim: [
                FaultInjector(
                    point="wal.append.before",
                    action="sigkill",
                    times=0,
                    persist=True,  # replacement workers die the same way
                )
            ]
        },
    )
    server, host, port = serve(RouterBackend(router))
    with ServingClient(host, port) as client:
        tail = grid[-PERIOD:] + 0.25
        for attempt in (1, 2):
            try:
                client.ingest(keys, tail)
            except ServingError as error:
                print(
                    f"strict ingest attempt {attempt}: HTTP {error.status} "
                    f"{error.code} (retriable={error.retriable})"
                )
        health = client.health()
        print(
            f"health: {health['status']}, down_shards={health['down_shards']}"
        )
        partial = client.ingest(keys, tail, allow_partial=True)
        print(
            f"allow_partial ingest: {len(partial.keys)} keys requested, "
            f"{len(partial.skipped_keys)} skipped on down "
            f"{list(partial.down_shards)}, complete={partial.complete}"
        )
        served = [key for key in keys if key not in partial.skipped_keys]
        print(
            f"surviving shard applied {len(served)} series, e.g. "
            + ", ".join(served[:4])
        )
    server.stop()


if __name__ == "__main__":
    main()
