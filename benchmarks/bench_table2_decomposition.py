"""Table 2: decomposition MAE of batch and online STD methods on Syn1/Syn2.

Regenerates the paper's Table 2 rows: for each synthetic dataset and each
method, the MAE between the decomposed trend/seasonal/residual and the
ground-truth components.  Expected shape (paper): RobustSTL is the best
batch method, OneShotSTL the best online method, with the two close to each
other and clearly ahead of STL / OnlineSTL / the window baselines,
especially on Syn2 (seasonality shift).
"""

from __future__ import annotations

import numpy as np

from repro.core import JointSTL, OneShotSTL, select_lambda
from repro.datasets import make_syn1, make_syn2
from repro.decomposition import (
    STL,
    OnlineRobustSTL,
    OnlineSTL,
    RobustSTL,
    WindowRobustSTL,
    WindowSTL,
)
from repro.metrics import mae

from helpers import is_paper_scale, report


def _datasets():
    if is_paper_scale():
        return [make_syn1(), make_syn2()]
    return [
        make_syn1(length=3000, period=200),
        make_syn2(length=1750, period=175),
    ]


def _component_errors(data, trend, seasonal, residual, online_start=0):
    view = slice(online_start, None)
    return (
        mae(data.trend[view], trend[view]),
        mae(data.seasonal[view], seasonal[view]),
        mae(data.residual[view], residual[view]),
    )


def _run_batch(method, data):
    result = method.decompose(data.values)
    return _component_errors(data, result.trend, result.seasonal, result.residual)


def _run_online(method, data, init_periods=4):
    init_length = init_periods * data.period
    result = method.decompose(data.values, init_length)
    return _component_errors(
        data, result.trend, result.seasonal, result.residual, online_start=init_length
    )


def _collect_rows():
    rows = []
    stride = 1 if is_paper_scale() else 25
    for data in _datasets():
        period = data.period
        # The paper selects lambda on the training window by matching STL
        # (Section 5.1.4); do the same on the initialization window.
        selected_lambda = select_lambda(
            data.values[: 4 * period], period, iterations=4, method="jointstl"
        )
        batch_methods = [
            ("STL", "Batch", lambda: STL(period)),
            ("RobustSTL", "Batch", lambda: RobustSTL(period, iterations=4)),
            ("JointSTL", "Batch", lambda: JointSTL(period, iterations=4)),
        ]
        online_methods = [
            ("Window-STL", "Online", lambda: WindowSTL(period, recompute_stride=stride)),
            ("OnlineSTL", "Online", lambda: OnlineSTL(period)),
            (
                "Window-RobustSTL",
                "Online",
                lambda: WindowRobustSTL(period, recompute_stride=4 * stride, iterations=3),
            ),
            (
                "OnlineRobustSTL",
                "Online",
                lambda: OnlineRobustSTL(period, recompute_stride=4 * stride, iterations=3),
            ),
            (
                "OneShotSTL",
                "Online",
                lambda: OneShotSTL(
                    period,
                    lambda1=selected_lambda,
                    lambda2=selected_lambda,
                    shift_window=20,
                ),
            ),
        ]
        for name, kind, factory in batch_methods:
            trend_error, seasonal_error, residual_error = _run_batch(factory(), data)
            rows.append(
                {
                    "dataset": data.name,
                    "type": kind,
                    "method": name,
                    "trend_mae": trend_error,
                    "seasonal_mae": seasonal_error,
                    "residual_mae": residual_error,
                }
            )
        for name, kind, factory in online_methods:
            trend_error, seasonal_error, residual_error = _run_online(factory(), data)
            rows.append(
                {
                    "dataset": data.name,
                    "type": kind,
                    "method": name,
                    "trend_mae": trend_error,
                    "seasonal_mae": seasonal_error,
                    "residual_mae": residual_error,
                }
            )
    return rows


def test_table2_decomposition_quality(run_once):
    rows = run_once(_collect_rows)
    report("table2_decomposition", "Table 2: decomposition MAE on Syn1/Syn2", rows)

    online_methods = ("Window-STL", "OnlineSTL", "Window-RobustSTL", "OnlineRobustSTL", "OneShotSTL")
    residual_by_dataset: dict[str, dict[str, float]] = {}
    trend_by_dataset: dict[str, dict[str, float]] = {}
    for row in rows:
        if row["method"] in online_methods:
            residual_by_dataset.setdefault(row["dataset"], {})[row["method"]] = row["residual_mae"]
            trend_by_dataset.setdefault(row["dataset"], {})[row["method"]] = row["trend_mae"]
    for dataset, residual_scores in residual_by_dataset.items():
        # Shape check from the paper: OneShotSTL is the best online method on
        # the residual component and competitive (within 3x of the best
        # online method) on the trend component.
        assert min(residual_scores, key=residual_scores.get) == "OneShotSTL", dataset
        trend_scores = trend_by_dataset[dataset]
        best_trend = min(trend_scores.values())
        assert trend_scores["OneShotSTL"] <= max(3.0 * best_trend, 0.05), dataset
    assert all(np.isfinite(row["trend_mae"]) for row in rows)
