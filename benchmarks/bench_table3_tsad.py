"""Table 3: univariate anomaly detection on the TSB-UAD-like benchmark.

For every dataset family and every detector the harness reports the
average VUS-ROC over the family's series, then aggregates the per-family
averages, the average rank, and the total runtime -- the same three summary
rows as the paper's Table 3.

Expected shape (paper): no single method dominates every family, but
OneShotSTL has the best (lowest) average rank and ties the best average
VUS-ROC, NSigma is surprisingly competitive and by far the fastest, and the
matrix-profile methods win the ECG-like families while the STD methods win
the IoT/AIOps-like families.  Absolute values differ because the data are
synthetic stand-ins (see DESIGN.md).
"""

from __future__ import annotations

import time

import numpy as np

from repro.anomaly import (
    AutoencoderDetector,
    DampDetector,
    NSigmaDetector,
    NormaDetector,
    OneShotSTLDetector,
    OnlineSTLDetector,
    SandDetector,
    StompDetector,
)
from repro.datasets import TSB_UAD_FAMILIES, make_family
from repro.metrics import vus_roc

from helpers import average_rank, is_paper_scale, report


def _families():
    names = [profile.name for profile in TSB_UAD_FAMILIES]
    return names


def _detectors(period: int):
    window = int(min(max(period // 2, 16), 100))
    return [
        ("Autoencoder", lambda: AutoencoderDetector(window=window, epochs=10, sample_stride=4)),
        ("NormA", lambda: NormaDetector(window=window)),
        ("SAND", lambda: SandDetector(window=window)),
        ("STOMPI", lambda: StompDetector(window=window)),
        ("DAMP", lambda: DampDetector(window=window)),
        ("NSigma", lambda: NSigmaDetector()),
        ("OnlineSTL", lambda: OnlineSTLDetector(period)),
        ("OneShotSTL", lambda: OneShotSTLDetector(period)),
    ]


def _collect():
    series_per_family = 2 if is_paper_scale() else 1
    per_family_scores: dict[str, dict[str, float]] = {}
    runtimes: dict[str, float] = {}

    for family_name in _families():
        family = make_family(family_name, series_per_family=series_per_family, seed=7)
        per_family_scores[family_name] = {}
        for detector_name, factory in _detectors(family[0].period):
            scores = []
            start = time.perf_counter()
            for series in family:
                detector = factory()
                point_scores = detector.detect(series.train_values, series.test_values)
                scores.append(
                    vus_roc(
                        series.test_labels,
                        point_scores,
                        max_window=min(series.period // 2, 100),
                        steps=5,
                    )
                )
            runtimes[detector_name] = runtimes.get(detector_name, 0.0) + (
                time.perf_counter() - start
            )
            per_family_scores[family_name][detector_name] = float(np.mean(scores))

    rows = []
    for family_name, scores in per_family_scores.items():
        row = {"dataset": family_name}
        row.update(scores)
        rows.append(row)

    method_names = [name for name, _ in _detectors(100)]
    averages = {
        name: float(np.mean([per_family_scores[f][name] for f in per_family_scores]))
        for name in method_names
    }
    ranks = average_rank(per_family_scores, higher_is_better=True)
    rows.append({"dataset": "Avg. VUS-ROC", **averages})
    rows.append({"dataset": "Avg. Rank", **{name: ranks[name] for name in method_names}})
    rows.append({"dataset": "Time (s)", **{name: runtimes[name] for name in method_names}})
    return rows, averages, ranks, runtimes


def test_table3_tsad_benchmark(run_once):
    rows, averages, ranks, runtimes = run_once(_collect)
    report("table3_tsad", "Table 3: TSAD VUS-ROC on the TSB-UAD-like benchmark", rows)

    # Shape checks mirroring the paper's conclusions (no single method wins
    # everywhere; the STD family is competitive on average and NSigma is by
    # far the fastest).  Absolute rankings shift with the synthetic data, so
    # the assertions are deliberately coarse.
    method_count = len(ranks)
    sorted_by_rank = sorted(ranks, key=ranks.get)
    # The decomposition-based detectors sit in the top half of the field.
    assert sorted_by_rank.index("OnlineSTL") < method_count / 2, ranks
    assert sorted_by_rank.index("OneShotSTL") < method_count * 0.75, ranks
    # OneShotSTL is clearly better than chance and competitive with plain
    # NSigma (which it extends).
    assert averages["OneShotSTL"] > 0.5
    assert averages["OneShotSTL"] > averages["NSigma"] - 0.1
    # No method wins every family (the paper's "no free lunch" observation).
    winners = {
        max(scores, key=scores.get)
        for scores in (
            {m: rows[i][m] for m in averages} for i in range(len(rows) - 3)
        )
    }
    assert len(winners) > 1
    # NSigma is the fastest method by a wide margin.
    assert runtimes["NSigma"] == min(runtimes.values())
