"""Table 5: long-horizon forecasting MAE on the six TSF-like datasets.

For every dataset and horizon the harness evaluates each forecaster with
the rolling-origin protocol (standardized MAE, Informer convention) and
reports the per-setting errors plus the average MAE, average rank and total
runtime rows of the paper's Table 5.

Expected shape (paper): the learned direct forecasters (here the ridge /
NBEATS-lite proxies) and OneShotSTL are the two best groups, OneShotSTL has
the best average rank, it wins on the strongly seasonal datasets
(Electricity/Traffic-like) and falls behind on the weakly seasonal ones
(Exchange/Illness-like), and the STD forecasters run orders of magnitude
faster than the trained models.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets import make_tsf_benchmark
from repro.forecasting import (
    AutoARIMAForecaster,
    DirectRidgeForecaster,
    HoltWintersForecaster,
    NBeatsLiteForecaster,
    OneShotSTLForecaster,
    OnlineSTLForecaster,
    SeasonalNaiveForecaster,
    evaluate_on_series,
)

from helpers import average_rank, is_paper_scale, report


def _horizons(series):
    if is_paper_scale():
        return list(series.horizons)
    return [series.horizons[0], series.horizons[2]]


def _forecasters(period: int, horizon: int):
    input_window = min(max(3 * period, 96), 512)
    return [
        (
            "DirectRidge",
            lambda: DirectRidgeForecaster(input_window=input_window, horizon=horizon),
        ),
        (
            "NBEATS-lite",
            lambda: NBeatsLiteForecaster(
                input_window=input_window,
                horizon=horizon,
                epochs=12,
                blocks=2,
                hidden=48,
                max_training_windows=600,
            ),
        ),
        ("HoltWinters", lambda: HoltWintersForecaster(period)),
        ("AutoArima", lambda: AutoARIMAForecaster(period=period, max_order=3)),
        ("SeasonalNaive", lambda: SeasonalNaiveForecaster(period)),
        ("OnlineSTL", lambda: OnlineSTLForecaster(period)),
        ("OneShotSTL", lambda: OneShotSTLForecaster(period, shift_window=20)),
    ]


def _collect():
    benchmark = make_tsf_benchmark(seed=5)
    max_origins = 8 if is_paper_scale() else 3
    rows = []
    per_setting_scores: dict[str, dict[str, float]] = {}
    runtimes: dict[str, float] = {}

    for dataset_name, series in benchmark.items():
        for horizon in _horizons(series):
            setting = f"{dataset_name}-{horizon}"
            per_setting_scores[setting] = {}
            for method_name, factory in _forecasters(series.period, horizon):
                start = time.perf_counter()
                evaluation = evaluate_on_series(
                    factory(), series, horizon=horizon, max_origins=max_origins
                )
                runtimes[method_name] = runtimes.get(method_name, 0.0) + (
                    time.perf_counter() - start
                )
                per_setting_scores[setting][method_name] = evaluation.mae
                rows.append(
                    {
                        "dataset": dataset_name,
                        "horizon": horizon,
                        "method": method_name,
                        "mae": evaluation.mae,
                        "mse": evaluation.mse,
                    }
                )

    method_names = [name for name, _ in _forecasters(24, 24)]
    averages = {
        name: float(np.mean([scores[name] for scores in per_setting_scores.values()]))
        for name in method_names
    }
    ranks = average_rank(per_setting_scores, higher_is_better=False)
    summary_rows = [
        {"dataset": "Avg. MAE", "horizon": "-", "method": name, "mae": averages[name], "mse": float("nan")}
        for name in method_names
    ]
    summary_rows += [
        {"dataset": "Avg. Rank", "horizon": "-", "method": name, "mae": ranks[name], "mse": float("nan")}
        for name in method_names
    ]
    summary_rows += [
        {"dataset": "Time (s)", "horizon": "-", "method": name, "mae": runtimes[name], "mse": float("nan")}
        for name in method_names
    ]
    return rows + summary_rows, averages, ranks, runtimes, per_setting_scores


def test_table5_tsf_benchmark(run_once):
    rows, averages, ranks, runtimes, per_setting = run_once(_collect)
    report("table5_tsf", "Table 5: forecasting MAE on the TSF-like benchmark", rows)

    # Shape checks mirroring the paper's conclusions.
    sorted_by_rank = sorted(ranks, key=ranks.get)
    assert "OneShotSTL" in sorted_by_rank[:3], ranks
    assert ranks["OneShotSTL"] < ranks["OnlineSTL"], ranks
    assert ranks["OneShotSTL"] < ranks["AutoArima"], ranks
    # OneShotSTL is the best *non-trained* forecaster on the strongly
    # seasonal Traffic-like dataset (the paper's headline win; here the
    # direct-ridge proxy that stands in for the deep models is allowed to be
    # ahead because the synthetic data are friendlier to it than the real
    # Traffic data are to FiLM).
    trained = {"DirectRidge", "NBEATS-lite"}
    traffic_settings = [key for key in per_setting if key.startswith("Traffic")]
    wins = sum(
        1
        for key in traffic_settings
        if min(
            (m for m in per_setting[key] if m not in trained),
            key=per_setting[key].get,
        )
        == "OneShotSTL"
    )
    assert wins >= len(traffic_settings) / 2, per_setting
    # The STD forecaster family is far faster than the trained proxies per
    # evaluation (OnlineSTL certainly; OneShotSTL pays the interpreted-Python
    # constant discussed in EXPERIMENTS.md).
    assert runtimes["OnlineSTL"] < runtimes["NBEATS-lite"]
