"""Shared utilities for the benchmark harnesses.

Every benchmark module regenerates one table or figure of the paper: it
assembles the same rows/series the paper reports, prints them, and writes
them to ``benchmarks/results/<name>.txt`` so that EXPERIMENTS.md can quote
them.  Workload sizes are controlled by the ``REPRO_BENCH_SCALE``
environment variable:

* ``small`` (default) -- reduced series lengths / counts so the full suite
  finishes on a laptop in tens of minutes;
* ``paper`` -- the paper's full workload sizes.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

RESULTS_DIRECTORY = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Return the configured workload scale (``small`` or ``paper``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError("REPRO_BENCH_SCALE must be 'small' or 'paper'")
    return scale


def is_paper_scale() -> bool:
    return bench_scale() == "paper"


def format_table(title: str, rows: list[dict]) -> str:
    """Render ``rows`` (list of dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"== {title} ==\n(no rows)\n"
    columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            {
                column: (f"{value:.4f}" if isinstance(value, float) else str(value))
                for column, value in row.items()
            }
        )
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered_rows))
        for column in columns
    }
    lines = [f"== {title} =="]
    lines.append("  ".join(column.ljust(widths[column]) for column in columns))
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rendered_rows:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines) + "\n"


def report(name: str, title: str, rows: list[dict]) -> str:
    """Print the table and persist it under ``benchmarks/results/``."""
    text = format_table(title, rows)
    print("\n" + text)
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    (RESULTS_DIRECTORY / f"{name}.txt").write_text(text)
    return text


def report_json(filename: str, benchmark: str, rows: list[dict], **extra) -> Path:
    """Persist ``rows`` as a machine-readable JSON document.

    The document is written to ``benchmarks/results/<filename>`` so that CI
    can upload it as an artifact and the perf trajectory can be compared
    across commits without scraping the text tables.  ``extra`` key/values
    are merged into the top-level document (e.g. derived summary metrics).
    """
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    path = RESULTS_DIRECTORY / filename
    document = {
        "benchmark": benchmark,
        "schema_version": 1,
        "scale": bench_scale(),
        "rows": rows,
        **extra,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"[json] wrote {path}")
    return path


@contextmanager
def stopwatch():
    """Context manager yielding a callable that returns elapsed seconds."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start


def average_rank(per_key_scores: dict[str, dict[str, float]], higher_is_better: bool) -> dict[str, float]:
    """Average rank of each method across keys (datasets).

    ``per_key_scores`` maps dataset -> {method: score}.
    """
    ranks: dict[str, list[int]] = {}
    for scores in per_key_scores.values():
        ordered = sorted(
            scores.items(), key=lambda item: item[1], reverse=higher_is_better
        )
        for position, (method, _) in enumerate(ordered, start=1):
            ranks.setdefault(method, []).append(position)
    return {method: sum(values) / len(values) for method, values in ranks.items()}
