"""Figure 5: decomposed components of Syn1 and Syn2.

The paper's Figure 5 is a visual comparison of the trend/seasonal/residual
series produced by RobustSTL, OnlineSTL, OnlineRobustSTL and OneShotSTL on
the two synthetic datasets.  This harness regenerates the underlying
series, stores them as CSV files under ``benchmarks/results`` (so they can
be plotted), and reports summary statistics that capture the figure's
message: OneShotSTL recovers the abrupt trend change of Syn1 (large maximum
trend step, like RobustSTL) and keeps the Syn2 residual small despite the
seasonality shifts, while OnlineSTL does neither.
"""

from __future__ import annotations

import numpy as np

from repro.core import OneShotSTL
from repro.datasets import make_syn1, make_syn2
from repro.decomposition import OnlineRobustSTL, OnlineSTL, RobustSTL

from helpers import RESULTS_DIRECTORY, is_paper_scale, report


def _datasets():
    if is_paper_scale():
        return [make_syn1(), make_syn2()]
    return [make_syn1(length=3000, period=200), make_syn2(length=1750, period=175)]


def _methods(period: int, stride: int):
    return [
        ("RobustSTL", "batch", lambda: RobustSTL(period, iterations=4)),
        ("OnlineSTL", "online", lambda: OnlineSTL(period)),
        (
            "OnlineRobustSTL",
            "online",
            lambda: OnlineRobustSTL(period, recompute_stride=stride, iterations=3),
        ),
        ("OneShotSTL", "online", lambda: OneShotSTL(period, shift_window=20)),
    ]


def _collect():
    rows = []
    stride = 1 if is_paper_scale() else 50
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    for data in _datasets():
        init_length = 4 * data.period
        for name, kind, factory in _methods(data.period, stride):
            method = factory()
            if kind == "batch":
                result = method.decompose(data.values)
            else:
                result = method.decompose(data.values, init_length)
            components = np.column_stack(
                [data.values, result.trend, result.seasonal, result.residual]
            )
            np.savetxt(
                RESULTS_DIRECTORY / f"figure5_{data.name}_{name}.csv",
                components,
                delimiter=",",
                header="observed,trend,seasonal,residual",
                comments="",
            )
            rows.append(
                {
                    "dataset": data.name,
                    "method": name,
                    "max_trend_step": float(np.abs(np.diff(result.trend)).max()),
                    "trend_std": float(result.trend.std()),
                    "seasonal_range": float(result.seasonal.max() - result.seasonal.min()),
                    "residual_std": float(result.residual[init_length:].std()),
                }
            )
    return rows


def test_figure5_component_series(run_once):
    rows = run_once(_collect)
    report("figure5_decomposition", "Figure 5: component statistics on Syn1/Syn2", rows)

    by_key = {(row["dataset"], row["method"]): row for row in rows}
    syn1 = [key for key in by_key if key[0] == "Syn1"][0][0]
    # OneShotSTL recovers the abrupt trend change on Syn1 (a visible step),
    # while OnlineSTL smears it into a smooth, low-step trend.
    assert (
        by_key[(syn1, "OneShotSTL")]["max_trend_step"]
        > 2.0 * by_key[(syn1, "OnlineSTL")]["max_trend_step"]
    )
    for (dataset, method), row in by_key.items():
        assert np.isfinite(row["residual_std"]), (dataset, method)
