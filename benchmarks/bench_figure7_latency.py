"""Figure 7: per-point update latency versus the seasonal period T.

The paper's headline efficiency result: every existing method's per-point
cost grows linearly with T, while OneShotSTL's is flat.  The harness
repeats Syn1 to build a long stream, sweeps T, measures the mean per-point
update latency of each online method and reports the table behind the
figure.  Absolute numbers are Python-interpreter-bound (the paper's 20
microseconds refer to a Java implementation); the *scaling shape* -- flat
for OneShotSTL, linear for the others, with a crossover once T grows past a
few hundred -- is the reproduced claim.
"""

from __future__ import annotations

import numpy as np

from repro.core import OneShotSTL
from repro.datasets import make_syn1, repeat_series
from repro.decomposition import OnlineRobustSTL, OnlineSTL, WindowSTL
from repro.streaming import measure_update_latency

from helpers import is_paper_scale, report


def _periods():
    if is_paper_scale():
        return [100, 200, 400, 800, 1600, 3200, 6400, 12800]
    return [100, 200, 400, 800, 1600]


def _stream(period: int, total_points: int):
    base = make_syn1(length=max(6 * period, 3000), period=period, seed=3)
    return repeat_series(base.values, total_points)


def _collect():
    rows = []
    paper = is_paper_scale()
    fast_points = 2000 if paper else 300
    slow_points = 20 if paper else 3
    for period in _periods():
        total = 5 * period + max(fast_points, 2000)
        stream = _stream(period, total)
        initialization = stream[: 4 * period]
        online = stream[4 * period :]

        methods = [
            (
                "OneShotSTL",
                OneShotSTL(period, shift_window=20),
                fast_points,
            ),
            ("OnlineSTL", OnlineSTL(period), fast_points),
            ("Window-STL", WindowSTL(period), slow_points),
        ]
        # The sliding-window RobustSTL baseline becomes impractically slow for
        # long periods (that is the point of the figure); cap it so the small
        # default run stays laptop friendly.
        if period <= 800 or is_paper_scale():
            methods.append(
                ("OnlineRobustSTL", OnlineRobustSTL(period, iterations=2), slow_points)
            )
        for name, method, max_points in methods:
            latency = measure_update_latency(
                method, initialization, online, max_points=max_points, name=name
            )
            rows.append(
                {
                    "period": period,
                    "method": name,
                    "mean_us": latency.mean_microseconds,
                    "median_us": latency.median_seconds * 1e6,
                    "points": latency.points,
                }
            )
    return rows


def test_figure7_latency_scaling(run_once):
    rows = run_once(_collect)
    report("figure7_latency", "Figure 7: per-point latency vs period length", rows)

    latencies: dict[str, dict[int, float]] = {}
    for row in rows:
        latencies.setdefault(row["method"], {})[row["period"]] = row["mean_us"]

    def growth(method: str) -> float:
        periods = sorted(latencies[method])
        return latencies[method][periods[-1]] / latencies[method][periods[0]]

    largest = max(latencies["OneShotSTL"])
    # OneShotSTL's latency is (nearly) flat in T...
    assert growth("OneShotSTL") < 3.0
    # ...while the O(T) methods grow with T (at least 3x over the sweep).
    assert growth("OnlineSTL") > 3.0
    assert growth("Window-STL") > 3.0
    # At the largest period OneShotSTL is far faster than the window/batch
    # style baselines.  (The comparison against OnlineSTL's absolute latency
    # does not transfer to pure Python: OnlineSTL's per-point work is one
    # vectorized numpy reduction while OneShotSTL's constant work is
    # interpreted, so its ~1 ms floor dominates until T reaches tens of
    # thousands -- see EXPERIMENTS.md.)
    assert latencies["OneShotSTL"][largest] < latencies["Window-STL"][largest]
    damp_like = latencies.get("OnlineRobustSTL", {})
    if damp_like:
        assert latencies["OneShotSTL"][largest] < max(damp_like.values())
