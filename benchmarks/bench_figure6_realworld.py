"""Figure 6: decomposed components of the Real1/Real2-like datasets.

Figure 6 of the paper is qualitative (no ground truth exists for the real
traces).  The harness decomposes the Real1-like and Real2-like series with
the same four methods as Figure 5, saves the component series for
inspection, and checks the figure's two qualitative claims:

* on Real1 (abrupt trend change) the step in OneShotSTL's trend is of the
  same order as RobustSTL's and much larger than OnlineSTL's, and
* on Real2 (noisy, weak seasonality) OneShotSTL's trend varies far less
  than OnlineSTL's, which shows strong spurious variation in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core import OneShotSTL
from repro.datasets import make_real1_like, make_real2_like
from repro.decomposition import OnlineRobustSTL, OnlineSTL, RobustSTL

from helpers import RESULTS_DIRECTORY, is_paper_scale, report


def _datasets():
    if is_paper_scale():
        return [make_real1_like(), make_real2_like()]
    return [
        make_real1_like(length=3600, period=400),
        make_real2_like(length=3200, period=400),
    ]


def _collect():
    rows = []
    stride = 1 if is_paper_scale() else 80
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    for data in _datasets():
        period = data.period
        init_length = 4 * period
        methods = [
            ("RobustSTL", "batch", lambda: RobustSTL(period, iterations=3)),
            ("OnlineSTL", "online", lambda: OnlineSTL(period)),
            (
                "OnlineRobustSTL",
                "online",
                lambda: OnlineRobustSTL(period, recompute_stride=stride, iterations=3),
            ),
            ("OneShotSTL", "online", lambda: OneShotSTL(period, shift_window=20)),
        ]
        for name, kind, factory in methods:
            method = factory()
            if kind == "batch":
                result = method.decompose(data.values)
            else:
                result = method.decompose(data.values, init_length)
            np.savetxt(
                RESULTS_DIRECTORY / f"figure6_{data.name}_{name}.csv",
                np.column_stack(
                    [data.values, result.trend, result.seasonal, result.residual]
                ),
                delimiter=",",
                header="observed,trend,seasonal,residual",
                comments="",
            )
            online_trend = result.trend[init_length:]
            rows.append(
                {
                    "dataset": data.name,
                    "method": name,
                    "max_trend_step": float(np.abs(np.diff(online_trend)).max()),
                    "trend_variation": float(np.abs(np.diff(online_trend)).mean()),
                    "residual_std": float(result.residual[init_length:].std()),
                }
            )
    return rows


def test_figure6_realworld_components(run_once):
    rows = run_once(_collect)
    report("figure6_realworld", "Figure 6: component statistics on Real1/Real2-like", rows)

    by_key = {(row["dataset"], row["method"]): row for row in rows}
    real1 = [key[0] for key in by_key if key[0].startswith("Real1")][0]
    real2 = [key[0] for key in by_key if key[0].startswith("Real2")][0]
    # Real1: OneShotSTL captures the abrupt change (clearly larger max step
    # than OnlineSTL, whose trend filter smears it).
    assert (
        by_key[(real1, "OneShotSTL")]["max_trend_step"]
        > by_key[(real1, "OnlineSTL")]["max_trend_step"]
    )
    # Real2 (noisy, weak seasonality): OneShotSTL leaves less structure in the
    # residual than the sliding-window RobustSTL baseline, i.e. it does not
    # misattribute noise bursts to the other components.
    assert (
        by_key[(real2, "OneShotSTL")]["residual_std"]
        < by_key[(real2, "OnlineRobustSTL")]["residual_std"]
    )
