"""Engine throughput: points/sec for 1, 100 and 1000 concurrent series.

The multi-series engine exists so that the O(1) update can be ran on
*every* monitored metric of a fleet.  This harness measures

* the raw single-series OneShotSTL hot path (shift search enabled with the
  paper's default ``shift_window = 20``, ``I = 8`` iterations) -- the
  number to compare across commits when the kernel changes, and
* :class:`~repro.streaming.MultiSeriesEngine` throughput while multiplexing
  1, 100 and 1000 independent keyed series through batched ``ingest``.

Reported throughput counts *online* points only; the per-series batch
initialization phase runs untimed.  Invoke directly for a standalone run::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` shrinks the fleet sizes and stream lengths to a seconds-long
CI-friendly run.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import OneShotSTL
from repro.streaming import MultiSeriesEngine

from helpers import is_paper_scale, report, report_json

PERIOD = 24
INITIALIZATION = 4 * PERIOD


def _series_values(length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    time_axis = np.arange(length)
    return (
        np.sin(2 * np.pi * time_axis / PERIOD)
        + 0.01 * time_axis
        + rng.normal(0.0, 0.05, length)
    )


def _workload(smoke: bool):
    """(fleet sizes, online points per series for each fleet size)."""
    if smoke:
        return [1, 100], {1: 400, 100: 20}
    if is_paper_scale():
        return [1, 100, 1000], {1: 10000, 100: 200, 1000: 50}
    return [1, 100, 1000], {1: 2000, 100: 60, 1000: 12}


def _bench_raw_single_series(online_points: int) -> dict:
    """Single OneShotSTL, no engine: the kernel hot-path number."""
    values = _series_values(INITIALIZATION + online_points + 50, seed=0)
    model = OneShotSTL(PERIOD)  # paper defaults: I=8, shift_window=20
    model.initialize(values[:INITIALIZATION])
    timed = values[INITIALIZATION + 50 :]
    for value in values[INITIALIZATION : INITIALIZATION + 50]:
        model.update(float(value))
    start = time.perf_counter()
    for value in timed:
        model.update(float(value))
    elapsed = time.perf_counter() - start
    return {
        "config": "raw OneShotSTL",
        "series": 1,
        "online_points": timed.size,
        "points_per_sec": timed.size / elapsed,
        "us_per_point": elapsed / timed.size * 1e6,
    }


def _bench_engine_fleet(n_series: int, online_points: int) -> dict:
    """Batched ingest across a keyed fleet; initialization untimed."""
    length = INITIALIZATION + online_points
    data = {
        f"series-{index}": _series_values(length, seed=1000 + index)
        for index in range(n_series)
    }
    engine = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=False)
    for position in range(INITIALIZATION):
        engine.ingest([(key, values[position]) for key, values in data.items()])

    batches = [
        [(key, values[position]) for key, values in data.items()]
        for position in range(INITIALIZATION, length)
    ]
    start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    elapsed = time.perf_counter() - start

    stats = engine.fleet_stats()
    assert stats.series_live == n_series
    total_points = n_series * online_points
    return {
        "config": "engine ingest",
        "series": n_series,
        "online_points": total_points,
        "points_per_sec": total_points / elapsed,
        "us_per_point": elapsed / total_points * 1e6,
    }


def _collect(smoke: bool = False) -> list[dict]:
    fleet_sizes, points_per_series = _workload(smoke)
    rows = [_bench_raw_single_series(points_per_series[1])]
    for n_series in fleet_sizes:
        rows.append(_bench_engine_fleet(n_series, points_per_series[n_series]))
    return rows


def _emit(rows: list[dict], smoke: bool) -> None:
    """Write the human-readable table and the machine-readable JSON artifact.

    ``BENCH_engine.json`` maps fleet size -> points/sec (plus the raw kernel
    number and the full rows), so CI can track the perf trajectory across
    PRs without parsing the text table.  The ``workload`` field records
    whether the numbers come from the seconds-long ``--smoke`` workload
    (CI's artifact) or a full run at the configured scale -- the two are
    not comparable.
    """
    report(
        "engine_throughput",
        "Engine throughput: points/sec vs concurrent series",
        rows,
    )
    report_json(
        "BENCH_engine.json",
        "engine_throughput",
        rows,
        workload="smoke" if smoke else "full",
        points_per_sec={
            str(row["series"]): row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest"
        },
        raw_kernel_points_per_sec=next(
            row["points_per_sec"] for row in rows if row["config"] == "raw OneShotSTL"
        ),
    )


def test_engine_throughput(run_once):
    rows = run_once(_collect)
    _emit(rows, smoke=False)
    by_series = {
        row["series"]: row for row in rows if row["config"] == "engine ingest"
    }
    raw = next(row for row in rows if row["config"] == "raw OneShotSTL")
    # The engine must sustain the largest configured fleet...
    largest = max(by_series)
    assert by_series[largest]["points_per_sec"] > 0
    # ...and its per-point bookkeeping overhead on a single series must stay
    # a small factor over the raw kernel hot path.
    assert by_series[1]["us_per_point"] < 3.0 * raw["us_per_point"]


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    _emit(_collect(smoke=smoke), smoke=smoke)
