"""Engine throughput: points/sec for 1, 100 and 1000 concurrent series.

The multi-series engine exists so that the O(1) update can be ran on
*every* monitored metric of a fleet.  This harness measures

* the raw single-series OneShotSTL hot path (shift search enabled with the
  paper's default ``shift_window = 20``, ``I = 8`` iterations) -- the
  number to compare across commits when the kernel changes,
* :class:`~repro.streaming.MultiSeriesEngine` throughput while multiplexing
  1, 100 and 1000 independent keyed series through batched row ``ingest``
  (large same-spec fleets take the columnar fleet-kernel path),
* the columnar ``ingest({key: values})`` form on the largest fleet, which
  skips the per-record Python tuples on the way in (checked to be at least
  as fast as the row form -- the input paths share every downstream cost),
* the fully columnar ``ingest_columnar({key: values})`` form -- arrays in,
  arrays out, records on demand -- which additionally skips the per-row
  ``EngineRecord`` construction that otherwise dominates large-fleet
  steady state,
* the same columnar stream with ``time_block_rounds = 1`` -- the legacy
  one-round-at-a-time kernel driving -- as the committed baseline the
  time-blocked kernel (the default, which advances whole blocks of
  rounds per array op) is gated against: blocked must reach at least
  ``TIME_BLOCKED_FLOOR`` times the per-round throughput, and
* a group-growth micro-benchmark absorbing 500 series into a fleet kernel
  one at a time, whose two halves are compared to show the
  capacity-doubling absorption path is linear rather than quadratic,
* the durability rows on the largest fleet: time-blocked ``ingest_many``
  grid chunks with the write-ahead log on vs off (group commit journals
  the whole call in one fsync, so the WAL-on form must stay within
  ``WAL_INGEST_FLOOR`` of WAL-off throughput), and the latency of a full
  checkpoint (every cohort dirty) vs an incremental one (a single dirty
  cohort), whose ratio must reach ``CHECKPOINT_SPEEDUP_FLOOR`` -- the
  property that makes frequent checkpoints of a mostly-idle fleet cheap,
* the supervision row: the identical time-blocked ``ingest_many`` chunk
  stream driven directly vs through the sharding tier's
  :meth:`~repro.faults.RetryPolicy.call` wrapper -- the per-call
  bookkeeping a self-healing router adds on the success path -- whose
  throughput ratio must stay above ``SUPERVISED_INGEST_FLOOR``,
* the sharded rows: a 10,000-series fleet (1,000 under ``--smoke``)
  served through a :class:`~repro.sharding.ShardRouter` across
  ``SHARDED_WORKERS`` durable worker processes -- aggregate steady-state
  points/sec through the full columnar fan-out/fan-in IPC path (must
  reach ``SHARDED_COLUMNAR_FLOOR`` of the single-process 1000-series
  columnar number measured in the same run), plus the latency of
  failing over a SIGKILLed worker (lease takeover + manifest load +
  WAL replay), reported as ``failover_recovery_seconds``.

Reported throughput counts *steady-state online* points only: the
per-series batch initialization phase runs untimed, and a short online
warm-up is excluded on every configuration (the raw benchmark skips 50
points; the engine benchmarks skip ``ONLINE_WARMUP`` points, which also
covers the fleet kernel's absorption of freshly live series -- the
measured regime is the one a long-running monitor spends its life in).
Invoke directly for a standalone run::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` shrinks the stream lengths to a seconds-long run for quick
local iteration (it keeps a reduced 1000-series case so the large-fleet
kernel path is still exercised).  Note the perf-regression gate
(``check_perf_regression.py``) compares like with like and therefore
rejects smoke numbers: CI and baseline refreshes run the full workload.
"""

from __future__ import annotations

import math
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import OneShotSTL
from repro.streaming import MultiSeriesEngine

from helpers import is_paper_scale, report, report_json

PERIOD = 24
INITIALIZATION = 4 * PERIOD
#: untimed online points per series before the timed engine measurement
#: (covers solver warm-up and fleet-kernel absorption).
ONLINE_WARMUP = 10

#: allowed columnar-input shortfall vs row input within one run (noise);
#: shared with check_perf_regression so the two CI steps enforce one policy.
INPUT_PATH_TOLERANCE = 0.10

#: one-at-a-time absorption halves ratio above this reads as quadratic
#: (a truly quadratic path measures ~4); shared with check_perf_regression.
ABSORB_RATIO_CEILING = 3.0

#: minimum WAL-on / WAL-off ingest throughput ratio: with group commit
#: (one write + fsync per ``ingest_many`` call) journaling must cost at
#: most a tenth of the throughput; shared with check_perf_regression so
#: the two CI steps enforce one policy.
WAL_INGEST_FLOOR = 0.9

#: minimum time-blocked / per-round columnar-results throughput ratio on
#: the largest fleet: advancing T rounds x N series per array op must
#: beat driving the same kernel one round at a time by at least this
#: factor; shared with check_perf_regression.
TIME_BLOCKED_FLOOR = 1.5

#: minimum full-checkpoint / incremental-checkpoint latency ratio on a
#: 1000-series fleet with one dirty cohort; shared with
#: check_perf_regression.
CHECKPOINT_SPEEDUP_FLOOR = 5.0

#: minimum sharded aggregate throughput (the 10k-series fleet fanned out
#: across 4 worker processes) relative to the same run's single-process
#: 1000-series columnar ingest: the 10x-larger fleet's kernel
#: amortization must survive the fan-out/fan-in IPC hop even when the
#: workers time-slice one core; shared with check_perf_regression.
SHARDED_COLUMNAR_FLOOR = 1.0

#: minimum supervised / direct ingest throughput ratio: wrapping every
#: call in the sharding tier's RetryPolicy costs one generator and one
#: ``try`` frame on the success path, which must stay under 5% of
#: throughput; shared with check_perf_regression.
SUPERVISED_INGEST_FLOOR = 0.95

#: worker processes in the sharded benchmark
SHARDED_WORKERS = 4


def _series_values(length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    time_axis = np.arange(length)
    return (
        np.sin(2 * np.pi * time_axis / PERIOD)
        + 0.01 * time_axis
        + rng.normal(0.0, 0.05, length)
    )


def _workload(smoke: bool):
    """(fleet sizes, online points per series for each fleet size)."""
    if smoke:
        return [1, 100, 1000], {1: 400, 100: 20, 1000: 8}
    if is_paper_scale():
        return [1, 100, 1000], {1: 10000, 100: 200, 1000: 50}
    return [1, 100, 1000], {1: 2000, 100: 60, 1000: 30}


def _bench_raw_single_series(online_points: int) -> dict:
    """Single OneShotSTL, no engine: the kernel hot-path number."""
    values = _series_values(INITIALIZATION + online_points + 50, seed=0)
    model = OneShotSTL(PERIOD)  # paper defaults: I=8, shift_window=20
    model.initialize(values[:INITIALIZATION])
    timed = values[INITIALIZATION + 50 :]
    for value in values[INITIALIZATION : INITIALIZATION + 50]:
        model.update(float(value))
    start = time.perf_counter()
    for value in timed:
        model.update(float(value))
    elapsed = time.perf_counter() - start
    return {
        "config": "raw OneShotSTL",
        "series": 1,
        "online_points": timed.size,
        "points_per_sec": timed.size / elapsed,
        "us_per_point": elapsed / timed.size * 1e6,
    }


def _warmed_engine(data: dict) -> MultiSeriesEngine:
    """Engine with every series initialized and past the online warm-up."""
    engine = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=False)
    for position in range(INITIALIZATION + ONLINE_WARMUP):
        engine.ingest([(key, values[position]) for key, values in data.items()])
    return engine


def _fleet_data(n_series: int, online_points: int) -> dict:
    length = INITIALIZATION + ONLINE_WARMUP + online_points
    return {
        f"series-{index}": _series_values(length, seed=1000 + index)
        for index in range(n_series)
    }


def _engine_row(config: str, n_series: int, online_points: int, elapsed: float):
    total_points = n_series * online_points
    return {
        "config": config,
        "series": n_series,
        "online_points": total_points,
        "points_per_sec": total_points / elapsed,
        "us_per_point": elapsed / total_points * 1e6,
    }


def _bench_engine_fleet(
    n_series: int, online_points: int, with_columnar: bool = False
) -> list[dict]:
    """Batched ingest across a keyed fleet; warm-up untimed.

    With ``with_columnar`` the same warmed engine is rewound (via
    snapshot/restore) and fed the identical stream through the columnar
    ``ingest({key: values})`` form -- the expensive initialization phase is
    paid once for both measurements.
    """
    data = _fleet_data(n_series, online_points)
    online_start = INITIALIZATION + ONLINE_WARMUP
    engine = _warmed_engine(data)
    checkpoint = engine.snapshot() if with_columnar else None

    batches = [
        [(key, values[position]) for key, values in data.items()]
        for position in range(online_start, online_start + online_points)
    ]
    start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    elapsed = time.perf_counter() - start
    stats = engine.fleet_stats()
    assert stats.series_live == n_series
    rows = [_engine_row("engine ingest", n_series, online_points, elapsed)]

    if with_columnar:
        columnar = {
            key: values[online_start + 1 :] for key, values in data.items()
        }

        def rewind():
            # restore() drops the engine's columnar bookkeeping by design,
            # so feed one untimed point to re-absorb the fleet -- otherwise
            # the timed window would pay a one-off re-pack the row
            # measurement never paid.
            engine.restore(checkpoint)
            engine.ingest(
                {
                    key: values[online_start : online_start + 1]
                    for key, values in data.items()
                }
            )

        rewind()
        start = time.perf_counter()
        engine.ingest(columnar)
        elapsed = time.perf_counter() - start
        rows.append(
            _engine_row(
                "engine ingest (columnar)", n_series, online_points - 1, elapsed
            )
        )

        def timed_pass(block_rounds):
            # rewind() restores the identical engine state before every
            # pass, so blocked and per-round runs consume the same stream.
            engine.time_block_rounds = block_rounds
            rewind()
            start = time.perf_counter()
            result = engine.ingest_columnar(columnar)
            elapsed = time.perf_counter() - start
            assert len(result) == (online_points - 1) * n_series
            return elapsed

        # The blocked-vs-per-round ratio is gated, so the two sides are
        # measured as alternating pairs -- a load spike on a busy machine
        # lands on both sides instead of skewing the ratio -- and each
        # side keeps its best pass.  One untimed pass per side first pays
        # the one-off workspace allocations.  ``time_block_rounds = 1``
        # drives the kernel one round at a time: the pre-time-blocking
        # code path, kept for the oracle tests and as the baseline the
        # blocked path is gated against.
        timed_pass(None)
        timed_pass(1)
        best_blocked = math.inf
        best_per_round = math.inf
        for _ in range(5):
            best_blocked = min(best_blocked, timed_pass(None))
            best_per_round = min(best_per_round, timed_pass(1))
        engine.time_block_rounds = None
        blocked = _engine_row(
            "engine ingest (columnar results)",
            n_series,
            online_points - 1,
            best_blocked,
        )
        rows.append(blocked)
        per_round = _engine_row(
            "engine ingest (columnar results, per-round)",
            n_series,
            online_points - 1,
            best_per_round,
        )
        per_round["time_blocked_speedup"] = (
            blocked["points_per_sec"] / per_round["points_per_sec"]
        )
        rows.append(per_round)
    return rows


def _bench_absorption(total: int = 500) -> dict:
    """One-at-a-time absorption of ``total`` series into one fleet kernel.

    The halves ratio is the linearity check: absorbing the second half into
    an ever-larger kernel must cost about the same as the first half
    (capacity-doubled growth); the pre-amortization concatenation path made
    it grow with the kernel size (quadratic total).
    """
    import copy

    from repro.core.fleet import FleetKernel

    values = _series_values(INITIALIZATION + 16, seed=4242)
    prototype = OneShotSTL(PERIOD, iterations=2)
    prototype.initialize(values[:INITIALIZATION])
    for value in values[INITIALIZATION:]:
        prototype.update(float(value))
    singles = [
        FleetKernel.pack([copy.deepcopy(prototype)]) for _ in range(total)
    ]

    kernel = FleetKernel.pack([copy.deepcopy(prototype)])
    start = time.perf_counter()
    for single in singles[: total // 2]:
        kernel.append(single)
    first_half = time.perf_counter() - start
    start = time.perf_counter()
    for single in singles[total // 2 :]:
        kernel.append(single)
    second_half = time.perf_counter() - start
    return {
        "config": f"absorb {total} one-at-a-time",
        "series": kernel.n_series,
        "online_points": 0,
        "points_per_sec": 0.0,
        "us_per_point": (first_half + second_half) / total * 1e6,
        "absorb_halves_ratio": second_half / first_half,
    }


#: rounds per grid chunk in the durability rows: small enough that one
#: ``ingest_many`` call carries several WAL records (so group commit has
#: something to batch), large enough that the kernel still advances in
#: blocks.
WAL_CHUNK_ROUNDS = 6


def _bench_durability(n_series: int, online_points: int) -> list[dict]:
    """WAL ingest overhead and full vs incremental checkpoint latency.

    One warmed engine serves all four measurements: time-blocked
    ``ingest_many`` grid chunks without a store, the first checkpoint
    after :meth:`attach_store` (every cohort dirty -- the full-snapshot
    cost), the same ``ingest_many`` chunks with the whole call journaled
    to the WAL in one group commit (one write + flush + fsync for all of
    the call's records), and an incremental checkpoint after touching
    only the first durable cohort of the fleet.  The WAL-on and WAL-off
    windows run the identical code path -- the only difference is
    whether a store is attached -- so the ratio isolates journaling cost.
    """
    import shutil
    import tempfile

    from repro.durability import DirectoryCheckpointStore

    # Each measurement consumes its own contiguous window of the stream:
    # re-feeding one window twice would land out of phase and trigger the
    # (expensive, rare-by-design) shift-search fallback on every series,
    # which would measure the fallback, not the WAL.  The WAL-on/WAL-off
    # comparison is repeated with alternated ordering (off-on, then
    # on-off) so slow-drift effects -- allocator state, cache warmth --
    # cancel instead of biasing one side.
    data = _fleet_data(n_series, 5 * online_points + 8)
    online_start = INITIALIZATION + ONLINE_WARMUP
    position = online_start

    def take_grids(rounds, chunk_rounds, keys=None):
        nonlocal position
        chunks = []
        taken = 0
        while taken < rounds:
            count = min(chunk_rounds, rounds - taken)
            chunks.append(
                {
                    key: data[key][position + taken : position + taken + count]
                    for key in (data if keys is None else keys)
                }
            )
            taken += count
        position += rounds
        return chunks

    engine = _warmed_engine(data)
    # settle: first post-warmup rounds run untimed
    engine.ingest_many(take_grids(4, WAL_CHUNK_ROUNDS))

    roots: list[Path] = []

    def fresh_store() -> DirectoryCheckpointStore:
        root = Path(tempfile.mkdtemp(prefix="bench-durability-"))
        roots.append(root)
        return DirectoryCheckpointStore(root)

    wal_off = wal_on = 0.0
    try:
        for order in (("off", "on"), ("on", "off")):
            for mode in order:
                if mode == "on":
                    engine.attach_store(fresh_store(), checkpoint=False)
                chunks = take_grids(online_points, WAL_CHUNK_ROUNDS)
                start = time.perf_counter()
                engine.ingest_many(chunks)
                elapsed = time.perf_counter() - start
                if mode == "on":
                    wal_on += elapsed
                    engine.close(checkpoint=False)
                else:
                    wal_off += elapsed

        engine.attach_store(fresh_store(), checkpoint=False)
        start = time.perf_counter()
        full = engine.checkpoint()
        full_seconds = time.perf_counter() - start
        assert full.series_written == n_series

        dirty_keys = list(data)[: engine.checkpoint_cohort_size]
        engine.ingest_many(take_grids(4, WAL_CHUNK_ROUNDS, keys=dirty_keys))
        start = time.perf_counter()
        incremental = engine.checkpoint()
        incremental_seconds = time.perf_counter() - start
        assert incremental.cohorts_written == min(
            1, incremental.cohorts_total
        ), "only the touched cohort should have been rewritten"
        engine.close(checkpoint=False)
    finally:
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)

    total = 2 * n_series * online_points
    return [
        {
            "config": "engine ingest_many (WAL off)",
            "series": n_series,
            "online_points": total,
            "points_per_sec": total / wal_off,
            "us_per_point": wal_off / total * 1e6,
        },
        {
            "config": "engine ingest_many (WAL on, group commit)",
            "series": n_series,
            "online_points": total,
            "points_per_sec": total / wal_on,
            "us_per_point": wal_on / total * 1e6,
            "wal_ingest_ratio": wal_off / wal_on,
        },
        {
            "config": "checkpoint (full fleet)",
            "series": n_series,
            "online_points": 0,
            "points_per_sec": 0.0,
            "us_per_point": full_seconds / n_series * 1e6,
            "checkpoint_seconds": full_seconds,
        },
        {
            "config": "checkpoint (1 dirty cohort)",
            "series": n_series,
            "online_points": 0,
            "points_per_sec": 0.0,
            "us_per_point": incremental_seconds / n_series * 1e6,
            "checkpoint_seconds": incremental_seconds,
            "checkpoint_incremental_speedup": full_seconds / incremental_seconds,
        },
    ]


def _bench_supervision(n_series: int, online_points: int) -> list[dict]:
    """Per-call overhead of the fault-supervision retry wrapper.

    The self-healing router wraps worker requests in
    :meth:`~repro.faults.RetryPolicy.call`; on the success path that is
    one ``delays()`` generator plus one ``try`` frame per call.  Both
    sides drive the identical per-chunk ``ingest_many`` call pattern --
    each chunk is its own call, matching the router's one-request-per-
    batch granularity -- over their own contiguous stream windows.  The
    windows run as alternating pairs with the starting side swapped each
    round, and each side keeps its best pass (the blocked-vs-per-round
    idiom): the gated ratio is overhead in the ~1% range, so a single
    load spike landing on one side would otherwise dominate it.
    """
    from repro.faults import RetryPolicy

    pairs = 3
    data = _fleet_data(n_series, 2 * pairs * online_points + 8)
    online_start = INITIALIZATION + ONLINE_WARMUP
    position = online_start

    def take_grids(rounds, chunk_rounds):
        nonlocal position
        chunks = []
        taken = 0
        while taken < rounds:
            count = min(chunk_rounds, rounds - taken)
            chunks.append(
                {
                    key: data[key][position + taken : position + taken + count]
                    for key in data
                }
            )
            taken += count
        position += rounds
        return chunks

    engine = _warmed_engine(data)
    engine.ingest_many(take_grids(4, WAL_CHUNK_ROUNDS))  # settle, untimed
    policy = RetryPolicy()
    direct = supervised = math.inf
    for round_index in range(pairs):
        order = (
            ("direct", "supervised")
            if round_index % 2 == 0
            else ("supervised", "direct")
        )
        for mode in order:
            chunks = take_grids(online_points, WAL_CHUNK_ROUNDS)
            if mode == "supervised":
                start = time.perf_counter()
                for chunk in chunks:
                    policy.call(lambda chunk=chunk: engine.ingest_many([chunk]))
                supervised = min(supervised, time.perf_counter() - start)
            else:
                start = time.perf_counter()
                for chunk in chunks:
                    engine.ingest_many([chunk])
                direct = min(direct, time.perf_counter() - start)

    total = n_series * online_points
    return [
        {
            "config": "engine ingest_many (direct calls)",
            "series": n_series,
            "online_points": total,
            "points_per_sec": total / direct,
            "us_per_point": direct / total * 1e6,
        },
        {
            "config": "engine ingest_many (supervised retry wrapper)",
            "series": n_series,
            "online_points": total,
            "points_per_sec": total / supervised,
            "us_per_point": supervised / total * 1e6,
            "supervised_ingest_ratio": direct / supervised,
        },
    ]


def _bench_sharded(smoke: bool, n_workers: int = SHARDED_WORKERS) -> list[dict]:
    """Aggregate throughput and failover latency of the sharded tier.

    A :class:`~repro.sharding.ShardRouter` fans a fleet an order of
    magnitude past the single-process rows (10k series full, 1k smoke)
    out across ``n_workers`` durable worker processes -- one columnar
    message per shard per batch -- and the timed window measures
    steady-state aggregate points/sec through the full fan-out/fan-in
    path (pickle, pipes, result scatter included).  The cluster is
    checkpointed right after warm-up, modelling a periodically
    checkpointed production fleet; the failover row then SIGKILLs one
    worker and times :meth:`~repro.sharding.ShardRouter.failover` --
    lease takeover, manifest load and replay of the timed window's
    surviving WAL -- as the recovery-latency number.
    """
    import shutil
    import tempfile

    from repro.sharding import ClusterSpec, ShardRouter

    n_series = 1000 if smoke else 10_000
    online_points = 8 if smoke else 48
    warm_rounds = 8  # absorption settles by ~6 rounds; timed window is steady
    length = INITIALIZATION + warm_rounds + online_points
    data = {
        f"series-{index}": _series_values(length, seed=7000 + index)
        for index in range(n_series)
    }
    online_start = INITIALIZATION + warm_rounds

    root = Path(tempfile.mkdtemp(prefix="bench-sharded-"))
    try:
        spec = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=False).spec
        cluster = ClusterSpec.for_root(spec, root, n_workers)
        router = ShardRouter(cluster)
        try:
            router.ingest(
                {key: values[:online_start] for key, values in data.items()}
            )
            router.checkpoint()

            # One columnar batch for the whole timed window, matching the
            # single-process "engine ingest (columnar)" row it is gated
            # against -- the per-batch fan-out cost (pickle, pipe, result
            # scatter) amortizes over the window just as the engine's
            # per-call overhead does.
            start = time.perf_counter()
            router.ingest(
                {key: values[online_start:] for key, values in data.items()}
            )
            elapsed = time.perf_counter() - start
            total = n_series * online_points

            victim = router.shard_ids[0]
            # Reach one layer down for the kill: the public surface has no
            # reason to expose worker pids, and the bench wants a real
            # SIGKILL mid-life, exactly what the failover path is for.
            router._workers[victim].process.kill()
            report = router.failover(victim)
            stats = router.stats()
            assert stats.points_total == n_series * length, (
                "failover lost points: recovery must replay the full "
                "surviving WAL"
            )
            rows = [
                {
                    "config": f"sharded ingest ({n_workers} workers)",
                    "series": n_series,
                    "online_points": total,
                    "points_per_sec": total / elapsed,
                    "us_per_point": elapsed / total * 1e6,
                    "sharded_workers": n_workers,
                },
                {
                    "config": "sharded failover (SIGKILL + recovery)",
                    "series": n_series,
                    "online_points": 0,
                    "points_per_sec": 0.0,
                    "us_per_point": 0.0,
                    "failover_recovery_seconds": report.duration_seconds,
                    "failover_recovered_points": report.recovered_points,
                },
            ]
        finally:
            router.close(checkpoint=False)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return rows


def _collect(smoke: bool = False) -> list[dict]:
    fleet_sizes, points_per_series = _workload(smoke)
    largest = max(fleet_sizes)
    rows = [_bench_raw_single_series(points_per_series[1])]
    for n_series in fleet_sizes:
        rows.extend(
            _bench_engine_fleet(
                n_series,
                points_per_series[n_series],
                with_columnar=n_series == largest,
            )
        )
    rows.append(_bench_absorption(total=120 if smoke else 500))
    rows.extend(_bench_durability(largest, points_per_series[largest]))
    rows.extend(_bench_supervision(largest, points_per_series[largest]))
    rows.extend(_bench_sharded(smoke))
    return rows


def _config_throughput(rows: list[dict], config: str, series: int) -> float:
    return next(
        row["points_per_sec"]
        for row in rows
        if row["config"] == config and row["series"] == series
    )


def _check_columnar_paths(rows: list[dict], largest: int) -> list[str]:
    """Assertion-style sanity checks printed with (and gating) the results.

    * columnar *input* must not be slower than row input (they share every
      downstream cost, so a regression here means the input path itself
      rotted -- this was a real historical regression);
    * columnar *results* must beat the eager record list (skipping the
      per-row record construction is the whole point);
    * the time-blocked kernel (the default) must beat driving the same
      stream one round at a time by at least ``TIME_BLOCKED_FLOOR``;
    * one-at-a-time absorption must stay linear (halves ratio well under
      the ~4x a quadratic path would show).

    A small tolerance absorbs benchmark-machine noise on the input check.
    """
    row_form = _config_throughput(rows, "engine ingest", largest)
    columnar_in = _config_throughput(rows, "engine ingest (columnar)", largest)
    columnar_out = _config_throughput(
        rows, "engine ingest (columnar results)", largest
    )
    blocked = next(row for row in rows if "time_blocked_speedup" in row)
    absorb = next(row for row in rows if "absorb_halves_ratio" in row)
    checks = [
        (
            f"columnar input >= row input ({columnar_in:.0f} vs {row_form:.0f} "
            f"pts/s)",
            columnar_in >= (1.0 - INPUT_PATH_TOLERANCE) * row_form,
        ),
        (
            f"columnar results > row records ({columnar_out:.0f} vs "
            f"{row_form:.0f} pts/s)",
            columnar_out > row_form,
        ),
        (
            f"time-blocked >= {TIME_BLOCKED_FLOOR:.1f}x per-round "
            f"(speedup {blocked['time_blocked_speedup']:.2f})",
            blocked["time_blocked_speedup"] >= TIME_BLOCKED_FLOOR,
        ),
        (
            "one-at-a-time absorption linear (halves ratio "
            f"{absorb['absorb_halves_ratio']:.2f} < {ABSORB_RATIO_CEILING})",
            absorb["absorb_halves_ratio"] < ABSORB_RATIO_CEILING,
        ),
    ]
    lines = []
    failures = []
    for label, passed in checks:
        lines.append(f"[{'ok' if passed else 'FAIL'}] {label}")
        if not passed:
            failures.append(label)
    print("\n".join(lines))
    return failures


def _check_durability(rows: list[dict]) -> list[str]:
    """Self-checks of the durability rows (same shape as the columnar ones).

    * journaling every ingested batch to the WAL must keep at least
      ``WAL_INGEST_FLOOR`` of the WAL-off throughput;
    * an incremental checkpoint touching one dirty cohort of the large
      fleet must be at least ``CHECKPOINT_SPEEDUP_FLOOR`` times faster
      than re-serializing the whole fleet;
    * the supervision retry wrapper must keep at least
      ``SUPERVISED_INGEST_FLOOR`` of the direct-call throughput.
    """
    wal_row = next(row for row in rows if "wal_ingest_ratio" in row)
    speedup_row = next(
        row for row in rows if "checkpoint_incremental_speedup" in row
    )
    supervised_row = next(
        row for row in rows if "supervised_ingest_ratio" in row
    )
    checks = [
        (
            f"WAL-on ingest >= {WAL_INGEST_FLOOR:.0%} of WAL-off "
            f"(ratio {wal_row['wal_ingest_ratio']:.2f})",
            wal_row["wal_ingest_ratio"] >= WAL_INGEST_FLOOR,
        ),
        (
            "incremental checkpoint >= "
            f"{CHECKPOINT_SPEEDUP_FLOOR:.0f}x faster than full "
            f"(speedup {speedup_row['checkpoint_incremental_speedup']:.1f})",
            speedup_row["checkpoint_incremental_speedup"]
            >= CHECKPOINT_SPEEDUP_FLOOR,
        ),
        (
            f"supervised ingest >= {SUPERVISED_INGEST_FLOOR:.0%} of direct "
            f"(ratio {supervised_row['supervised_ingest_ratio']:.2f})",
            supervised_row["supervised_ingest_ratio"]
            >= SUPERVISED_INGEST_FLOOR,
        ),
    ]
    lines = []
    failures = []
    for label, passed in checks:
        lines.append(f"[{'ok' if passed else 'FAIL'}] {label}")
        if not passed:
            failures.append(label)
    print("\n".join(lines))
    return failures


def _check_sharded(rows: list[dict], smoke: bool = False) -> list[str]:
    """Self-check of the sharded rows.

    The full workload's sharded fleet is 10x the single-process
    1000-series case, so its aggregate throughput through 4 workers must
    reach at least ``SHARDED_COLUMNAR_FLOOR`` times the same run's
    single-process columnar ingest -- the fleet-amortization win has to
    survive the IPC hop.  The smoke workload shards the *same* 1000
    series it measures single-process, which isolates the IPC overhead
    but leaves no amortization headroom to gate on -- the ratio is
    reported without a threshold there (as is failover recovery latency
    everywhere: its absolute value is machine-bound, and correctness of
    the recovery is asserted inside the benchmark itself).
    """
    sharded = next(row for row in rows if "sharded_workers" in row)
    failover = next(row for row in rows if "failover_recovery_seconds" in row)
    columnar = _config_throughput(rows, "engine ingest (columnar)", 1000)
    ratio = sharded["points_per_sec"] / columnar
    lines = [
        "[info] sharded failover recovery "
        f"{failover['failover_recovery_seconds']:.3f}s "
        f"({failover['failover_recovered_points']} points recovered)"
    ]
    failures = []
    label = (
        f"sharded {sharded['series']}-series aggregate >= "
        f"{SHARDED_COLUMNAR_FLOOR:.1f}x single-process 1000-series "
        f"columnar ({sharded['points_per_sec']:.0f} vs {columnar:.0f} "
        f"pts/s, ratio {ratio:.2f})"
    )
    if smoke:
        lines.append(f"[info] {label} -- not gated on the smoke workload")
    else:
        passed = ratio >= SHARDED_COLUMNAR_FLOOR
        lines.append(f"[{'ok' if passed else 'FAIL'}] {label}")
        if not passed:
            failures.append(label)
    print("\n".join(lines))
    return failures


def _emit(rows: list[dict], smoke: bool) -> None:
    """Write the human-readable table and the machine-readable JSON artifact.

    ``BENCH_engine.json`` maps fleet size -> points/sec (plus the raw kernel
    number and the full rows), so CI can track the perf trajectory across
    PRs without parsing the text table.  The ``workload`` field records
    whether the numbers come from the seconds-long ``--smoke`` workload
    (CI's artifact) or a full run at the configured scale -- the two are
    not comparable.
    """
    report(
        "engine_throughput",
        "Engine throughput: points/sec vs concurrent series",
        rows,
    )
    report_json(
        "BENCH_engine.json",
        "engine_throughput",
        rows,
        workload="smoke" if smoke else "full",
        points_per_sec={
            str(row["series"]): row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest"
        },
        columnar_points_per_sec={
            str(row["series"]): row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest (columnar)"
        },
        columnar_results_points_per_sec={
            str(row["series"]): row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest (columnar results)"
        },
        time_blocked_speedup=next(
            row["time_blocked_speedup"]
            for row in rows
            if "time_blocked_speedup" in row
        ),
        absorb_halves_ratio=next(
            row["absorb_halves_ratio"]
            for row in rows
            if "absorb_halves_ratio" in row
        ),
        wal_ingest_ratio=next(
            row["wal_ingest_ratio"] for row in rows if "wal_ingest_ratio" in row
        ),
        supervised_ingest_ratio=next(
            row["supervised_ingest_ratio"]
            for row in rows
            if "supervised_ingest_ratio" in row
        ),
        checkpoint_full_seconds=next(
            row["checkpoint_seconds"]
            for row in rows
            if row["config"] == "checkpoint (full fleet)"
        ),
        checkpoint_incremental_seconds=next(
            row["checkpoint_seconds"]
            for row in rows
            if row["config"] == "checkpoint (1 dirty cohort)"
        ),
        checkpoint_incremental_speedup=next(
            row["checkpoint_incremental_speedup"]
            for row in rows
            if "checkpoint_incremental_speedup" in row
        ),
        raw_kernel_points_per_sec=next(
            row["points_per_sec"] for row in rows if row["config"] == "raw OneShotSTL"
        ),
        sharded_points_per_sec=next(
            row["points_per_sec"] for row in rows if "sharded_workers" in row
        ),
        sharded_workers=next(
            row["sharded_workers"] for row in rows if "sharded_workers" in row
        ),
        sharded_series=next(
            row["series"] for row in rows if "sharded_workers" in row
        ),
        sharded_vs_columnar_ratio=next(
            row["points_per_sec"] for row in rows if "sharded_workers" in row
        )
        / next(
            row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest (columnar)"
        ),
        failover_recovery_seconds=next(
            row["failover_recovery_seconds"]
            for row in rows
            if "failover_recovery_seconds" in row
        ),
    )


def test_engine_throughput(run_once):
    rows = run_once(_collect)
    _emit(rows, smoke=False)
    by_series = {
        row["series"]: row for row in rows if row["config"] == "engine ingest"
    }
    raw = next(row for row in rows if row["config"] == "raw OneShotSTL")
    # The engine must sustain the largest configured fleet...
    largest = max(by_series)
    assert by_series[largest]["points_per_sec"] > 0
    # ...and its per-point bookkeeping overhead on a single series must stay
    # a small factor over the raw kernel hot path.
    assert by_series[1]["us_per_point"] < 3.0 * raw["us_per_point"]
    # The columnar input/result paths must not regress behind the row path
    # (and absorption must stay linear) -- see _check_columnar_paths.
    assert not _check_columnar_paths(rows, largest)
    # WAL overhead and incremental-checkpoint speedup -- see _check_durability.
    assert not _check_durability(rows)
    # The sharded tier must keep the large-fleet amortization through the
    # worker fan-out -- see _check_sharded.
    assert not _check_sharded(rows, smoke=False)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    rows = _collect(smoke=smoke)
    _emit(rows, smoke=smoke)
    failures = _check_columnar_paths(
        rows, max(row["series"] for row in rows if row["config"] == "engine ingest")
    )
    failures.extend(_check_durability(rows))
    failures.extend(_check_sharded(rows, smoke=smoke))
    if failures:
        sys.exit(f"columnar-path/durability/sharded checks failed: {failures}")
