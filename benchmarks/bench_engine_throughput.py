"""Engine throughput: points/sec for 1, 100 and 1000 concurrent series.

The multi-series engine exists so that the O(1) update can be ran on
*every* monitored metric of a fleet.  This harness measures

* the raw single-series OneShotSTL hot path (shift search enabled with the
  paper's default ``shift_window = 20``, ``I = 8`` iterations) -- the
  number to compare across commits when the kernel changes,
* :class:`~repro.streaming.MultiSeriesEngine` throughput while multiplexing
  1, 100 and 1000 independent keyed series through batched row ``ingest``
  (large same-spec fleets take the columnar fleet-kernel path), and
* the columnar ``ingest({key: values})`` form on the largest fleet, which
  skips the per-record Python tuples on the way in.

Reported throughput counts *steady-state online* points only: the
per-series batch initialization phase runs untimed, and a short online
warm-up is excluded on every configuration (the raw benchmark skips 50
points; the engine benchmarks skip ``ONLINE_WARMUP`` points, which also
covers the fleet kernel's absorption of freshly live series -- the
measured regime is the one a long-running monitor spends its life in).
Invoke directly for a standalone run::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` shrinks the stream lengths to a seconds-long run for quick
local iteration (it keeps a reduced 1000-series case so the large-fleet
kernel path is still exercised).  Note the perf-regression gate
(``check_perf_regression.py``) compares like with like and therefore
rejects smoke numbers: CI and baseline refreshes run the full workload.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import OneShotSTL
from repro.streaming import MultiSeriesEngine

from helpers import is_paper_scale, report, report_json

PERIOD = 24
INITIALIZATION = 4 * PERIOD
#: untimed online points per series before the timed engine measurement
#: (covers solver warm-up and fleet-kernel absorption).
ONLINE_WARMUP = 10


def _series_values(length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    time_axis = np.arange(length)
    return (
        np.sin(2 * np.pi * time_axis / PERIOD)
        + 0.01 * time_axis
        + rng.normal(0.0, 0.05, length)
    )


def _workload(smoke: bool):
    """(fleet sizes, online points per series for each fleet size)."""
    if smoke:
        return [1, 100, 1000], {1: 400, 100: 20, 1000: 8}
    if is_paper_scale():
        return [1, 100, 1000], {1: 10000, 100: 200, 1000: 50}
    return [1, 100, 1000], {1: 2000, 100: 60, 1000: 30}


def _bench_raw_single_series(online_points: int) -> dict:
    """Single OneShotSTL, no engine: the kernel hot-path number."""
    values = _series_values(INITIALIZATION + online_points + 50, seed=0)
    model = OneShotSTL(PERIOD)  # paper defaults: I=8, shift_window=20
    model.initialize(values[:INITIALIZATION])
    timed = values[INITIALIZATION + 50 :]
    for value in values[INITIALIZATION : INITIALIZATION + 50]:
        model.update(float(value))
    start = time.perf_counter()
    for value in timed:
        model.update(float(value))
    elapsed = time.perf_counter() - start
    return {
        "config": "raw OneShotSTL",
        "series": 1,
        "online_points": timed.size,
        "points_per_sec": timed.size / elapsed,
        "us_per_point": elapsed / timed.size * 1e6,
    }


def _warmed_engine(data: dict) -> MultiSeriesEngine:
    """Engine with every series initialized and past the online warm-up."""
    engine = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=False)
    for position in range(INITIALIZATION + ONLINE_WARMUP):
        engine.ingest([(key, values[position]) for key, values in data.items()])
    return engine


def _fleet_data(n_series: int, online_points: int) -> dict:
    length = INITIALIZATION + ONLINE_WARMUP + online_points
    return {
        f"series-{index}": _series_values(length, seed=1000 + index)
        for index in range(n_series)
    }


def _engine_row(config: str, n_series: int, online_points: int, elapsed: float):
    total_points = n_series * online_points
    return {
        "config": config,
        "series": n_series,
        "online_points": total_points,
        "points_per_sec": total_points / elapsed,
        "us_per_point": elapsed / total_points * 1e6,
    }


def _bench_engine_fleet(
    n_series: int, online_points: int, with_columnar: bool = False
) -> list[dict]:
    """Batched ingest across a keyed fleet; warm-up untimed.

    With ``with_columnar`` the same warmed engine is rewound (via
    snapshot/restore) and fed the identical stream through the columnar
    ``ingest({key: values})`` form -- the expensive initialization phase is
    paid once for both measurements.
    """
    data = _fleet_data(n_series, online_points)
    online_start = INITIALIZATION + ONLINE_WARMUP
    engine = _warmed_engine(data)
    checkpoint = engine.snapshot() if with_columnar else None

    batches = [
        [(key, values[position]) for key, values in data.items()]
        for position in range(online_start, online_start + online_points)
    ]
    start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    elapsed = time.perf_counter() - start
    stats = engine.fleet_stats()
    assert stats.series_live == n_series
    rows = [_engine_row("engine ingest", n_series, online_points, elapsed)]

    if with_columnar:
        engine.restore(checkpoint)
        # restore() drops the engine's columnar bookkeeping by design, so
        # feed one untimed point to re-absorb the fleet -- otherwise the
        # timed window would pay a one-off re-pack the row measurement
        # never paid.
        engine.ingest(
            {key: values[online_start : online_start + 1] for key, values in data.items()}
        )
        columnar = {
            key: values[online_start + 1 :] for key, values in data.items()
        }
        start = time.perf_counter()
        engine.ingest(columnar)
        elapsed = time.perf_counter() - start
        rows.append(
            _engine_row(
                "engine ingest (columnar)", n_series, online_points - 1, elapsed
            )
        )
    return rows


def _collect(smoke: bool = False) -> list[dict]:
    fleet_sizes, points_per_series = _workload(smoke)
    largest = max(fleet_sizes)
    rows = [_bench_raw_single_series(points_per_series[1])]
    for n_series in fleet_sizes:
        rows.extend(
            _bench_engine_fleet(
                n_series,
                points_per_series[n_series],
                with_columnar=n_series == largest,
            )
        )
    return rows


def _emit(rows: list[dict], smoke: bool) -> None:
    """Write the human-readable table and the machine-readable JSON artifact.

    ``BENCH_engine.json`` maps fleet size -> points/sec (plus the raw kernel
    number and the full rows), so CI can track the perf trajectory across
    PRs without parsing the text table.  The ``workload`` field records
    whether the numbers come from the seconds-long ``--smoke`` workload
    (CI's artifact) or a full run at the configured scale -- the two are
    not comparable.
    """
    report(
        "engine_throughput",
        "Engine throughput: points/sec vs concurrent series",
        rows,
    )
    report_json(
        "BENCH_engine.json",
        "engine_throughput",
        rows,
        workload="smoke" if smoke else "full",
        points_per_sec={
            str(row["series"]): row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest"
        },
        columnar_points_per_sec={
            str(row["series"]): row["points_per_sec"]
            for row in rows
            if row["config"] == "engine ingest (columnar)"
        },
        raw_kernel_points_per_sec=next(
            row["points_per_sec"] for row in rows if row["config"] == "raw OneShotSTL"
        ),
    )


def test_engine_throughput(run_once):
    rows = run_once(_collect)
    _emit(rows, smoke=False)
    by_series = {
        row["series"]: row for row in rows if row["config"] == "engine ingest"
    }
    raw = next(row for row in rows if row["config"] == "raw OneShotSTL")
    # The engine must sustain the largest configured fleet...
    largest = max(by_series)
    assert by_series[largest]["points_per_sec"] > 0
    # ...and its per-point bookkeeping overhead on a single series must stay
    # a small factor over the raw kernel hot path.
    assert by_series[1]["us_per_point"] < 3.0 * raw["us_per_point"]


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    _emit(_collect(smoke=smoke), smoke=smoke)
