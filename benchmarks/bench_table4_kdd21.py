"""Table 4: anomaly detection on the KDD21-like dataset.

Each series has exactly one anomaly event; a method is correct when its
top-scoring test point falls within the competition tolerance of the event.
The harness reports, for each method, the fraction of series solved and the
total runtime -- the two columns of the paper's Table 4 -- including the
STD+DAMP pre-filtering combinations.

Expected shape (paper): DAMP is the most accurate single method but by far
the slowest of the non-deep ones; plain NSigma is weak; OneShotSTL improves
clearly over NSigma and somewhat over OnlineSTL; and OneShotSTL+DAMP
recovers almost all of DAMP's accuracy at a fraction of its runtime.
"""

from __future__ import annotations

import time

import numpy as np

from repro.anomaly import (
    DampDetector,
    NSigmaDetector,
    NormaDetector,
    OneShotSTLDetector,
    OnlineSTLDetector,
    PrefilteredDampDetector,
    SandDetector,
    StompDetector,
)
from repro.datasets import make_kdd21_like
from repro.metrics import kdd21_score
from repro.metrics.kdd21 import kdd21_single

from helpers import is_paper_scale, report


def _series_list():
    count = 100 if is_paper_scale() else 12
    return make_kdd21_like(count=count, seed=11)


def _detectors(period: int):
    window = int(min(max(period // 2, 16), 100))
    return [
        ("NormA", lambda: NormaDetector(window=window)),
        ("STOMPI", lambda: StompDetector(window=window)),
        ("SAND", lambda: SandDetector(window=window)),
        ("DAMP", lambda: DampDetector(window=window)),
        ("NSigma", lambda: NSigmaDetector()),
        ("OnlineSTL", lambda: OnlineSTLDetector(period)),
        ("OneShotSTL", lambda: OneShotSTLDetector(period)),
        (
            "NSigma+DAMP",
            lambda: PrefilteredDampDetector(NSigmaDetector(), window=window, top_fraction=0.01),
        ),
        (
            "OnlineSTL+DAMP",
            lambda: PrefilteredDampDetector(
                OnlineSTLDetector(period), window=window, top_fraction=0.01
            ),
        ),
        (
            "OneShotSTL+DAMP",
            lambda: PrefilteredDampDetector(
                OneShotSTLDetector(period), window=window, top_fraction=0.01
            ),
        ),
    ]


def _event_bounds(series):
    positions = np.where(series.test_labels == 1)[0]
    return int(positions[0]), int(positions[-1]) + 1


def _collect():
    series_list = _series_list()
    method_names = [name for name, _ in _detectors(100)]
    verdicts: dict[str, list[bool]] = {name: [] for name in method_names}
    runtimes: dict[str, float] = {name: 0.0 for name in method_names}

    for series in series_list:
        start_index, stop_index = _event_bounds(series)
        for name, factory in _detectors(series.period):
            detector = factory()
            start = time.perf_counter()
            scores = detector.detect(series.train_values, series.test_values)
            runtimes[name] += time.perf_counter() - start
            verdicts[name].append(
                kdd21_single(scores, start_index, stop_index, tolerance=100)
            )

    rows = []
    for name in method_names:
        rows.append(
            {
                "method": name,
                "score": kdd21_score(verdicts[name]),
                "time_s": runtimes[name],
                "series": len(series_list),
            }
        )
    return rows


def test_table4_kdd21(run_once):
    rows = run_once(_collect)
    report("table4_kdd21", "Table 4: KDD21-like accuracy and runtime", rows)

    scores = {row["method"]: row["score"] for row in rows}
    times = {row["method"]: row["time_s"] for row in rows}
    # Shape checks from the paper: decomposition-based detection (directly or
    # as a DAMP pre-filter) improves on plain NSigma, and adding the DAMP
    # refinement never hurts the STD detector it refines.  (OneShotSTL's
    # standalone score is sensitive to the trend-smoothness lambda on the
    # non-seasonal series in this dataset -- see EXPERIMENTS.md E5.)
    best_std = max(scores["OneShotSTL"], scores["OnlineSTL"])
    assert best_std >= scores["NSigma"]
    assert scores["OneShotSTL+DAMP"] >= scores["NSigma"]
    assert scores["OneShotSTL+DAMP"] >= scores["OneShotSTL"] - 1e-9
    # Pre-filtering reduces the cost of the expensive discord search: the
    # DAMP stage of the cheap-prefilter combo is far cheaper than full DAMP.
    # (At the paper's scale the same holds for the OneShotSTL combo as well;
    # in this Python reproduction the OneShotSTL prefilter itself dominates
    # its combo's runtime, see EXPERIMENTS.md.)
    assert times["NSigma+DAMP"] < times["DAMP"]
    # NSigma is the fastest method.
    assert times["NSigma"] == min(times.values())
