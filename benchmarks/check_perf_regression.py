"""Perf-regression gate for the engine throughput benchmark.

Compares a fresh ``BENCH_engine.json`` (written by
``bench_engine_throughput.py``) against the committed baseline and fails --
exit code 1 -- if large-fleet throughput regressed beyond the tolerance.

Because CI machines and the machine that produced the committed baseline
run at different absolute speeds, the gated metrics are *normalized*: the
1000-series engine throughput (both the eager row-record form and the
columnar arrays-out ``ingest_columnar`` form) divided by the raw
single-series kernel throughput measured in the same run.  Those ratios
capture how well the fleet kernel amortizes the per-point cost across a
large fleet -- the property this gate protects -- while machine speed
cancels out.  A ratio drop of more than ``--tolerance`` (default 0.30,
i.e. 30%) vs the baseline fails the gate.  The gate additionally checks,
within the current run alone, that columnar *input* did not fall behind
row input (a historical regression), that the time-blocked kernel beats
the per-round baseline by at least ``TIME_BLOCKED_FLOOR``, that
one-at-a-time kernel absorption stayed linear, that group-committing
ingested batches to the write-ahead log keeps at least
``WAL_INGEST_FLOOR`` of the WAL-off throughput, that the fault-
supervision retry wrapper keeps at least ``SUPERVISED_INGEST_FLOOR`` of
the direct-call ingest throughput, that an incremental
checkpoint of the 1000-series fleet with one dirty cohort stays at least
5x faster than a full snapshot, and that the sharded tier (the 10k-series
fleet fanned out across 4 worker processes) keeps its aggregate
throughput at or above the single-process 1000-series columnar ingest of
the same run -- with a failover recovery latency actually measured, and
that the network serving layer (``bench_serving.py``, whose fields merge
into the same document) kept at least ``SERVED_COLUMNAR_FLOOR`` of the
same run's in-process columnar throughput while answering every read
poll during the bulk-ingest window (thresholds are imported from the
bench modules so the CI steps enforce one policy)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/check_perf_regression.py

The two documents must come from the same workload (the committed baseline
is a *full* run; ``--smoke`` numbers are not comparable and are rejected).
The committed baseline lives at ``benchmarks/BENCH_engine.json`` (the
results directory is gitignored; re-running the benchmark never clobbers
the baseline).  Refresh it deliberately after a change that moves
throughput::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    cp benchmarks/results/BENCH_engine.json benchmarks/BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: fleet size whose normalized throughput is gated
GATED_FLEET = "1000"

#: gated metrics: JSON field -> human label
GATED_METRICS = {
    "points_per_sec": "row ingest",
    "columnar_results_points_per_sec": "columnar results ingest",
}

#: thresholds shared with the benchmark's own assertion-style checks, so
#: the bench step and this gate enforce a single policy (imported lazily
#: inside current_run_checks to keep this script path-independent).


def normalized_ratio(document: dict, source: str, metric: str) -> float:
    """1000-series engine throughput relative to the raw kernel's."""
    try:
        fleet = document[metric][GATED_FLEET]
        raw = document["raw_kernel_points_per_sec"]
    except KeyError as error:
        raise SystemExit(
            f"{source}: missing {error.args[0]!r}; regenerate with "
            "bench_engine_throughput.py (the workload must include the "
            f"{GATED_FLEET}-series case)"
        )
    if raw <= 0:
        raise SystemExit(f"{source}: non-positive raw kernel throughput")
    return fleet / raw


def current_run_checks(current: dict, source: str) -> list[str]:
    """Self-contained checks on the fresh run (no baseline needed)."""
    sys.path.insert(0, str(Path(__file__).parent))
    from bench_engine_throughput import (
        ABSORB_RATIO_CEILING,
        CHECKPOINT_SPEEDUP_FLOOR,
        INPUT_PATH_TOLERANCE,
        SHARDED_COLUMNAR_FLOOR,
        SUPERVISED_INGEST_FLOOR,
        TIME_BLOCKED_FLOOR,
        WAL_INGEST_FLOOR,
    )
    from bench_serving import SERVED_COLUMNAR_FLOOR

    failures = []
    try:
        row_form = current["points_per_sec"][GATED_FLEET]
        columnar_in = current["columnar_points_per_sec"][GATED_FLEET]
    except KeyError as error:
        raise SystemExit(f"{source}: missing {error.args[0]!r}")
    if columnar_in < (1.0 - INPUT_PATH_TOLERANCE) * row_form:
        failures.append(
            f"columnar input path fell behind row input "
            f"({columnar_in:.0f} vs {row_form:.0f} pts/s)"
        )
    try:
        blocked = current["time_blocked_speedup"]
    except KeyError as error:
        raise SystemExit(
            f"{source}: missing {error.args[0]!r}; regenerate with "
            "bench_engine_throughput.py (the workload includes the "
            "per-round baseline row)"
        )
    if blocked < TIME_BLOCKED_FLOOR:
        failures.append(
            f"time-blocked kernel is only {blocked:.2f}x the per-round "
            f"baseline on the {GATED_FLEET}-series columnar-results ingest "
            f"(required: {TIME_BLOCKED_FLOOR:.1f}x)"
        )
    absorb = current.get("absorb_halves_ratio")
    if absorb is not None and absorb >= ABSORB_RATIO_CEILING:
        failures.append(
            f"one-at-a-time absorption looks quadratic "
            f"(halves ratio {absorb:.2f} >= {ABSORB_RATIO_CEILING})"
        )
    try:
        wal_ratio = current["wal_ingest_ratio"]
        speedup = current["checkpoint_incremental_speedup"]
    except KeyError as error:
        raise SystemExit(
            f"{source}: missing {error.args[0]!r}; regenerate with "
            "bench_engine_throughput.py (the workload includes the "
            "durability rows)"
        )
    if wal_ratio < WAL_INGEST_FLOOR:
        failures.append(
            f"WAL-on ingest fell below {WAL_INGEST_FLOOR:.0%} of WAL-off "
            f"throughput (ratio {wal_ratio:.2f})"
        )
    try:
        supervised_ratio = current["supervised_ingest_ratio"]
    except KeyError as error:
        raise SystemExit(
            f"{source}: missing {error.args[0]!r}; regenerate with "
            "bench_engine_throughput.py (the workload includes the "
            "supervision row)"
        )
    if supervised_ratio < SUPERVISED_INGEST_FLOOR:
        failures.append(
            f"retry-supervised ingest fell below "
            f"{SUPERVISED_INGEST_FLOOR:.0%} of direct-call throughput "
            f"(ratio {supervised_ratio:.2f}): the supervision wrapper's "
            "success path grew a real per-call cost"
        )
    if speedup < CHECKPOINT_SPEEDUP_FLOOR:
        failures.append(
            f"incremental checkpoint is only {speedup:.1f}x faster than a "
            f"full snapshot (required: {CHECKPOINT_SPEEDUP_FLOOR:.0f}x on "
            f"the {GATED_FLEET}-series fleet with one dirty cohort)"
        )
    try:
        sharded_ratio = current["sharded_vs_columnar_ratio"]
        sharded_series = current["sharded_series"]
        sharded_workers = current["sharded_workers"]
        recovery = current["failover_recovery_seconds"]
    except KeyError as error:
        raise SystemExit(
            f"{source}: missing {error.args[0]!r}; regenerate with "
            "bench_engine_throughput.py (the workload includes the "
            "sharded rows)"
        )
    if sharded_ratio < SHARDED_COLUMNAR_FLOOR:
        failures.append(
            f"sharded {sharded_series}-series aggregate throughput across "
            f"{sharded_workers} workers fell below "
            f"{SHARDED_COLUMNAR_FLOOR:.1f}x the single-process "
            f"{GATED_FLEET}-series columnar ingest (ratio "
            f"{sharded_ratio:.2f}): the fleet amortization no longer "
            "survives the fan-out/fan-in IPC hop"
        )
    if not recovery > 0:
        failures.append(
            f"failover recovery latency is {recovery!r}: the sharded "
            "benchmark's SIGKILL-and-failover measurement did not run"
        )
    try:
        served_ratio = current["served_vs_inprocess_ratio"]
        served_workload = current["served_workload"]
        served_p99 = current["served_request_p99_ms"]
        polls_ok = current["served_polls_ok"]
        polls_failed = current["served_polls_failed"]
    except KeyError as error:
        raise SystemExit(
            f"{source}: missing {error.args[0]!r}; regenerate with "
            "bench_serving.py (the serving benchmark merges its fields "
            "into the same document)"
        )
    if served_workload != "full":
        raise SystemExit(
            f"{source}: served_workload is {served_workload!r}; the "
            "served-throughput gate needs a full run.  Re-run "
            "bench_serving.py without --smoke."
        )
    if served_ratio < SERVED_COLUMNAR_FLOOR:
        failures.append(
            f"served throughput across {current.get('served_clients', '?')} "
            f"concurrent HTTP clients is only {served_ratio:.2f}x the same "
            f"run's in-process {GATED_FLEET}-series columnar ingest (floor "
            f"{SERVED_COLUMNAR_FLOOR:.1f}x): the network front door costs "
            "more than half the library's speed"
        )
    if polls_ok == 0 or polls_failed > 0:
        failures.append(
            f"reads starved behind bulk writes: {polls_ok} health+anomaly "
            f"polls answered, {polls_failed} failed during the served "
            "ingest window"
        )
    if not served_p99 > 0:
        failures.append(
            f"served request p99 latency is {served_p99!r}: the latency "
            "measurement did not run"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "BENCH_engine.json",
        help="committed baseline JSON (default: benchmarks/BENCH_engine.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_engine.json",
        help="freshly measured JSON (default: benchmarks/results/BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop of the normalized ratio (default 0.30)",
    )
    arguments = parser.parse_args(argv)

    baseline = json.loads(arguments.baseline.read_text())
    current = json.loads(arguments.current.read_text())
    for field in ("workload", "scale"):
        baseline_value = baseline.get(field)
        current_value = current.get(field)
        if baseline_value != current_value:
            raise SystemExit(
                f"{field} mismatch: baseline is {baseline_value!r} but the "
                f"current run is {current_value!r}; the two regimes are not "
                "comparable.  Re-run bench_engine_throughput.py with the "
                "baseline's regime (no --smoke, default REPRO_BENCH_SCALE, "
                "for the committed baseline)."
            )
    failed = False
    for metric, label in GATED_METRICS.items():
        baseline_ratio = normalized_ratio(baseline, str(arguments.baseline), metric)
        current_ratio = normalized_ratio(current, str(arguments.current), metric)
        floor = baseline_ratio * (1.0 - arguments.tolerance)
        print(
            f"{GATED_FLEET}-series {label} / raw kernel throughput:\n"
            f"  baseline  {baseline_ratio:8.3f}"
            f"  ({baseline[metric][GATED_FLEET]:12.0f} pts/s,"
            f" workload={baseline.get('workload', '?')})\n"
            f"  current   {current_ratio:8.3f}"
            f"  ({current[metric][GATED_FLEET]:12.0f} pts/s,"
            f" workload={current.get('workload', '?')})\n"
            f"  floor     {floor:8.3f}  (tolerance {arguments.tolerance:.0%})"
        )
        if current_ratio < floor:
            print(
                f"FAIL: {GATED_FLEET}-series normalized {label} throughput "
                f"regressed {1.0 - current_ratio / baseline_ratio:.0%} vs the "
                "committed baseline (allowed: "
                f"{arguments.tolerance:.0%}).  If the regression is "
                "intentional, refresh benchmarks/BENCH_engine.json (see "
                "module docstring)."
            )
            failed = True
    for failure in current_run_checks(current, str(arguments.current)):
        print(f"FAIL: {failure}")
        failed = True
    print(
        f"sharded tier: {current['sharded_series']}-series aggregate is "
        f"{current['sharded_vs_columnar_ratio']:.2f}x the single-process "
        f"{GATED_FLEET}-series columnar ingest across "
        f"{current['sharded_workers']} workers; failover recovery "
        f"{current['failover_recovery_seconds']:.2f}s"
    )
    print(
        f"serving tier: {current['served_clients']} concurrent HTTP "
        f"clients sustained {current['served_vs_inprocess_ratio']:.2f}x "
        "the in-process columnar ingest "
        f"(p50 {current['served_request_p50_ms']:.1f} ms, "
        f"p99 {current['served_request_p99_ms']:.1f} ms; "
        f"{current['served_polls_ok']} read polls answered during ingest)"
    )
    if failed:
        return 1
    print("OK: no large-fleet throughput regression beyond tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
