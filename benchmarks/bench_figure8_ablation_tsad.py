"""Figure 8: ablation of the period error (dT) and shift window (H) on TSAD.

The paper perturbs the detected period by dT in {0, 5, 10, 15, 20} and runs
OneShotSTL with H = 0 and H = 20 on KDD21 and three TSB-UAD families.
Expected shape: accuracy degrades as dT grows, and H = 20 consistently
softens the degradation (the shift search compensates for the period
error).
"""

from __future__ import annotations

import numpy as np

from repro.anomaly import OneShotSTLDetector
from repro.datasets import make_family, make_kdd21_like
from repro.metrics import kdd21_score, vus_roc
from repro.metrics.kdd21 import kdd21_single

from helpers import is_paper_scale, report


def _delta_values():
    return [0, 5, 10, 15, 20] if is_paper_scale() else [0, 10, 20]


def _kdd_series():
    return make_kdd21_like(count=24 if is_paper_scale() else 6, seed=3)


def _family_series():
    names = ("ECG", "IOPS", "Daphnet")
    return {name: make_family(name, series_per_family=1, seed=5) for name in names}


def _evaluate_kdd(series_list, delta, shift_window):
    verdicts = []
    for series in series_list:
        detector = OneShotSTLDetector(series.period + delta, shift_window=shift_window)
        scores = detector.detect(series.train_values, series.test_values)
        positions = np.where(series.test_labels == 1)[0]
        verdicts.append(
            kdd21_single(scores, int(positions[0]), int(positions[-1]) + 1, tolerance=100)
        )
    return kdd21_score(verdicts)


def _evaluate_family(series_list, delta, shift_window):
    values = []
    for series in series_list:
        detector = OneShotSTLDetector(series.period + delta, shift_window=shift_window)
        scores = detector.detect(series.train_values, series.test_values)
        values.append(
            vus_roc(series.test_labels, scores, max_window=min(series.period // 2, 100), steps=5)
        )
    return float(np.mean(values))


def _collect():
    rows = []
    kdd_series = _kdd_series()
    families = _family_series()
    for delta in _delta_values():
        for shift_window in (0, 20):
            rows.append(
                {
                    "dataset": "KDD21-like",
                    "delta_t": delta,
                    "H": shift_window,
                    "score": _evaluate_kdd(kdd_series, delta, shift_window),
                }
            )
            for name, series_list in families.items():
                rows.append(
                    {
                        "dataset": name,
                        "delta_t": delta,
                        "H": shift_window,
                        "score": _evaluate_family(series_list, delta, shift_window),
                    }
                )
    return rows


def test_figure8_ablation_tsad(run_once):
    rows = run_once(_collect)
    report("figure8_ablation_tsad", "Figure 8: dT / H ablation on TSAD", rows)

    scores = {(row["dataset"], row["delta_t"], row["H"]): row["score"] for row in rows}
    datasets = {row["dataset"] for row in rows}
    deltas = sorted({row["delta_t"] for row in rows})
    # With the shift window enabled, accuracy at the largest period error is
    # at least as good as without it on a majority of datasets.
    better = sum(
        1
        for dataset in datasets
        if scores[(dataset, deltas[-1], 20)] >= scores[(dataset, deltas[-1], 0)] - 1e-9
    )
    assert better >= len(datasets) / 2, scores
    assert all(np.isfinite(row["score"]) for row in rows)
