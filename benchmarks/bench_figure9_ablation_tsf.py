"""Figure 9: ablation of the period error (dT) and shift window (H) on TSF.

Same perturbation as Figure 8, applied to the forecasting task (horizon 96)
on the four strongly seasonal TSF-like datasets.  Expected shape: the
forecast error grows quickly with dT regardless of H, because the forecast
extrapolates with the wrong period and the shift search can only correct
the decomposition of observed points, not future ones -- exactly the
explanation the paper gives.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import make_tsf_dataset
from repro.forecasting import OneShotSTLForecaster, evaluate_on_series

from helpers import is_paper_scale, report


def _delta_values():
    return [0, 5, 10, 15, 20] if is_paper_scale() else [0, 10, 20]


def _datasets():
    return ["ETTm2", "Electricity", "Traffic", "Weather"]


def _collect():
    horizon = 96
    max_origins = 6 if is_paper_scale() else 3
    rows = []
    for dataset_name in _datasets():
        series = make_tsf_dataset(dataset_name, seed=5)
        for delta in _delta_values():
            for shift_window in (0, 20):
                forecaster = OneShotSTLForecaster(
                    series.period + delta, shift_window=shift_window
                )
                evaluation = evaluate_on_series(
                    forecaster, series, horizon=horizon, max_origins=max_origins
                )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "delta_t": delta,
                        "H": shift_window,
                        "mae": evaluation.mae,
                    }
                )
    return rows


def test_figure9_ablation_tsf(run_once):
    rows = run_once(_collect)
    report("figure9_ablation_tsf", "Figure 9: dT / H ablation on TSF (horizon 96)", rows)

    errors = {(row["dataset"], row["delta_t"], row["H"]): row["mae"] for row in rows}
    deltas = sorted({row["delta_t"] for row in rows})
    datasets = {row["dataset"] for row in rows}
    # The paper's observation: a wrong period hurts forecasting badly, with
    # or without the shift search.
    worse = sum(
        1
        for dataset in datasets
        for shift_window in (0, 20)
        if errors[(dataset, deltas[-1], shift_window)]
        > errors[(dataset, 0, shift_window)]
    )
    assert worse >= len(datasets), errors
    assert all(np.isfinite(row["mae"]) for row in rows)
