"""Served-throughput benchmark: concurrent columnar ingest over HTTP.

Everything below the wire is a library; this benchmark measures what the
network front door costs.  It stands up a **real server process**
(``python -m repro.serving`` on a durable store), drives it with
``N_CLIENTS`` concurrent clients streaming columnar bulk-ingest requests
over keep-alive connections -- each client owns a disjoint slice of the
fleet -- and reports:

* served aggregate throughput (points/sec across all clients),
* p50 / p99 request latency over the timed window,
* the same run's **in-process** columnar throughput: a twin engine with
  the identical spec fed the identical batches via
  :meth:`~repro.streaming.MultiSeriesEngine.ingest_grid` directly
  (plus a full-width context row -- see :func:`_bench_in_process`).

The ratio of the two is the cost of serving -- HTTP framing, wire
decode, thread handoff, the WAL the durable session journals to -- and
``check_perf_regression.py`` gates it at :data:`SERVED_COLUMNAR_FLOOR`
of the in-process number.  While the timed ingest runs, a poller thread
hits ``GET /health`` and paginated ``GET /v1/anomalies`` and every reply
must answer (the acceptance criterion that reads must not starve behind
bulk writes).

Results merge into ``benchmarks/results/BENCH_engine.json`` (new rows +
``served_*`` summary fields), so CI's perf artifact stays one document::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
    PYTHONPATH=src python benchmarks/check_perf_regression.py

``--smoke`` shrinks the fleet and stream for a seconds-long sanity run;
smoke numbers are reported but never comparable to full-workload runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from helpers import RESULTS_DIRECTORY, report, report_json

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving import ServingClient, ServingError  # noqa: E402
from repro.streaming.engine import MultiSeriesEngine  # noqa: E402

#: served aggregate throughput must keep at least this fraction of the
#: same run's in-process 1000-series columnar ingest (the tentpole gate:
#: the network front door may cost at most half the library's speed)
SERVED_COLUMNAR_FLOOR = 0.5

PERIOD = 24
INITIALIZATION = 4 * PERIOD
#: untimed online rounds after initialization, so both sides measure the
#: steady state (matches bench_engine_throughput's warm-up discipline)
ONLINE_WARMUP = 8

N_CLIENTS = 4


def _workload(smoke: bool) -> tuple[int, int, int]:
    """(n_series, timed rounds, rounds per request).

    Requests are deliberately bulk-sized (16 rounds x 250 series = 4000
    points each at the full workload): the columnar wire format exists
    so one request can carry thousands of points, and per-request
    overhead -- HTTP parse, thread handoff, WAL append -- amortizes away
    at that granularity.
    """
    if smoke:
        return 200, 32, 16
    return 1000, 96, 16


def _fleet_values(n_series: int, length: int) -> np.ndarray:
    """Round-major ``(length, n_series)`` grid of seasonal streams."""
    rng = np.random.default_rng(7)
    time_axis = np.arange(length)[:, None]
    phase = rng.uniform(0.0, 2 * np.pi, n_series)[None, :]
    return (
        np.sin(2 * np.pi * time_axis / PERIOD + phase)
        + 0.01 * time_axis
        + rng.normal(0.0, 0.05, (length, n_series))
    )


def _bench_in_process(
    keys: list[str], grid: np.ndarray, timed_start: int, rounds_per_request: int
) -> tuple[float, float]:
    """The comparator: identical spec, identical batches, no network.

    Returns ``(same_batches, full_width)`` points/sec.  ``same_batches``
    replays the *exact* request stream the HTTP clients send -- each
    client's 1/``N_CLIENTS`` key slice as its own columnar batch -- so
    the served/in-process ratio isolates what the wire costs.  The
    distinction matters: ingesting a key *subset* of a large fleet
    restages the fleet kernel and costs ~2x per point before any
    network is involved, and that engine property must not be billed to
    the serving layer.  ``full_width`` (every key in one batch) rides
    along as the context row.
    """
    n_series = len(keys)
    slice_width = n_series // N_CLIENTS
    engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
    engine.ingest_grid(keys, grid[:timed_start])
    start = time.perf_counter()
    for begin in range(timed_start, grid.shape[0], rounds_per_request):
        window = grid[begin : begin + rounds_per_request]
        for left in range(0, n_series, slice_width):
            engine.ingest_grid(
                keys[left : left + slice_width],
                np.ascontiguousarray(window[:, left : left + slice_width]),
            )
    same_batches_elapsed = time.perf_counter() - start
    timed_points = (grid.shape[0] - timed_start) * n_series

    engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
    engine.ingest_grid(keys, grid[:timed_start])
    start = time.perf_counter()
    for begin in range(timed_start, grid.shape[0], rounds_per_request):
        engine.ingest_grid(keys, grid[begin : begin + rounds_per_request])
    full_width_elapsed = time.perf_counter() - start
    return (
        timed_points / same_batches_elapsed,
        timed_points / full_width_elapsed,
    )


class _ServerProcess:
    """A real ``python -m repro.serving`` subprocess on a fresh store."""

    def __init__(self, store_dir: str, max_in_flight: int = 64):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving",
                "--store",
                store_dir,
                "--period",
                str(PERIOD),
                "--port",
                "0",
                "--max-in-flight",
                str(max_in_flight),
                "--workers",
                str(N_CLIENTS + 4),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        ready = self.process.stdout.readline()
        if "ready on http://" not in ready:
            self.process.kill()
            raise RuntimeError(
                f"server did not come up: {ready!r}\n"
                f"{self.process.stderr.read()}"
            )
        self.port = int(ready.rsplit(":", 1)[1])

    def shutdown(self) -> int:
        """SIGTERM and wait: a drained shutdown must exit 0."""
        self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=120)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            raise RuntimeError("server did not drain within 120s")

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait()


def _client_stream(
    port: int,
    keys: list[str],
    grid: np.ndarray,
    timed_start: int,
    rounds_per_request: int,
    barrier: threading.Barrier,
    latencies: list[float],
    errors: list[str],
) -> None:
    """One client: warm its slice, sync on the barrier, stream timed."""
    try:
        with ServingClient("127.0.0.1", port, timeout=120.0) as client:
            summary = client.ingest(keys, grid[:timed_start])
            assert summary.complete
            barrier.wait()
            for begin in range(timed_start, grid.shape[0], rounds_per_request):
                start = time.perf_counter()
                client.ingest(keys, grid[begin : begin + rounds_per_request])
                latencies.append(time.perf_counter() - start)
    except (ServingError, OSError, AssertionError) as error:
        errors.append(f"{type(error).__name__}: {error}")
        try:
            barrier.abort()
        except threading.BrokenBarrierError:
            pass


def _poll_queries(
    port: int, stop: threading.Event, outcomes: list[tuple[int, int]]
) -> None:
    """Hit /health and paginated /v1/anomalies while the ingest runs."""
    ok = failed = 0
    with ServingClient("127.0.0.1", port, timeout=60.0) as client:
        while not stop.is_set():
            try:
                health = client.health()
                listing = client.anomalies(limit=10, sort="-index")
                cursor = listing["page"]["next_cursor"]
                if cursor is not None:
                    client.anomalies(limit=10, sort="-index", cursor=cursor)
                if health["http_status"] == 200:
                    ok += 1
                else:
                    failed += 1
            except (ServingError, OSError):
                failed += 1
            time.sleep(0.02)
    outcomes.append((ok, failed))


def _bench_served(
    keys: list[str],
    grid: np.ndarray,
    timed_start: int,
    rounds_per_request: int,
) -> dict:
    """Drive the live server with N_CLIENTS concurrent columnar streams."""
    n_series = len(keys)
    slice_width = n_series // N_CLIENTS
    store_dir = tempfile.mkdtemp(prefix="bench-serving-")
    server = _ServerProcess(store_dir)
    try:
        barrier = threading.Barrier(N_CLIENTS + 1)
        latencies: list[list[float]] = [[] for _ in range(N_CLIENTS)]
        errors: list[str] = []
        threads = []
        for client_index in range(N_CLIENTS):
            begin = client_index * slice_width
            end = begin + slice_width
            threads.append(
                threading.Thread(
                    target=_client_stream,
                    args=(
                        server.port,
                        keys[begin:end],
                        np.ascontiguousarray(grid[:, begin:end]),
                        timed_start,
                        rounds_per_request,
                        barrier,
                        latencies[client_index],
                        errors,
                    ),
                )
            )
        for thread in threads:
            thread.start()
        barrier.wait()  # every client finished its warm-up slice
        stop_poller = threading.Event()
        poll_outcomes: list[tuple[int, int]] = []
        poller = threading.Thread(
            target=_poll_queries, args=(server.port, stop_poller, poll_outcomes)
        )
        start = time.perf_counter()
        poller.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stop_poller.set()
        poller.join()
        exit_code = server.shutdown()
    except Exception:
        server.kill()
        raise
    if errors:
        raise RuntimeError(f"client streams failed: {errors}")
    timed_points = (grid.shape[0] - timed_start) * slice_width * N_CLIENTS
    flat = sorted(value for bucket in latencies for value in bucket)
    polls_ok, polls_failed = poll_outcomes[0]
    return {
        "points_per_sec": timed_points / elapsed,
        "p50_ms": 1e3 * statistics.median(flat),
        "p99_ms": 1e3 * flat[min(len(flat) - 1, int(0.99 * len(flat)))],
        "requests": len(flat),
        "polls_ok": polls_ok,
        "polls_failed": polls_failed,
        "server_exit_code": exit_code,
    }


def _merge_into_bench_engine(rows: list[dict], fields: dict, smoke: bool) -> None:
    """Fold the serving rows + summary fields into BENCH_engine.json.

    The engine benchmark writes the document first in CI; running this
    benchmark standalone creates a serving-only document (the regression
    gate will then point at the missing engine fields by name).
    """
    path = RESULTS_DIRECTORY / "BENCH_engine.json"
    if path.exists():
        document = json.loads(path.read_text())
        document["rows"] = [
            row
            for row in document.get("rows", [])
            if not str(row.get("config", "")).startswith("served")
        ] + rows
    else:
        document = {
            "benchmark": "engine_throughput",
            "schema_version": 1,
            "workload": "smoke" if smoke else "full",
            "rows": rows,
        }
    document.update(fields)
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"[json] merged serving fields into {path}")


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    smoke = "--smoke" in arguments
    n_series, timed_rounds, rounds_per_request = _workload(smoke)
    keys = [f"series-{index:04d}" for index in range(n_series)]
    timed_start = INITIALIZATION + ONLINE_WARMUP
    grid = _fleet_values(n_series, timed_start + timed_rounds)

    in_process, full_width = _bench_in_process(
        keys, grid, timed_start, rounds_per_request
    )
    served = _bench_served(keys, grid, timed_start, rounds_per_request)
    ratio = served["points_per_sec"] / in_process

    rows = [
        {
            "config": "served ingest (in-process comparator, same batches)",
            "series": n_series,
            "online_points": timed_rounds * n_series,
            "points_per_sec": in_process,
            "us_per_point": 1e6 / in_process,
        },
        {
            "config": "served ingest (in-process, full-width batches)",
            "series": n_series,
            "online_points": timed_rounds * n_series,
            "points_per_sec": full_width,
            "us_per_point": 1e6 / full_width,
        },
        {
            "config": f"served ingest ({N_CLIENTS} HTTP clients)",
            "series": n_series,
            "online_points": timed_rounds * n_series,
            "points_per_sec": served["points_per_sec"],
            "us_per_point": 1e6 / served["points_per_sec"],
            "p50_ms": served["p50_ms"],
            "p99_ms": served["p99_ms"],
            "served_vs_inprocess_ratio": ratio,
        },
    ]
    report(
        "serving_throughput",
        "Served throughput: concurrent columnar ingest over HTTP",
        rows,
    )
    print(
        f"served/in-process ratio {ratio:.2f} "
        f"(floor {SERVED_COLUMNAR_FLOOR}); "
        f"{served['requests']} requests, "
        f"p50 {served['p50_ms']:.1f} ms, p99 {served['p99_ms']:.1f} ms; "
        f"{served['polls_ok']} health+anomaly polls answered during "
        f"ingest ({served['polls_failed']} failed); "
        f"server exit code {served['server_exit_code']}"
    )
    fields = {
        "served_points_per_sec": served["points_per_sec"],
        "served_inprocess_points_per_sec": in_process,
        "served_inprocess_full_width_points_per_sec": full_width,
        "served_vs_inprocess_ratio": ratio,
        "served_request_p50_ms": served["p50_ms"],
        "served_request_p99_ms": served["p99_ms"],
        "served_clients": N_CLIENTS,
        "served_series": n_series,
        "served_polls_ok": served["polls_ok"],
        "served_polls_failed": served["polls_failed"],
        "served_workload": "smoke" if smoke else "full",
    }
    _merge_into_bench_engine(rows, fields, smoke)
    report_json(
        "BENCH_serving.json",
        "serving_throughput",
        rows,
        **fields,
    )

    failures = []
    if served["server_exit_code"] != 0:
        failures.append(
            f"graceful shutdown exited {served['server_exit_code']}, not 0"
        )
    if served["polls_ok"] == 0:
        failures.append(
            "no /health + /v1/anomalies polls were answered during ingest"
        )
    if served["polls_failed"] > 0:
        failures.append(
            f"{served['polls_failed']} read polls failed during ingest: "
            "reads starved behind bulk writes"
        )
    if smoke:
        if failures:
            print("FAIL:", *failures, sep="\n  ")
            return 1
        print(
            "[info] smoke workload: ratio reported, not gated "
            "(check_perf_regression.py gates the full run)"
        )
        return 0
    if ratio < SERVED_COLUMNAR_FLOOR:
        failures.append(
            f"served throughput is only {ratio:.2f}x the in-process "
            f"columnar ingest (floor {SERVED_COLUMNAR_FLOOR}x)"
        )
    if failures:
        print("FAIL:", *failures, sep="\n  ")
        return 1
    print("OK: serving layer within budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
