"""Figure 10: ablation of the IRLS iteration count I on forecasting.

The paper compares OneShotSTL with I = 1 and I = 8 across the four strongly
seasonal TSF datasets and all horizons.  Expected shape: I = 8 produces
equal or lower MAE than I = 1 in most settings (clearly so on the
ETTm2-like data), at the cost of proportionally more computation per point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets import make_tsf_dataset
from repro.forecasting import OneShotSTLForecaster, evaluate_on_series

from helpers import is_paper_scale, report


def _horizons(series):
    return list(series.horizons) if is_paper_scale() else [series.horizons[0], series.horizons[2]]


def _datasets():
    return ["ETTm2", "Electricity", "Traffic", "Weather"]


def _collect():
    max_origins = 6 if is_paper_scale() else 3
    rows = []
    for dataset_name in _datasets():
        series = make_tsf_dataset(dataset_name, seed=5)
        for horizon in _horizons(series):
            for iterations in (1, 8):
                start = time.perf_counter()
                evaluation = evaluate_on_series(
                    OneShotSTLForecaster(series.period, iterations=iterations, shift_window=20),
                    series,
                    horizon=horizon,
                    max_origins=max_origins,
                )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "horizon": horizon,
                        "iterations": iterations,
                        "mae": evaluation.mae,
                        "time_s": time.perf_counter() - start,
                    }
                )
    return rows


def test_figure10_ablation_iterations(run_once):
    rows = run_once(_collect)
    report("figure10_ablation_iters", "Figure 10: iteration-count ablation on TSF", rows)

    errors = {
        (row["dataset"], row["horizon"], row["iterations"]): row["mae"] for row in rows
    }
    times = {
        (row["dataset"], row["horizon"], row["iterations"]): row["time_s"] for row in rows
    }
    settings = {(row["dataset"], row["horizon"]) for row in rows}
    # I = 8 is at least as accurate as I = 1 in the majority of settings
    # (allowing a small tolerance for noise), and never free: it costs more
    # time than I = 1 on aggregate.
    not_worse = sum(
        1
        for setting in settings
        if errors[(*setting, 8)] <= errors[(*setting, 1)] * 1.05
    )
    assert not_worse >= len(settings) / 2, errors
    assert sum(times[(*s, 8)] for s in settings) > sum(times[(*s, 1)] for s in settings)
    assert all(np.isfinite(row["mae"]) for row in rows)
