"""Benchmark-suite configuration.

The benchmarks measure end-to-end experiment regeneration, not
micro-operations, so every benchmark runs exactly once (``pedantic`` with a
single round) -- repeated rounds would multiply multi-minute workloads.
"""

import sys
from pathlib import Path

import pytest

# Make the benchmark helpers importable as a plain module regardless of the
# directory pytest is invoked from.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def run_once(benchmark):
    """Run ``function`` exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
