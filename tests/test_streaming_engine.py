"""Tests for the multi-series streaming engine."""

import pickle

import numpy as np
import pytest

from repro.core import OneShotSTL
from repro.decomposition import OnlineSTL
from repro.streaming import MultiSeriesEngine, StreamingPipeline

from tests.conftest import make_seasonal_series

PERIOD = 24
INIT = 4 * PERIOD


def make_fleet_data(n_series, length=PERIOD * 8):
    return {
        f"host-{index}": make_seasonal_series(length, PERIOD, seed=100 + index)[
            "values"
        ]
        for index in range(n_series)
    }


def interleaved_batches(data):
    """Yield one batch per timestamp, covering every key."""
    length = len(next(iter(data.values())))
    for position in range(length):
        yield [(key, values[position]) for key, values in data.items()]


class TestLazyInitialization:
    def test_warming_then_live(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=3)["values"]
        statuses = [engine.process("m", float(value)).status for value in values]
        assert statuses[:INIT] == ["warming"] * INIT
        assert statuses[INIT:] == ["live"] * (values.size - INIT)
        assert engine.live_keys() == ["m"]

    def test_warming_records_carry_no_payload(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        record = engine.process("m", 1.0)
        assert record.record is None
        assert not record.is_anomaly

    def test_unknown_key_creates_series_lazily(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        assert len(engine) == 0
        engine.process("a", 0.0)
        engine.process("b", 0.0)
        assert len(engine) == 2
        assert "a" in engine and "b" in engine
        assert engine.keys() == ["a", "b"]

    def test_forecast_requires_live_series(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        engine.process("m", 1.0)
        with pytest.raises(RuntimeError):
            engine.forecast("m", 4)
        with pytest.raises(KeyError):
            engine.forecast("missing", 4)

    def test_nan_during_warmup_is_rejected_without_wedging_the_series(self):
        """Regression: a NaN warmup sample used to poison the window forever.

        The non-finite value must be rejected up front (not buffered), and
        the series must still be able to warm up and go live on the
        remaining finite values.
        """
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=21)["values"]
        engine.process("m", float(values[0]))
        with pytest.raises(ValueError, match="warming up.*non-finite"):
            engine.process("m", float("nan"))
        # The series is not wedged: finite values keep filling the window...
        statuses = [
            engine.process("m", float(value)).status for value in values[1:]
        ]
        assert statuses[-1] == "live"
        # ...and the rejected sample was never counted.
        assert engine.series_stats("m").points == values.size

    def test_nan_while_live_is_imputed_not_rejected(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=22)["values"]
        for value in values:
            engine.process("m", float(value))
        record = engine.process("m", float("nan"))
        assert record.status == "live"
        assert np.isfinite(record.record.value)


class TestBatchedIngestEquivalence:
    def test_matches_independent_pipelines(self):
        """Interleaved batched ingest must equal N hand-run pipelines exactly."""
        data = make_fleet_data(4)
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        engine_records = {key: [] for key in data}
        for batch in interleaved_batches(data):
            for record in engine.ingest(batch):
                if record.status == "live":
                    engine_records[record.key].append(record.record)

        for key, values in data.items():
            pipeline = StreamingPipeline(OneShotSTL(PERIOD, shift_window=0))
            pipeline.initialize(values[:INIT])
            expected = pipeline.process_many(values[INIT:])
            assert engine_records[key] == expected

    def test_matches_with_shift_search_enabled(self):
        data = make_fleet_data(3, length=PERIOD * 7)
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=10)
        engine_records = {key: [] for key in data}
        for batch in interleaved_batches(data):
            for record in engine.ingest(batch):
                if record.status == "live":
                    engine_records[record.key].append(record.record)
        for key, values in data.items():
            pipeline = StreamingPipeline(OneShotSTL(PERIOD, shift_window=10))
            pipeline.initialize(values[:INIT])
            assert engine_records[key] == pipeline.process_many(values[INIT:])

    def test_ingest_preserves_input_order(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        batch = [("a", 1.0), ("b", 2.0), ("a", 3.0)]
        records = engine.ingest(batch)
        assert [record.key for record in records] == ["a", "b", "a"]
        assert engine.series_stats("a").points == 2
        assert engine.series_stats("b").points == 1

    def test_heterogeneous_pipeline_factory(self):
        """Per-key configuration flows through the factory."""

        def factory(key):
            if key == "slow":
                return StreamingPipeline(OnlineSTL(PERIOD))
            return StreamingPipeline(OneShotSTL(PERIOD, shift_window=0))

        engine = MultiSeriesEngine(factory, initialization_length=INIT)
        data = make_fleet_data(1)["host-0"]
        for value in data:
            engine.process("slow", float(value))
            engine.process("fast", float(value))
        assert type(engine._series["slow"].pipeline.decomposer).__name__ == "OnlineSTL"
        assert type(engine._series["fast"].pipeline.decomposer).__name__ == "OneShotSTL"


class TestCheckpointing:
    def test_snapshot_restore_is_deterministic(self):
        data = make_fleet_data(3)
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        batches = list(interleaved_batches(data))
        for batch in batches[: PERIOD * 6]:
            engine.ingest(batch)

        checkpoint = engine.snapshot()
        first_run = [engine.ingest(batch) for batch in batches[PERIOD * 6 :]]
        engine.restore(checkpoint)
        second_run = [engine.ingest(batch) for batch in batches[PERIOD * 6 :]]
        for first, second in zip(first_run, second_run):
            assert [r.record for r in first] == [r.record for r in second]

    def test_snapshot_is_isolated_from_later_ingest(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=5)["values"]
        for value in values:
            engine.process("m", float(value))
        checkpoint = engine.snapshot()
        points_before = engine.series_stats("m").points
        engine.process("m", 1.0)
        engine.restore(checkpoint)
        assert engine.series_stats("m").points == points_before

    def test_checkpoint_round_trips_through_pickle(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=6)["values"]
        for value in values:
            engine.process("m", float(value))
        blob = pickle.dumps(engine.snapshot())
        record_direct = engine.process("m", float(values[-1]))

        fresh = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        fresh.restore(pickle.loads(blob))
        record_restored = fresh.process("m", float(values[-1]))
        assert record_direct.record == record_restored.record

    def test_restore_rejects_foreign_objects(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        with pytest.raises(TypeError):
            engine.restore({"m": "not-a-series-state"})


class TestFleetStats:
    def test_counts_and_anomalies(self):
        data = make_fleet_data(2)
        spiked = dict(data)
        spiked["host-0"] = data["host-0"].copy()
        spiked["host-0"][PERIOD * 6] += 15.0

        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        for batch in interleaved_batches(spiked):
            engine.ingest(batch)
        stats = engine.fleet_stats()
        assert stats.series_total == 2
        assert stats.series_live == 2
        assert stats.series_warming == 0
        assert stats.points_total == sum(len(v) for v in spiked.values())
        assert stats.anomalies_total >= 1
        assert stats.per_series["host-0"].anomalies >= 1
        assert stats.per_series["host-1"].anomalies == 0

    def test_per_key_latency_percentiles(self):
        data = make_fleet_data(2, length=PERIOD * 6)
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        stats = engine.fleet_stats()
        for key in data:
            latency = stats.per_series[key].latency
            assert latency is not None
            assert latency.points == PERIOD * 2
            assert latency.p99_seconds >= latency.median_seconds > 0

    def test_latency_tracking_can_be_disabled(self):
        engine = MultiSeriesEngine.for_oneshotstl(
            PERIOD, shift_window=0, track_latency=False
        )
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=7)["values"]
        for value in values:
            engine.process("m", float(value))
        assert engine.series_stats("m").latency is None

    def test_warming_series_counted(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        engine.process("m", 1.0)
        stats = engine.fleet_stats()
        assert stats.series_warming == 1
        assert stats.series_live == 0
        assert stats.points_total == 1


class TestScale:
    def test_sustains_many_concurrent_series(self):
        """A large keyed fleet streams through one engine without issue."""
        n_series = 120
        engine = MultiSeriesEngine.for_oneshotstl(
            PERIOD, shift_window=0, iterations=1, track_latency=False
        )
        base = make_seasonal_series(PERIOD * 5, PERIOD, seed=8)["values"]
        for position in range(base.size):
            engine.ingest(
                [(f"k{index}", base[position] + index) for index in range(n_series)]
            )
        stats = engine.fleet_stats()
        assert stats.series_total == n_series
        assert stats.series_live == n_series
        assert stats.points_total == n_series * base.size
