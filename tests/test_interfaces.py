"""Tests for the shared data containers and interfaces."""

import numpy as np
import pytest

from repro.datasets import AnomalySeries, ComponentSeries, ForecastSeries
from repro.decomposition import DecompositionPoint, DecompositionResult
from repro.forecasting.base import Forecaster


class TestDecompositionResult:
    def _result(self, n=10, period=5):
        observed = np.arange(float(n))
        trend = 0.5 * observed
        seasonal = np.sin(observed)
        residual = observed - trend - seasonal
        return DecompositionResult(observed, trend, seasonal, residual, period)

    def test_reconstruct_identity(self):
        result = self._result()
        np.testing.assert_allclose(result.reconstruct(), result.observed)

    def test_point_accessor(self):
        result = self._result()
        point = result.point(3)
        assert isinstance(point, DecompositionPoint)
        assert point.value == 3.0
        assert point.reconstruct() == pytest.approx(3.0)

    def test_tail_returns_copy(self):
        result = self._result()
        tail = result.tail(4)
        assert len(tail) == 4
        tail.trend[:] = 0.0
        assert result.trend[-1] != 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DecompositionResult(
                np.zeros(5), np.zeros(4), np.zeros(5), np.zeros(5), period=2
            )

    def test_len(self):
        assert len(self._result(7)) == 7


class TestComponentSeries:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ComponentSeries(
                name="bad",
                values=np.zeros(5),
                trend=np.zeros(4),
                seasonal=np.zeros(5),
                residual=np.zeros(5),
                period=2,
            )


class TestAnomalySeries:
    def _series(self):
        values = np.arange(100.0)
        labels = np.zeros(100, dtype=int)
        labels[80:85] = 1
        return AnomalySeries("demo", values, labels, train_length=50, period=10)

    def test_train_test_split_views(self):
        series = self._series()
        assert series.train_values.size == 50
        assert series.test_values.size == 50
        assert series.test_labels.sum() == 5
        assert series.anomaly_fraction == pytest.approx(0.05)
        assert len(series) == 100

    def test_invalid_train_length_rejected(self):
        with pytest.raises(ValueError):
            AnomalySeries("bad", np.zeros(10), np.zeros(10, dtype=int), train_length=10, period=3)

    def test_label_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AnomalySeries("bad", np.zeros(10), np.zeros(9, dtype=int), train_length=5, period=3)


class TestForecastSeries:
    def test_split_boundaries(self):
        series = ForecastSeries(
            name="demo",
            values=np.arange(1000.0),
            period=24,
            horizons=(96,),
            train_fraction=0.7,
            validation_fraction=0.1,
        )
        assert series.train_end == 700
        assert series.validation_end == 800
        assert series.train_values.size == 700
        assert series.validation_values.size == 100
        assert series.test_values.size == 200

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            ForecastSeries("bad", np.zeros(10), 2, (4,), train_fraction=1.2)
        with pytest.raises(ValueError):
            ForecastSeries("bad", np.zeros(10), 2, (4,), train_fraction=0.7, validation_fraction=0.4)


class TestForecasterValidation:
    class _Dummy(Forecaster):
        name = "dummy"

        def fit(self, train_values):
            self._validate_fit(train_values, min_length=3)
            return self

        def forecast(self, history, horizon):
            history, horizon = self._validate_forecast(history, horizon)
            return np.full(horizon, history[-1])

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            self._Dummy().fit([1.0, 2.0])

    def test_forecast_validation(self):
        model = self._Dummy().fit([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            model.forecast([1.0], 0)
        np.testing.assert_allclose(model.forecast([1.0, 5.0], 3), [5.0, 5.0, 5.0])
