"""Tests for the forecasting subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_tsf_dataset
from repro.forecasting import (
    ARIMAForecaster,
    AutoARIMAForecaster,
    DirectRidgeForecaster,
    DriftForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    NBeatsLiteForecaster,
    OneShotSTLForecaster,
    OnlineSTLForecaster,
    SeasonalNaiveForecaster,
    evaluate_on_series,
    rolling_origin_evaluation,
)
from repro.metrics import mae

from tests.conftest import make_seasonal_series


def seasonal_values(length=800, period=40, seed=0, noise=0.05, trend_slope=0.01):
    data = make_seasonal_series(length, period, seed=seed, noise=noise, trend_slope=trend_slope)
    return data["values"], data["seasonal"], data["trend"], period


class TestNaiveForecasters:
    def test_naive_repeats_last_value(self):
        model = NaiveForecaster().fit(np.arange(10.0))
        np.testing.assert_allclose(model.forecast(np.arange(10.0), 5), np.full(5, 9.0))

    def test_seasonal_naive_repeats_period(self):
        values = np.tile(np.arange(4.0), 6)
        model = SeasonalNaiveForecaster(4).fit(values)
        prediction = model.forecast(values, 6)
        np.testing.assert_allclose(prediction, [0, 1, 2, 3, 0, 1])

    def test_drift_extrapolates_slope(self):
        values = np.arange(20.0)
        prediction = DriftForecaster().fit(values).forecast(values, 3)
        np.testing.assert_allclose(prediction, [20.0, 21.0, 22.0])

    def test_seasonal_naive_short_history_falls_back(self):
        model = SeasonalNaiveForecaster(10).fit(np.arange(12.0))
        prediction = model.forecast(np.arange(5.0), 3)
        np.testing.assert_allclose(prediction, np.full(3, 4.0))


class TestSTDForecasters:
    def test_oneshotstl_forecasts_seasonal_signal(self):
        values, seasonal, trend, period = seasonal_values(trend_slope=0.001)
        split = 600
        model = OneShotSTLForecaster(period, shift_window=0)
        model.fit(values[:split])
        prediction = model.forecast(values[:split], 2 * period)
        actual = values[split : split + 2 * period]
        # The paper's forecast rule keeps the trend flat, so the error grows
        # with the horizon on trending data; it must still capture the
        # seasonal swings and clearly beat the naive flat forecast.
        assert mae(actual, prediction) < 0.3
        naive_error = mae(actual, np.full(actual.size, values[split - 1]))
        assert mae(actual, prediction) < 0.5 * naive_error

    def test_onlinestl_forecaster_runs(self):
        values, _, _, period = seasonal_values(seed=3)
        model = OnlineSTLForecaster(period)
        model.fit(values[:600])
        prediction = model.forecast(values[:650], period)
        assert prediction.shape == (period,)
        assert np.all(np.isfinite(prediction))

    def test_incremental_history_consumption(self):
        values, _, _, period = seasonal_values(seed=4)
        model = OneShotSTLForecaster(period, shift_window=0)
        model.fit(values[:500])
        model.forecast(values[:600], 10)
        with pytest.raises(ValueError):
            model.forecast(values[:550], 10)

    def test_forecast_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            OneShotSTLForecaster(20).forecast(np.arange(50.0), 5)


class TestHoltWinters:
    def test_tracks_seasonal_signal(self):
        values, _, _, period = seasonal_values(seed=5)
        split = 600
        model = HoltWintersForecaster(period).fit(values[:split])
        prediction = model.forecast(values[:split], period)
        assert mae(values[split : split + period], prediction) < 0.3

    def test_short_history_falls_back_to_last_value(self):
        model = HoltWintersForecaster(10)
        model.level_smoothing = 0.3
        prediction = model.forecast(np.arange(5.0), 3)
        np.testing.assert_allclose(prediction, np.full(3, 4.0))


class TestARIMA:
    def test_ar_recovers_autoregressive_process(self):
        rng = np.random.default_rng(0)
        values = [0.0, 0.0]
        for _ in range(1000):
            values.append(0.6 * values[-1] - 0.3 * values[-2] + rng.normal(0, 0.1))
        values = np.asarray(values)
        model = ARIMAForecaster(order=2, difference_order=0).fit(values)
        assert model._coefficients[0] == pytest.approx(0.6, abs=0.1)
        assert model._coefficients[1] == pytest.approx(-0.3, abs=0.1)

    def test_differencing_handles_linear_trend(self):
        values = 0.5 * np.arange(300.0)
        model = ARIMAForecaster(order=1, difference_order=1).fit(values)
        prediction = model.forecast(values, 10)
        expected = 0.5 * np.arange(300, 310)
        assert mae(expected, prediction) < 0.5

    def test_auto_arima_selects_seasonal_mode_on_seasonal_data(self):
        values, _, _, period = seasonal_values(seed=6, noise=0.02)
        model = AutoARIMAForecaster(period=period).fit(values[:600])
        prediction = model.forecast(values[:600], period)
        assert mae(values[600 : 600 + period], prediction) < 0.5

    def test_auto_arima_without_period_runs(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=300).cumsum()
        model = AutoARIMAForecaster().fit(values)
        assert model.forecast(values, 20).shape == (20,)

    def test_forecast_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            AutoARIMAForecaster().forecast(np.arange(30.0), 5)


class TestLearnedProxies:
    def test_ridge_learns_seasonal_structure(self):
        values, _, _, period = seasonal_values(length=1200, seed=7, noise=0.05)
        split = 900
        model = DirectRidgeForecaster(input_window=2 * period, horizon=period)
        model.fit(values[:split])
        prediction = model.forecast(values[:split], period)
        assert mae(values[split : split + period], prediction) < 0.3

    def test_ridge_rejects_longer_horizon_than_trained(self):
        values, _, _, period = seasonal_values(seed=8)
        model = DirectRidgeForecaster(input_window=period, horizon=10).fit(values[:600])
        with pytest.raises(ValueError):
            model.forecast(values[:600], 20)

    def test_nbeats_lite_beats_naive(self):
        values, _, _, period = seasonal_values(length=1200, seed=9, noise=0.05)
        split = 900
        model = NBeatsLiteForecaster(
            input_window=2 * period, horizon=period, epochs=25, blocks=2, hidden=32
        )
        model.fit(values[:split])
        prediction = model.forecast(values[:split], period)
        actual = values[split : split + period]
        naive_error = mae(actual, np.full(actual.size, values[split - 1]))
        assert mae(actual, prediction) < naive_error

    def test_forecast_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            DirectRidgeForecaster(10, 5).forecast(np.arange(30.0), 5)
        with pytest.raises(RuntimeError):
            NBeatsLiteForecaster(10, 5).forecast(np.arange(30.0), 5)


class TestRollingEvaluation:
    def test_rolling_evaluation_runs_and_reports(self):
        values, _, _, period = seasonal_values(length=1000, seed=10)
        evaluation = rolling_origin_evaluation(
            SeasonalNaiveForecaster(period),
            values,
            train_end=700,
            horizon=period,
            max_origins=10,
            dataset_name="unit",
        )
        assert evaluation.origins == 10
        assert evaluation.mae >= 0
        assert evaluation.dataset == "unit"
        row = evaluation.as_row()
        assert row["method"] == "SeasonalNaive"

    def test_evaluate_on_series_uses_split(self):
        series = make_tsf_dataset("Illness")
        evaluation = evaluate_on_series(
            SeasonalNaiveForecaster(series.period), series, horizon=24, max_origins=5
        )
        assert evaluation.dataset == "Illness"
        assert evaluation.horizon == 24

    def test_oneshotstl_beats_naive_on_seasonal_benchmark(self):
        series = make_tsf_dataset("Traffic")
        horizon = 96
        std_eval = evaluate_on_series(
            OneShotSTLForecaster(series.period, shift_window=0),
            series,
            horizon=horizon,
            max_origins=8,
        )
        naive_eval = evaluate_on_series(
            NaiveForecaster(), series, horizon=horizon, max_origins=8
        )
        assert std_eval.mae < naive_eval.mae

    def test_insufficient_test_region_rejected(self):
        values = np.arange(120.0)
        with pytest.raises(ValueError):
            rolling_origin_evaluation(
                NaiveForecaster(), values, train_end=100, horizon=50
            )

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_property_naive_evaluation_is_finite(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=400).cumsum()
        evaluation = rolling_origin_evaluation(
            NaiveForecaster(), values, train_end=300, horizon=20, max_origins=5
        )
        assert np.isfinite(evaluation.mae)
        assert np.isfinite(evaluation.mse)
