"""Shared fixtures for the OneShotSTL reproduction test suite."""

import numpy as np
import pytest


class SimulatedCrash(RuntimeError):
    """Raised by durability fault hooks to model the process dying there."""


class PathLikeWrapper:
    """Minimal ``os.PathLike`` that is not a ``str`` or ``pathlib.Path``."""

    def __init__(self, path):
        self._path = str(path)

    def __fspath__(self) -> str:
        return self._path


def make_seasonal_series(
    length: int,
    period: int,
    trend_slope: float = 0.01,
    noise: float = 0.05,
    seed: int = 0,
    trend_break: int | None = None,
    trend_break_size: float = 2.0,
) -> dict:
    """Build a synthetic additive series with known components."""
    rng = np.random.default_rng(seed)
    time = np.arange(length)
    trend = trend_slope * time
    if trend_break is not None:
        trend = trend + trend_break_size * (time >= trend_break)
    phase = 2 * np.pi * (time % period) / period
    seasonal = np.sin(phase) + 0.3 * np.sin(2 * phase)
    residual = rng.normal(0.0, noise, size=length)
    return {
        "values": trend + seasonal + residual,
        "trend": trend,
        "seasonal": seasonal,
        "residual": residual,
        "period": period,
    }


@pytest.fixture
def small_seasonal():
    """A short series with period 24 for fast unit tests."""
    return make_seasonal_series(length=24 * 8, period=24, seed=1)


@pytest.fixture
def medium_seasonal():
    """A medium series with period 50 and a trend break."""
    return make_seasonal_series(
        length=50 * 10, period=50, seed=2, trend_break=300, trend_break_size=3.0
    )
