"""Tests for the LDL^T solver substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import (
    BandedLDLT,
    IncrementalBandedLDLT,
    ldlt_factor,
    ldlt_solve,
    solve_symmetric,
)


def random_spd(n: int, rng: np.random.Generator) -> np.ndarray:
    base = rng.normal(size=(n, n))
    return base @ base.T + n * np.eye(n)


def random_banded_spd(n: int, w: int, rng: np.random.Generator) -> np.ndarray:
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(max(0, i - w), i + 1):
            value = rng.normal()
            matrix[i, j] = value
            matrix[j, i] = value
    matrix += (w + 2) * n * np.eye(n)
    return matrix


class TestDenseLDLT:
    def test_factor_reconstructs_matrix(self):
        rng = np.random.default_rng(0)
        matrix = random_spd(8, rng)
        lower, diag = ldlt_factor(matrix)
        reconstructed = lower @ np.diag(diag) @ lower.T
        np.testing.assert_allclose(reconstructed, matrix, atol=1e-8)

    def test_unit_lower_triangular(self):
        rng = np.random.default_rng(1)
        matrix = random_spd(6, rng)
        lower, _ = ldlt_factor(matrix)
        np.testing.assert_allclose(np.diag(lower), np.ones(6))
        assert np.allclose(np.triu(lower, 1), 0.0)

    def test_solve_matches_numpy(self):
        rng = np.random.default_rng(2)
        matrix = random_spd(10, rng)
        rhs = rng.normal(size=10)
        lower, diag = ldlt_factor(matrix)
        x = ldlt_solve(lower, diag, rhs)
        np.testing.assert_allclose(x, np.linalg.solve(matrix, rhs), atol=1e-8)

    def test_solve_symmetric_convenience(self):
        rng = np.random.default_rng(3)
        matrix = random_spd(5, rng)
        rhs = rng.normal(size=5)
        np.testing.assert_allclose(
            solve_symmetric(matrix, rhs), np.linalg.solve(matrix, rhs), atol=1e-8
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ldlt_factor(np.zeros((3, 4)))

    def test_rejects_singular(self):
        with pytest.raises(ValueError):
            ldlt_factor(np.zeros((3, 3)))

    def test_rejects_bad_rhs_shape(self):
        rng = np.random.default_rng(4)
        matrix = random_spd(4, rng)
        lower, diag = ldlt_factor(matrix)
        with pytest.raises(ValueError):
            ldlt_solve(lower, diag, np.zeros(5))

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_solution_satisfies_system(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = random_spd(n, rng)
        rhs = rng.normal(size=n)
        x = solve_symmetric(matrix, rhs)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-6)


class TestBandedLDLT:
    def test_matches_dense_solution(self):
        rng = np.random.default_rng(5)
        matrix = random_banded_spd(30, 4, rng)
        rhs = rng.normal(size=30)
        solver = BandedLDLT.from_dense(matrix, 4)
        np.testing.assert_allclose(solver.solve(rhs), np.linalg.solve(matrix, rhs), atol=1e-8)

    def test_diagonal_positive_for_spd(self):
        rng = np.random.default_rng(6)
        matrix = random_banded_spd(20, 3, rng)
        solver = BandedLDLT.from_dense(matrix, 3)
        assert np.all(solver.diagonal > 0)

    def test_rejects_wrong_rhs(self):
        rng = np.random.default_rng(7)
        matrix = random_banded_spd(10, 2, rng)
        solver = BandedLDLT.from_dense(matrix, 2)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(11))

    @given(
        st.integers(min_value=6, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_banded_matches_dense(self, n, w, seed):
        rng = np.random.default_rng(seed)
        matrix = random_banded_spd(n, w, rng)
        rhs = rng.normal(size=n)
        solver = BandedLDLT.from_dense(matrix, w)
        np.testing.assert_allclose(solver.solve(rhs), np.linalg.solve(matrix, rhs), atol=1e-6)


class DenseReference:
    """Reference implementation of the growing system used to validate the
    incremental solver: it keeps the full dense matrix at every step."""

    def __init__(self):
        self.matrix = np.zeros((0, 0))
        self.rhs = np.zeros(0)

    def extend(self, num_new, updates, rhs_new):
        old = self.matrix.shape[0]
        new = old + num_new
        matrix = np.zeros((new, new))
        matrix[:old, :old] = self.matrix
        rhs = np.zeros(new)
        rhs[:old] = self.rhs
        rhs[old:] = rhs_new
        for row, column, value in updates:
            matrix[row, column] += value
            if row != column:
                matrix[column, row] += value
        self.matrix = matrix
        self.rhs = rhs

    def tail_solution(self, count):
        return np.linalg.solve(self.matrix, self.rhs)[-count:]


def _random_growth_step(rng, old_size, num_new, w):
    """Generate random SPD-preserving updates confined to the mutable tail."""
    new_size = old_size + num_new
    lowest = max(0, old_size - w)
    updates = []
    # Strong diagonal terms for the new variables keep the system SPD.
    for index in range(old_size, new_size):
        updates.append((index, index, 5.0 + rng.uniform(0, 1)))
    # A handful of random off-diagonal couplings within the allowed region.
    for _ in range(6):
        row = int(rng.integers(lowest, new_size))
        column = int(rng.integers(max(lowest, row - w), row + 1))
        updates.append((row, column, rng.normal() * 0.3))
    # Small diagonal bumps on mutable existing indices.
    for index in range(lowest, old_size):
        updates.append((index, index, abs(rng.normal()) * 0.2 + 0.2))
    rhs_new = rng.normal(size=num_new)
    return updates, rhs_new


class TestIncrementalBandedLDLT:
    @pytest.mark.parametrize("w,num_new", [(4, 2), (4, 1), (3, 3), (2, 1), (5, 2)])
    def test_matches_dense_reference(self, w, num_new):
        rng = np.random.default_rng(42 + w * 10 + num_new)
        incremental = IncrementalBandedLDLT(w)
        reference = DenseReference()
        for _ in range(40):
            updates, rhs_new = _random_growth_step(
                rng, incremental.size, num_new, w
            )
            incremental.extend(num_new, updates, rhs_new)
            reference.extend(num_new, updates, rhs_new)
            count = min(w, incremental.size)
            np.testing.assert_allclose(
                incremental.tail_solution(count),
                reference.tail_solution(count),
                atol=1e-8,
            )
        assert incremental.is_incremental

    def test_copy_is_independent(self):
        rng = np.random.default_rng(3)
        solver = IncrementalBandedLDLT(4)
        for _ in range(20):
            updates, rhs_new = _random_growth_step(rng, solver.size, 2, 4)
            solver.extend(2, updates, rhs_new)
        clone = solver.copy()
        before = solver.tail_solution(2).copy()
        updates, rhs_new = _random_growth_step(rng, clone.size, 2, 4)
        clone.extend(2, updates, rhs_new)
        np.testing.assert_allclose(solver.tail_solution(2), before)
        assert clone.size == solver.size + 2

    def test_rejects_update_outside_mutable_region(self):
        rng = np.random.default_rng(4)
        solver = IncrementalBandedLDLT(3)
        for _ in range(10):
            updates, rhs_new = _random_growth_step(rng, solver.size, 1, 3)
            solver.extend(1, updates, rhs_new)
        with pytest.raises(ValueError):
            solver.extend(1, [(0, 0, 1.0), (solver.size, solver.size, 5.0)], [0.0])

    def test_rejects_bandwidth_violation(self):
        solver = IncrementalBandedLDLT(2)
        solver.extend(2, [(0, 0, 5.0), (1, 1, 5.0)], [1.0, 1.0])
        with pytest.raises(ValueError):
            solver.extend(
                2,
                [(2, 2, 5.0), (3, 3, 5.0), (3, 0, 1.0)],
                [1.0, 1.0],
            )

    def test_rejects_too_many_new_variables(self):
        solver = IncrementalBandedLDLT(2)
        with pytest.raises(ValueError):
            solver.extend(3, [], [1.0, 1.0, 1.0])

    def test_empty_system_has_no_solution(self):
        solver = IncrementalBandedLDLT(2)
        with pytest.raises(ValueError):
            solver.tail_solution(1)

    def test_tail_count_limited_in_incremental_mode(self):
        rng = np.random.default_rng(5)
        solver = IncrementalBandedLDLT(2)
        for _ in range(10):
            updates, rhs_new = _random_growth_step(rng, solver.size, 1, 2)
            solver.extend(1, updates, rhs_new)
        assert solver.is_incremental
        with pytest.raises(ValueError):
            solver.tail_solution(3)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_incremental_equals_dense(self, seed):
        rng = np.random.default_rng(seed)
        w = int(rng.integers(2, 6))
        num_new = int(rng.integers(1, w + 1))
        incremental = IncrementalBandedLDLT(w)
        reference = DenseReference()
        for _ in range(15):
            updates, rhs_new = _random_growth_step(rng, incremental.size, num_new, w)
            incremental.extend(num_new, updates, rhs_new)
            reference.extend(num_new, updates, rhs_new)
        count = min(w, incremental.size)
        np.testing.assert_allclose(
            incremental.tail_solution(count),
            reference.tail_solution(count),
            atol=1e-7,
        )
