"""Tests for the LDL^T solver substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import (
    BandedLDLT,
    IncrementalBandedLDLT,
    ldlt_factor,
    ldlt_solve,
    solve_symmetric,
)


def random_spd(n: int, rng: np.random.Generator) -> np.ndarray:
    base = rng.normal(size=(n, n))
    return base @ base.T + n * np.eye(n)


def random_banded_spd(n: int, w: int, rng: np.random.Generator) -> np.ndarray:
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(max(0, i - w), i + 1):
            value = rng.normal()
            matrix[i, j] = value
            matrix[j, i] = value
    matrix += (w + 2) * n * np.eye(n)
    return matrix


class TestDenseLDLT:
    def test_factor_reconstructs_matrix(self):
        rng = np.random.default_rng(0)
        matrix = random_spd(8, rng)
        lower, diag = ldlt_factor(matrix)
        reconstructed = lower @ np.diag(diag) @ lower.T
        np.testing.assert_allclose(reconstructed, matrix, atol=1e-8)

    def test_unit_lower_triangular(self):
        rng = np.random.default_rng(1)
        matrix = random_spd(6, rng)
        lower, _ = ldlt_factor(matrix)
        np.testing.assert_allclose(np.diag(lower), np.ones(6))
        assert np.allclose(np.triu(lower, 1), 0.0)

    def test_solve_matches_numpy(self):
        rng = np.random.default_rng(2)
        matrix = random_spd(10, rng)
        rhs = rng.normal(size=10)
        lower, diag = ldlt_factor(matrix)
        x = ldlt_solve(lower, diag, rhs)
        np.testing.assert_allclose(x, np.linalg.solve(matrix, rhs), atol=1e-8)

    def test_solve_symmetric_convenience(self):
        rng = np.random.default_rng(3)
        matrix = random_spd(5, rng)
        rhs = rng.normal(size=5)
        np.testing.assert_allclose(
            solve_symmetric(matrix, rhs), np.linalg.solve(matrix, rhs), atol=1e-8
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ldlt_factor(np.zeros((3, 4)))

    def test_rejects_singular(self):
        with pytest.raises(ValueError):
            ldlt_factor(np.zeros((3, 3)))

    def test_rejects_bad_rhs_shape(self):
        rng = np.random.default_rng(4)
        matrix = random_spd(4, rng)
        lower, diag = ldlt_factor(matrix)
        with pytest.raises(ValueError):
            ldlt_solve(lower, diag, np.zeros(5))

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_solution_satisfies_system(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = random_spd(n, rng)
        rhs = rng.normal(size=n)
        x = solve_symmetric(matrix, rhs)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-6)


class TestBandedLDLT:
    def test_matches_dense_solution(self):
        rng = np.random.default_rng(5)
        matrix = random_banded_spd(30, 4, rng)
        rhs = rng.normal(size=30)
        solver = BandedLDLT.from_dense(matrix, 4)
        np.testing.assert_allclose(solver.solve(rhs), np.linalg.solve(matrix, rhs), atol=1e-8)

    def test_diagonal_positive_for_spd(self):
        rng = np.random.default_rng(6)
        matrix = random_banded_spd(20, 3, rng)
        solver = BandedLDLT.from_dense(matrix, 3)
        assert np.all(solver.diagonal > 0)

    def test_rejects_wrong_rhs(self):
        rng = np.random.default_rng(7)
        matrix = random_banded_spd(10, 2, rng)
        solver = BandedLDLT.from_dense(matrix, 2)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(11))

    @given(
        st.integers(min_value=6, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_banded_matches_dense(self, n, w, seed):
        rng = np.random.default_rng(seed)
        matrix = random_banded_spd(n, w, rng)
        rhs = rng.normal(size=n)
        solver = BandedLDLT.from_dense(matrix, w)
        np.testing.assert_allclose(solver.solve(rhs), np.linalg.solve(matrix, rhs), atol=1e-6)


class DenseReference:
    """Reference implementation of the growing system used to validate the
    incremental solver: it keeps the full dense matrix at every step."""

    def __init__(self):
        self.matrix = np.zeros((0, 0))
        self.rhs = np.zeros(0)

    def extend(self, num_new, updates, rhs_new):
        old = self.matrix.shape[0]
        new = old + num_new
        matrix = np.zeros((new, new))
        matrix[:old, :old] = self.matrix
        rhs = np.zeros(new)
        rhs[:old] = self.rhs
        rhs[old:] = rhs_new
        for row, column, value in updates:
            matrix[row, column] += value
            if row != column:
                matrix[column, row] += value
        self.matrix = matrix
        self.rhs = rhs

    def tail_solution(self, count):
        return np.linalg.solve(self.matrix, self.rhs)[-count:]


def _random_growth_step(rng, old_size, num_new, w):
    """Generate random SPD-preserving updates confined to the mutable tail."""
    new_size = old_size + num_new
    lowest = max(0, old_size - w)
    updates = []
    # Strong diagonal terms for the new variables keep the system SPD.
    for index in range(old_size, new_size):
        updates.append((index, index, 5.0 + rng.uniform(0, 1)))
    # A handful of random off-diagonal couplings within the allowed region.
    for _ in range(6):
        row = int(rng.integers(lowest, new_size))
        column = int(rng.integers(max(lowest, row - w), row + 1))
        updates.append((row, column, rng.normal() * 0.3))
    # Small diagonal bumps on mutable existing indices.
    for index in range(lowest, old_size):
        updates.append((index, index, abs(rng.normal()) * 0.2 + 0.2))
    rhs_new = rng.normal(size=num_new)
    return updates, rhs_new


class TestIncrementalBandedLDLT:
    @pytest.mark.parametrize("w,num_new", [(4, 2), (4, 1), (3, 3), (2, 1), (5, 2)])
    def test_matches_dense_reference(self, w, num_new):
        rng = np.random.default_rng(42 + w * 10 + num_new)
        incremental = IncrementalBandedLDLT(w)
        reference = DenseReference()
        for _ in range(40):
            updates, rhs_new = _random_growth_step(
                rng, incremental.size, num_new, w
            )
            incremental.extend(num_new, updates, rhs_new)
            reference.extend(num_new, updates, rhs_new)
            count = min(w, incremental.size)
            np.testing.assert_allclose(
                incremental.tail_solution(count),
                reference.tail_solution(count),
                atol=1e-8,
            )
        assert incremental.is_incremental

    def test_copy_is_independent(self):
        rng = np.random.default_rng(3)
        solver = IncrementalBandedLDLT(4)
        for _ in range(20):
            updates, rhs_new = _random_growth_step(rng, solver.size, 2, 4)
            solver.extend(2, updates, rhs_new)
        clone = solver.copy()
        before = solver.tail_solution(2).copy()
        updates, rhs_new = _random_growth_step(rng, clone.size, 2, 4)
        clone.extend(2, updates, rhs_new)
        np.testing.assert_allclose(solver.tail_solution(2), before)
        assert clone.size == solver.size + 2

    def test_rejects_update_outside_mutable_region(self):
        rng = np.random.default_rng(4)
        solver = IncrementalBandedLDLT(3)
        for _ in range(10):
            updates, rhs_new = _random_growth_step(rng, solver.size, 1, 3)
            solver.extend(1, updates, rhs_new)
        with pytest.raises(ValueError):
            solver.extend(1, [(0, 0, 1.0), (solver.size, solver.size, 5.0)], [0.0])

    def test_rejects_bandwidth_violation(self):
        solver = IncrementalBandedLDLT(2)
        solver.extend(2, [(0, 0, 5.0), (1, 1, 5.0)], [1.0, 1.0])
        with pytest.raises(ValueError):
            solver.extend(
                2,
                [(2, 2, 5.0), (3, 3, 5.0), (3, 0, 1.0)],
                [1.0, 1.0],
            )

    def test_rejects_too_many_new_variables(self):
        solver = IncrementalBandedLDLT(2)
        with pytest.raises(ValueError):
            solver.extend(3, [], [1.0, 1.0, 1.0])

    def test_empty_system_has_no_solution(self):
        solver = IncrementalBandedLDLT(2)
        with pytest.raises(ValueError):
            solver.tail_solution(1)

    def test_tail_count_limited_in_incremental_mode(self):
        rng = np.random.default_rng(5)
        solver = IncrementalBandedLDLT(2)
        for _ in range(10):
            updates, rhs_new = _random_growth_step(rng, solver.size, 1, 2)
            solver.extend(1, updates, rhs_new)
        assert solver.is_incremental
        with pytest.raises(ValueError):
            solver.tail_solution(3)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_incremental_equals_dense(self, seed):
        rng = np.random.default_rng(seed)
        w = int(rng.integers(2, 6))
        num_new = int(rng.integers(1, w + 1))
        incremental = IncrementalBandedLDLT(w)
        reference = DenseReference()
        for _ in range(15):
            updates, rhs_new = _random_growth_step(rng, incremental.size, num_new, w)
            incremental.extend(num_new, updates, rhs_new)
            reference.extend(num_new, updates, rhs_new)
        count = min(w, incremental.size)
        np.testing.assert_allclose(
            incremental.tail_solution(count),
            reference.tail_solution(count),
            atol=1e-7,
        )


def as_update_arrays(updates):
    rows, columns, values = zip(*updates)
    return (
        np.array(rows, dtype=np.intp),
        np.array(columns, dtype=np.intp),
        np.array(values, dtype=float),
    )


class TestArrayFastPath:
    @pytest.mark.parametrize("check_indices", [True, False])
    def test_matches_triple_list_path(self, check_indices):
        rng = np.random.default_rng(11)
        from_triples = IncrementalBandedLDLT(4)
        from_arrays = IncrementalBandedLDLT(4)
        for _ in range(30):
            updates, rhs_new = _random_growth_step(rng, from_triples.size, 2, 4)
            from_triples.extend(2, updates, rhs_new)
            from_arrays.extend(
                2, as_update_arrays(updates), np.asarray(rhs_new), check_indices
            )
            count = min(4, from_triples.size)
            np.testing.assert_allclose(
                from_arrays.tail_solution(count),
                from_triples.tail_solution(count),
                atol=1e-10,
            )

    def test_array_input_validated_like_triples(self):
        solver = IncrementalBandedLDLT(2)
        solver.extend(2, as_update_arrays([(0, 0, 5.0), (1, 1, 5.0)]), [1.0, 1.0])
        with pytest.raises(ValueError):
            solver.extend(
                2,
                as_update_arrays([(2, 2, 5.0), (3, 3, 5.0), (3, 0, 1.0)]),
                [1.0, 1.0],
            )

    def test_rejects_mismatched_array_lengths(self):
        solver = IncrementalBandedLDLT(2)
        with pytest.raises(ValueError):
            solver.extend(
                1,
                (np.array([0, 0]), np.array([0]), np.array([1.0])),
                [1.0],
            )

    def test_tuple_of_three_triples_is_not_transposed(self):
        """Regression: a 3-tuple of triples is the triples form, not arrays."""
        as_list = IncrementalBandedLDLT(2)
        as_tuple = IncrementalBandedLDLT(2)
        triples = [(0, 0, 5.0), (1, 1, 5.0), (1, 0, 1.0)]
        as_list.extend(2, triples, [1.0, 2.0])
        as_tuple.extend(2, tuple(triples), [1.0, 2.0])
        np.testing.assert_array_equal(
            as_tuple.tail_solution(2), as_list.tail_solution(2)
        )

    def test_input_arrays_are_not_retained(self):
        """The caller may reuse the update arrays after extend returns."""
        rng = np.random.default_rng(12)
        solver = IncrementalBandedLDLT(4)
        reference = DenseReference()
        for _ in range(20):
            updates, rhs_new = _random_growth_step(rng, solver.size, 2, 4)
            arrays = as_update_arrays(updates)
            solver.extend(2, arrays, rhs_new)
            reference.extend(2, updates, rhs_new)
            for array in arrays:
                array.fill(-1)  # scribble over the shared buffers
        np.testing.assert_allclose(
            solver.tail_solution(4), reference.tail_solution(4), atol=1e-8
        )


class TestRollback:
    def test_rollback_restores_previous_solution(self):
        rng = np.random.default_rng(21)
        solver = IncrementalBandedLDLT(4)
        for _ in range(20):
            updates, rhs_new = _random_growth_step(rng, solver.size, 2, 4)
            solver.extend(2, updates, rhs_new)
        before_tail = solver.tail_solution(4).copy()
        before_size = solver.size
        updates, rhs_new = _random_growth_step(rng, solver.size, 2, 4)
        solver.extend(2, updates, rhs_new)
        solver.rollback()
        assert solver.size == before_size
        np.testing.assert_allclose(solver.tail_solution(4), before_tail)

    def test_reextend_after_rollback_matches_straight_line(self):
        rng = np.random.default_rng(22)
        straight = IncrementalBandedLDLT(4)
        replayed = IncrementalBandedLDLT(4)
        steps = [
            _random_growth_step(rng, 2 * index, 2, 4) for index in range(25)
        ]
        for updates, rhs_new in steps:
            straight.extend(2, updates, rhs_new)
            replayed.extend(2, updates, rhs_new)
            replayed.rollback()
            replayed.extend(2, updates, rhs_new)
            count = min(4, straight.size)
            np.testing.assert_allclose(
                replayed.tail_solution(count), straight.tail_solution(count)
            )

    def test_rollback_across_the_incremental_switch(self):
        rng = np.random.default_rng(23)
        solver = IncrementalBandedLDLT(2)  # warmup at size 6
        for _ in range(2):
            updates, rhs_new = _random_growth_step(rng, solver.size, 2, 2)
            solver.extend(2, updates, rhs_new)
        assert not solver.is_incremental
        before_tail = solver.tail_solution(2).copy()
        updates, rhs_new = _random_growth_step(rng, solver.size, 2, 2)
        solver.extend(2, updates, rhs_new)
        assert solver.is_incremental
        solver.rollback()
        assert not solver.is_incremental
        np.testing.assert_allclose(solver.tail_solution(2), before_tail)
        solver.extend(2, updates, rhs_new)
        assert solver.is_incremental

    def test_single_undo_level(self):
        solver = IncrementalBandedLDLT(2)
        with pytest.raises(ValueError):
            solver.rollback()
        solver.extend(2, [(0, 0, 5.0), (1, 1, 5.0)], [1.0, 1.0])
        solver.rollback()
        with pytest.raises(ValueError):
            solver.rollback()

    def test_copy_does_not_share_rollback_state(self):
        rng = np.random.default_rng(24)
        solver = IncrementalBandedLDLT(4)
        for _ in range(15):
            updates, rhs_new = _random_growth_step(rng, solver.size, 2, 4)
            solver.extend(2, updates, rhs_new)
        clone = solver.copy()
        with pytest.raises(ValueError):
            clone.rollback()  # pending undo level is not carried over
        solver.rollback()  # the original still has its own undo level
