"""Unit tests of the checkpoint-store layer (no engine involved).

The durability subsystem's crash-safety rests on two store-level
invariants -- atomic blob replacement and complete-prefix WAL reads --
and this module pins them directly: torn WAL tails, interrupted renames,
corrupt manifests, reopen-and-append semantics.  The engine-level
recovery oracle (``tests/test_checkpoint.py``) builds on exactly these
guarantees.
"""

import json
import os
import pickle
import time

import pytest

from tests.conftest import PathLikeWrapper, SimulatedCrash

from repro.durability import (
    CheckpointVersionError,
    CorruptCheckpointError,
    DirectoryCheckpointStore,
    SingleSnapshotStore,
    StoreLock,
    StoreLockedError,
    atomic_write_bytes,
    migrate_snapshot_payload,
)
from repro.durability.format import (
    CHECKPOINT_FORMAT_VERSION,
    build_manifest,
    decode_wal_record,
    encode_wal_record,
    next_wal_name,
    validate_manifest,
    wal_name,
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "blob"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert list(tmp_path.iterdir()) == [path]  # no tmp residue

    def test_crash_before_replace_keeps_old_content(self, tmp_path):
        path = tmp_path / "blob"
        atomic_write_bytes(path, b"old")

        def boom():
            raise SimulatedCrash("pre-replace")

        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(path, b"new", pre_replace_hook=boom)
        assert path.read_bytes() == b"old"


class TestWal:
    def test_append_and_read_round_trip(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        records = [b"alpha", b"beta" * 100, b""]
        for record in records:
            store.wal_append(record)
        store.close()
        fresh = DirectoryCheckpointStore(tmp_path / "store")
        assert list(fresh.wal_records(wal_name(0))) == records

    def test_torn_tail_is_dropped(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append(b"kept")

        def hook(point):
            if point == "wal.append.torn":
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            store.wal_append(b"lost-in-flight")
        store.close()
        fresh = DirectoryCheckpointStore(tmp_path / "store")
        assert list(fresh.wal_records(wal_name(0))) == [b"kept"]

    def test_flipped_byte_ends_the_prefix(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append(b"first")
        store.wal_append(b"second")
        store.close()
        path = tmp_path / "store" / "wal" / wal_name(0)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # corrupt the last payload byte
        path.write_bytes(bytes(data))
        fresh = DirectoryCheckpointStore(tmp_path / "store")
        assert list(fresh.wal_records(wal_name(0))) == [b"first"]

    def test_reopen_appends_after_existing_records(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append(b"one")
        store.close()
        again = DirectoryCheckpointStore(tmp_path / "store")
        again.wal_start(wal_name(0))
        again.wal_append(b"two")
        assert list(again.wal_records(wal_name(0))) == [b"one", b"two"]

    def test_wal_start_truncates_torn_tail_before_appending(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append(b"kept")

        def hook(point):
            if point == "wal.append.torn":
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            store.wal_append(b"torn-away")
        store.close()

        # Reopen-and-append must land the new record *inside* the readable
        # prefix, not beyond the torn bytes.
        again = DirectoryCheckpointStore(tmp_path / "store")
        again.wal_start(wal_name(0))
        again.wal_append(b"after-recovery")
        assert list(again.wal_records(wal_name(0))) == [b"kept", b"after-recovery"]

    def test_append_after_in_session_failure_recovers_the_tail(self, tmp_path):
        """A failed append must not strand later appends beyond torn bytes.

        If write() dies mid-frame (I/O error) and the *same* store object
        keeps appending -- the caller survived the exception -- the next
        append must truncate the torn bytes first, or every later record
        would sit outside the readable prefix and vanish at recovery.
        """
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append(b"kept")

        def hook(point):
            if point == "wal.append.torn":
                store.fault_hook = None
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            store.wal_append(b"lost-in-flight")
        store.wal_append(b"after-the-error")  # same session, same handle
        assert list(store.wal_records(wal_name(0))) == [
            b"kept",
            b"after-the-error",
        ]

    def test_stale_tmp_files_swept_on_open(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")

        def hook(point):
            if point == "segment.write.tmp":
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            store.write_segment("seg-x", b"payload")
        leftovers = list((tmp_path / "store" / "segments").glob("*.tmp"))
        assert leftovers, "the crash should have left a tmp file behind"

        DirectoryCheckpointStore(tmp_path / "store")  # reopen sweeps
        assert not list((tmp_path / "store" / "segments").glob("*.tmp"))

    def test_sweep_leaves_unrelated_root_files_alone(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        unrelated = root / "export.tmp"
        unrelated.write_text("someone else's scratch file")
        DirectoryCheckpointStore(root)
        assert unrelated.exists()

    def test_missing_segment_yields_nothing(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        assert list(store.wal_records(wal_name(7))) == []

    def test_open_segment_cannot_be_deleted(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        with pytest.raises(ValueError, match="open WAL"):
            store.wal_delete(wal_name(0))

    def test_append_requires_open_segment(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="wal_start"):
            store.wal_append(b"record")


class TestManifestAndSegments:
    def test_empty_store_has_no_manifest(self, tmp_path):
        assert DirectoryCheckpointStore(tmp_path / "store").read_manifest() is None

    def test_manifest_round_trip(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        manifest = build_manifest(3, {"fake": "spec"}, [], wal_name(3))
        store.write_manifest(manifest)
        assert store.read_manifest() == manifest

    def test_corrupt_manifest_names_the_file(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.manifest_path.write_text("{not json")
        with pytest.raises(CorruptCheckpointError) as error:
            store.read_manifest()
        assert "MANIFEST.json" in str(error.value)
        assert "JSON" in str(error.value)

    def test_manifest_version_mismatch_says_found_and_expected(self, tmp_path):
        manifest = build_manifest(0, {}, [], wal_name(0))
        manifest["format_version"] = 99
        with pytest.raises(CheckpointVersionError) as error:
            validate_manifest(manifest, "some/store")
        message = str(error.value)
        assert "some/store" in message
        assert "99" in message
        assert str(CHECKPOINT_FORMAT_VERSION) in message
        assert "format_version" in message

    def test_manifest_missing_keys_lists_them(self, tmp_path):
        with pytest.raises(CorruptCheckpointError, match="cohorts"):
            validate_manifest(
                {"format_version": CHECKPOINT_FORMAT_VERSION}, "store"
            )

    def test_segment_round_trip_and_listing(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.write_segment("seg-a", b"payload-a")
        store.write_segment("seg-b", b"payload-b")
        assert store.read_segment("seg-a") == b"payload-a"
        assert store.list_segments() == ["seg-a", "seg-b"]
        store.delete_segment("seg-a")
        store.delete_segment("seg-a")  # idempotent
        assert store.list_segments() == ["seg-b"]

    def test_missing_segment_is_a_corruption_error(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        with pytest.raises(CorruptCheckpointError, match="seg-gone"):
            store.read_segment("seg-gone")

    def test_segment_names_must_be_bare(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        with pytest.raises(ValueError, match="bare"):
            store.write_segment("../escape", b"x")

    def test_pathlike_root(self, tmp_path):
        store = DirectoryCheckpointStore(PathLikeWrapper(tmp_path / "store"))
        store.write_segment("seg", b"x")
        assert store.read_segment("seg") == b"x"


class TestWalRecordCodec:
    def test_round_trip(self):
        payload = encode_wal_record("rows", ["k"], [1.0])
        assert decode_wal_record(payload, "wal") == ("rows", ["k"], [1.0])

    def test_garbage_names_the_source(self):
        with pytest.raises(CorruptCheckpointError, match="wal-file"):
            decode_wal_record(b"\x00garbage", "wal-file")

    def test_non_tuple_payload_rejected(self):
        with pytest.raises(CorruptCheckpointError, match="kind"):
            decode_wal_record(pickle.dumps({"not": "a tuple"}), "wal-file")


class TestSnapshotMigration:
    def test_v1_payload_upgrades_in_place(self):
        migrated = migrate_snapshot_payload(
            {"format_version": 1, "engine_spec": {}, "series": {}}, "ckpt"
        )
        assert migrated["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert migrated["generation"] == 0

    def test_future_version_names_everything(self):
        with pytest.raises(CheckpointVersionError) as error:
            migrate_snapshot_payload({"format_version": 42}, "some.ckpt")
        message = str(error.value)
        assert "some.ckpt" in message and "42" in message
        assert str(CHECKPOINT_FORMAT_VERSION) in message

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(CorruptCheckpointError, match="format_version"):
            migrate_snapshot_payload(["not", "a", "dict"], "some.ckpt")


class TestSingleSnapshotStore:
    def test_round_trip(self, tmp_path):
        store = SingleSnapshotStore(tmp_path / "snap.ckpt")
        store.write({"format_version": CHECKPOINT_FORMAT_VERSION})
        assert store.read() == {"format_version": CHECKPOINT_FORMAT_VERSION}

    def test_crash_mid_write_keeps_previous_snapshot(self, tmp_path):
        store = SingleSnapshotStore(tmp_path / "snap.ckpt")
        store.write({"value": "old"})

        def boom():
            raise SimulatedCrash("mid-save")

        with pytest.raises(SimulatedCrash):
            store.write({"value": "new"}, pre_replace_hook=boom)
        assert store.read() == {"value": "old"}

    def test_unreadable_pickle_names_the_file(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(CorruptCheckpointError) as error:
            SingleSnapshotStore(path).read()
        assert str(path) in str(error.value)

    def test_accepts_pathlike(self, tmp_path):
        store = SingleSnapshotStore(PathLikeWrapper(tmp_path / "snap.ckpt"))
        store.write({"ok": True})
        assert SingleSnapshotStore(tmp_path / "snap.ckpt").read() == {"ok": True}


class TestStoreLock:
    """The ownership lease: one writer process per store."""

    def _lock(self, tmp_path, **kwargs):
        return StoreLock(tmp_path / "LOCK", **kwargs)

    def test_acquire_writes_holder_document(self, tmp_path):
        with self._lock(tmp_path) as lock:
            holder = lock.read_holder()
            assert holder["pid"] == os.getpid()
            assert lock.held
        assert not lock.held
        assert lock.read_holder() is None  # released ⇒ file gone

    def test_second_claimant_is_refused_and_told_who_holds_it(self, tmp_path):
        with self._lock(tmp_path):
            with pytest.raises(StoreLockedError) as error:
                self._lock(tmp_path).acquire()
            assert error.value.holder["pid"] == os.getpid()
            assert str(os.getpid()) in str(error.value)

    def test_release_then_reacquire(self, tmp_path):
        first = self._lock(tmp_path).acquire()
        first.release()
        with self._lock(tmp_path):
            pass

    def test_dead_pid_lease_is_taken_over(self, tmp_path):
        """The SIGKILLed-worker case: holder pid no longer exists."""
        path = tmp_path / "LOCK"
        path.write_text(json.dumps({"pid": _unused_pid(), "host": "gone"}))
        with self._lock(tmp_path) as lock:
            assert lock.read_holder()["pid"] == os.getpid()

    def test_stale_heartbeat_lease_is_taken_over(self, tmp_path):
        """A live-pid lease whose mtime has aged out is reclaimable."""
        path = tmp_path / "LOCK"
        path.write_text(json.dumps({"pid": os.getpid()}))
        long_ago = time.time() - 3600
        os.utime(path, (long_ago, long_ago))
        with self._lock(tmp_path, stale_after=1.0) as lock:
            assert lock.held

    def test_stale_after_none_disables_the_mtime_horizon(self, tmp_path):
        path = tmp_path / "LOCK"
        path.write_text(json.dumps({"pid": os.getpid()}))
        long_ago = time.time() - 3600
        os.utime(path, (long_ago, long_ago))
        with pytest.raises(StoreLockedError):
            self._lock(tmp_path, stale_after=None).acquire()

    def test_unparseable_lease_is_reclaimable(self, tmp_path):
        (tmp_path / "LOCK").write_bytes(b"\x00 not json at all")
        long_ago = time.time() - 3600
        os.utime(tmp_path / "LOCK", (long_ago, long_ago))
        with self._lock(tmp_path, stale_after=1.0) as lock:
            assert lock.held

    def test_heartbeat_refreshes_mtime(self, tmp_path):
        with self._lock(tmp_path) as lock:
            long_ago = time.time() - 3600
            os.utime(lock.path, (long_ago, long_ago))
            lock.heartbeat()
            assert time.time() - lock.path.stat().st_mtime < 60

    def test_heartbeat_and_release_survive_a_vanished_file(self, tmp_path):
        lock = self._lock(tmp_path).acquire()
        lock.path.unlink()
        lock.heartbeat()  # must not raise
        lock.release()  # must not raise

    def test_exclusive_store_integration(self, tmp_path):
        """``DirectoryCheckpointStore(exclusive=True)`` rides the lease."""
        store = DirectoryCheckpointStore(tmp_path / "store", exclusive=True)
        with pytest.raises(StoreLockedError):
            DirectoryCheckpointStore(tmp_path / "store", exclusive=True)
        store.close()
        second = DirectoryCheckpointStore(tmp_path / "store", exclusive=True)
        second.close()

    def test_non_exclusive_store_ignores_the_lease(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store", exclusive=True)
        relaxed = DirectoryCheckpointStore(tmp_path / "store")  # advisory
        relaxed.close()
        store.close()


def _unused_pid() -> int:
    """A pid that does not name a live process (probe downward from max)."""
    candidate = 2**22 - 1
    while candidate > 1:
        try:
            os.kill(candidate, 0)
        except ProcessLookupError:
            return candidate
        except OSError:
            pass
        candidate -= 1
    raise RuntimeError("no free pid found")


class TestWalGroupCommit:
    def test_group_commit_equals_individual_appends(self, tmp_path):
        records = [b"alpha", b"beta" * 100, b"", b"gamma"]
        grouped = DirectoryCheckpointStore(tmp_path / "grouped")
        grouped.wal_start(wal_name(0))
        grouped.wal_append_many(records)
        grouped.close()
        individual = DirectoryCheckpointStore(tmp_path / "individual")
        individual.wal_start(wal_name(0))
        for record in records:
            individual.wal_append(record)
        individual.close()
        # Byte-identical framing: replay cannot tell the two apart.
        grouped_bytes = (tmp_path / "grouped" / "wal" / wal_name(0)).read_bytes()
        individual_bytes = (
            tmp_path / "individual" / "wal" / wal_name(0)
        ).read_bytes()
        assert grouped_bytes == individual_bytes
        fresh = DirectoryCheckpointStore(tmp_path / "grouped")
        assert list(fresh.wal_records(wal_name(0))) == records

    def test_empty_batch_is_a_noop(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append_many([])
        assert list(store.wal_records(wal_name(0))) == []

    def test_fault_points_fire_once_per_batch(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        seen = []
        store.fault_hook = seen.append
        store.wal_append_many([b"one", b"two", b"three"])
        assert seen == ["wal.append.before", "wal.append.torn", "wal.append.after"]

    def test_mid_batch_crash_keeps_a_complete_prefix(self, tmp_path):
        """A kill mid-batch loses a suffix; surviving records are intact."""
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))
        store.wal_append(b"before-the-batch")

        def hook(point):
            if point == "wal.append.torn":
                raise SimulatedCrash(point)

        store.fault_hook = hook
        batch = [b"r-%d" % index * 20 for index in range(8)]
        with pytest.raises(SimulatedCrash):
            store.wal_append_many(batch)
        store.close()
        fresh = DirectoryCheckpointStore(tmp_path / "store")
        survived = list(fresh.wal_records(wal_name(0)))
        assert survived[0] == b"before-the-batch"
        tail = survived[1:]
        # Strictly a prefix of the batch: no holes, no damaged records,
        # and the crash (half the batch bytes) lost at least the last one.
        assert tail == batch[: len(tail)]
        assert len(tail) < len(batch)

    def test_mid_batch_torn_tail_recovers_and_appends(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        store.wal_start(wal_name(0))

        def hook(point):
            if point == "wal.append.torn":
                store.fault_hook = None
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            store.wal_append_many([b"lost-a", b"lost-b"])
        # Same session keeps appending: the torn bytes must be dropped
        # first (the whole failed batch rolls back to the good offset).
        store.wal_append_many([b"after-a", b"after-b"])
        assert list(store.wal_records(wal_name(0))) == [b"after-a", b"after-b"]

    def test_group_commit_respects_wal_sync(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store", wal_sync=True)
        store.wal_start(wal_name(0))
        store.wal_append_many([b"one", b"two"])
        assert list(store.wal_records(wal_name(0))) == [b"one", b"two"]


class TestWalRotation:
    def test_next_wal_name_increments_the_part(self):
        assert next_wal_name(wal_name(3)) == wal_name(3, 1)
        assert next_wal_name(wal_name(3, 41)) == wal_name(3, 42)

    def test_next_wal_name_continues_a_legacy_chain(self):
        # v2 stores named segments wal-GGGGGGGG.log; rotation of a
        # recovered legacy segment continues at part 1.
        assert next_wal_name("wal-00000007.log") == wal_name(7, 1)

    def test_next_wal_name_rejects_foreign_names(self):
        with pytest.raises(ValueError, match="WAL segment name"):
            next_wal_name("journal.log")

    def test_oversize_append_rotates_to_the_next_part(self, tmp_path):
        store = DirectoryCheckpointStore(
            tmp_path / "store", wal_segment_bytes=64
        )
        store.wal_start(wal_name(0))
        for index in range(4):
            store.wal_append(b"x" * 40)
        names = store.list_wals()
        assert len(names) > 1
        assert names[0] == wal_name(0)
        assert names == [wal_name(0, part) for part in range(len(names))]
        # Every record is readable, in order, across the chain.
        collected = [
            record for name in names for record in store.wal_records(name)
        ]
        assert collected == [b"x" * 40] * 4

    def test_group_commit_rotates_after_the_batch(self, tmp_path):
        store = DirectoryCheckpointStore(
            tmp_path / "store", wal_segment_bytes=64
        )
        store.wal_start(wal_name(0))
        store.wal_append_many([b"y" * 30] * 5)
        names = store.list_wals()
        # The batch lands whole in the first segment (group commit is one
        # write); rotation seals it afterwards.
        assert list(store.wal_records(wal_name(0))) == [b"y" * 30] * 5
        assert names == [wal_name(0), wal_name(0, 1)]
        store.wal_append(b"tail")
        assert list(store.wal_records(wal_name(0, 1))) == [b"tail"]

    def test_wal_exists_sees_empty_segments(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "store")
        assert not store.wal_exists(wal_name(0))
        store.wal_start(wal_name(0))
        assert store.wal_exists(wal_name(0))
        assert not store.wal_exists(wal_name(0, 1))

    def test_rotation_requires_positive_limit(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            DirectoryCheckpointStore(tmp_path / "store", wal_segment_bytes=0)

    def test_kill_between_rotation_and_first_append(self, tmp_path):
        """A crash right after rotation leaves an empty live tail segment."""
        store = DirectoryCheckpointStore(
            tmp_path / "store", wal_segment_bytes=32
        )
        store.wal_start(wal_name(0))

        def hook(point):
            if point == "wal.rotate.after":
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            store.wal_append(b"z" * 40)
        store.close()
        fresh = DirectoryCheckpointStore(tmp_path / "store")
        assert fresh.wal_exists(wal_name(0, 1))
        assert list(fresh.wal_records(wal_name(0, 1))) == []
        assert list(fresh.wal_records(wal_name(0))) == [b"z" * 40]


class TestManifestWalChain:
    def test_build_manifest_normalizes_a_bare_name(self):
        manifest = build_manifest(3, {}, [], wal_name(3))
        assert manifest["wal"] == [wal_name(3)]

    def test_build_manifest_keeps_a_chain_ordered(self):
        chain = [wal_name(2, part) for part in range(3)]
        manifest = build_manifest(2, {}, [], chain)
        assert manifest["wal"] == chain

    def test_v2_manifest_migrates_on_validate(self):
        manifest = build_manifest(1, {"fake": "spec"}, [], "wal-00000001.log")
        manifest["format_version"] = 2
        manifest["wal"] = "wal-00000001.log"  # v2 stored a single name
        validated = validate_manifest(manifest, "store")
        assert validated["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert validated["wal"] == ["wal-00000001.log"]

    def test_malformed_wal_chain_rejected(self):
        manifest = build_manifest(0, {}, [], wal_name(0))
        manifest["wal"] = []
        with pytest.raises(CorruptCheckpointError, match="non-empty"):
            validate_manifest(manifest, "store")
        manifest["wal"] = [wal_name(0), 7]
        with pytest.raises(CorruptCheckpointError, match="WAL segment names"):
            validate_manifest(manifest, "store")

    def test_v2_snapshot_payload_migrates(self):
        payload = {
            "format_version": 2,
            "engine_spec": {"fake": "spec"},
            "series": {},
            "generation": 5,
        }
        migrated = migrate_snapshot_payload(payload, "snap")
        assert migrated["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert migrated["generation"] == 5
