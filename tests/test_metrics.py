"""Tests for the evaluation metrics (forecast errors, AUC, VUS-ROC, KDD21)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    average_precision,
    kdd21_score,
    mae,
    mape,
    mse,
    range_roc_auc,
    rmse,
    roc_auc,
    roc_curve,
    smape,
    vus_roc,
)
from repro.metrics.kdd21 import kdd21_single
from repro.metrics.vus import soft_range_labels


class TestForecastErrors:
    def test_mae_known_value(self):
        assert mae([1.0, 2.0, 3.0], [2.0, 2.0, 2.0]) == pytest.approx(2.0 / 3.0)

    def test_mse_and_rmse_consistent(self):
        actual = np.array([1.0, 2.0, 4.0])
        predicted = np.array([1.0, 3.0, 2.0])
        assert rmse(actual, predicted) == pytest.approx(np.sqrt(mse(actual, predicted)))

    def test_perfect_prediction_is_zero(self):
        values = np.linspace(-3, 7, 50)
        assert mae(values, values) == 0.0
        assert mse(values, values) == 0.0
        assert smape(values, values) == 0.0

    def test_mape_handles_near_zero_actuals(self):
        assert np.isfinite(mape([0.0, 1.0], [1.0, 1.0]))

    def test_smape_bounded_by_two(self):
        assert smape([1.0, -1.0], [-1.0, 1.0]) <= 2.0 + 1e-12

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae([1.0, 2.0], [1.0])

    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_mae_triangle(self, n, seed):
        rng = np.random.default_rng(seed)
        a, b, c = rng.normal(size=(3, n))
        assert mae(a, c) <= mae(a, b) + mae(b, c) + 1e-9


class TestROC:
    def test_perfect_detector_has_auc_one(self):
        labels = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.9, 0.8])
        assert roc_auc(labels, scores) == pytest.approx(1.0)

    def test_inverted_detector_has_auc_zero(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        assert roc_auc(labels, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= -1e-12)
        assert np.all(np.diff(tpr) >= -1e-12)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(5), np.arange(5.0))

    def test_average_precision_perfect(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert average_precision(labels, scores) == pytest.approx(1.0)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_auc_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 200))
        labels = rng.integers(0, 2, size=n)
        if labels.sum() == 0:
            labels[0] = 1
        if labels.sum() == n:
            labels[0] = 0
        scores = rng.normal(size=n)
        value = roc_auc(labels, scores)
        assert 0.0 <= value <= 1.0


class TestVUS:
    def _labels_scores(self, hit_offset=0):
        labels = np.zeros(500, dtype=int)
        labels[200:210] = 1
        scores = np.zeros(500)
        scores[205 + hit_offset] = 10.0
        return labels, scores

    def test_soft_labels_extend_anomaly(self):
        labels = np.zeros(100, dtype=int)
        labels[50:55] = 1
        soft = soft_range_labels(labels, window=10)
        assert soft[50] == 1.0
        assert 0 < soft[45] < 1.0
        assert soft[30] == 0.0
        assert np.all(soft >= labels)

    def test_soft_labels_window_zero_is_identity(self):
        labels = np.zeros(50, dtype=int)
        labels[10] = 1
        np.testing.assert_array_equal(soft_range_labels(labels, 0), labels.astype(float))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            soft_range_labels(np.array([0.0, 0.5, 1.0]), 5)

    def test_near_miss_scores_higher_with_vus_than_plain_auc(self):
        labels, scores = self._labels_scores(hit_offset=12)  # just outside the event
        plain = roc_auc(labels, scores)
        ranged = range_roc_auc(labels, scores, window=20)
        assert ranged > plain

    def test_exact_hit_gets_high_vus(self):
        labels = np.zeros(500, dtype=int)
        labels[200:210] = 1
        scores = np.zeros(500)
        scores[200:210] = 10.0
        # Even a perfect event hit does not reach 1.0 once the soft buffer
        # mass is added -- the published VUS-ROC behaves the same way -- but
        # it must stay clearly above chance and above a random scorer.
        value = vus_roc(labels, scores, max_window=20)
        assert value > 0.7
        random_scores = np.random.default_rng(1).random(500)
        assert value > vus_roc(labels, random_scores, max_window=20) + 0.1

    def test_partial_hit_beats_random(self):
        labels, scores = self._labels_scores()
        rng = np.random.default_rng(0)
        random_scores = rng.random(labels.size)
        assert vus_roc(labels, scores, max_window=20) > vus_roc(
            labels, random_scores, max_window=20
        ) - 0.05

    def test_vus_bounds(self):
        rng = np.random.default_rng(3)
        labels = np.zeros(400, dtype=int)
        labels[100:120] = 1
        scores = rng.random(400)
        value = vus_roc(labels, scores, max_window=30)
        assert 0.0 <= value <= 1.0

    def test_vus_requires_anomaly(self):
        with pytest.raises(ValueError):
            vus_roc(np.zeros(100, dtype=int), np.random.default_rng(0).random(100))


class TestKDD21:
    def test_hit_within_tolerance(self):
        scores = np.zeros(1000)
        scores[540] = 5.0
        assert kdd21_single(scores, anomaly_start=500, anomaly_stop=520, tolerance=100)

    def test_miss_outside_tolerance(self):
        scores = np.zeros(1000)
        scores[900] = 5.0
        assert not kdd21_single(scores, anomaly_start=500, anomaly_stop=520, tolerance=100)

    def test_score_is_fraction(self):
        assert kdd21_score([True, False, True, True]) == pytest.approx(0.75)

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            kdd21_score([])

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            kdd21_single(np.zeros(10), anomaly_start=5, anomaly_stop=20)
