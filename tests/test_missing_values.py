"""Tests for missing-value (NaN) handling in the online phase.

The paper's conclusion lists missing points as a limitation of current STD
methods; this reproduction imputes gaps with the model's own one-step
forecast so that streaming continues uninterrupted.
"""

import numpy as np
import pytest

from repro.core import OneShotSTL

from tests.conftest import make_seasonal_series


class TestMissingValueHandling:
    def _stream(self, period=40, length=40 * 12, seed=3):
        return make_seasonal_series(length, period, seed=seed, noise=0.03)

    def test_nan_is_imputed_and_stream_continues(self):
        data = self._stream()
        period = data["period"]
        values = data["values"].copy()
        model = OneShotSTL(period, shift_window=0)
        model.initialize(values[: 4 * period])

        gap = range(6 * period, 6 * period + 5)
        gap_residuals = []
        for index in range(4 * period, 8 * period):
            value = np.nan if index in gap else float(values[index])
            point = model.update(value)
            assert np.isfinite(point.trend)
            assert np.isfinite(point.seasonal)
            assert np.isfinite(point.value)
            if index in gap:
                # The imputed value is (nearly) fully explained by the model
                # and is close to the true underlying signal.
                assert point.residual == pytest.approx(0.0, abs=1e-2)
                assert abs(point.value - values[index]) < 0.5
                gap_residuals.append(point.residual)
        # The imputed value is the model's own one-step forecast, but its
        # residual is *not* exactly zero: the IRLS solve still redistributes
        # the imputed value between trend and seasonality together with the
        # smoothness terms (the docs used to claim "zero by construction").
        assert any(residual != 0.0 for residual in gap_residuals)

    def test_phase_alignment_is_preserved_across_a_gap(self):
        data = self._stream(seed=4)
        period = data["period"]
        values = data["values"]
        with_gap = OneShotSTL(period, shift_window=0)
        without_gap = OneShotSTL(period, shift_window=0)
        with_gap.initialize(values[: 4 * period])
        without_gap.initialize(values[: 4 * period])

        gap = set(range(5 * period + 3, 5 * period + 3 + period // 2))
        for index in range(4 * period, 9 * period):
            without_gap.update(float(values[index]))
            with_gap.update(np.nan if index in gap else float(values[index]))
        # After the gap the two models see identical data again; their
        # residuals on fresh points must be of the same (small) magnitude,
        # which would not happen if the gap had desynchronized the phase.
        fresh = values[9 * period : 10 * period]
        residual_with = [abs(with_gap.update(float(v)).residual) for v in fresh]
        residual_without = [abs(without_gap.update(float(v)).residual) for v in fresh]
        assert np.mean(residual_with) < np.mean(residual_without) + 0.1

    def test_long_gap_forecast_stays_periodic(self):
        data = self._stream(seed=5)
        period = data["period"]
        values = data["values"]
        model = OneShotSTL(period, shift_window=0)
        model.initialize(values[: 4 * period])
        for value in values[4 * period : 6 * period]:
            model.update(float(value))
        for _ in range(period):
            model.update(np.nan)
        forecast = model.forecast(period)
        assert np.all(np.isfinite(forecast))
        # The seasonal shape survives a full missing period.
        expected = data["seasonal"][:period]
        correlation = np.corrcoef(forecast - forecast.mean(), expected)[0, 1]
        assert correlation > 0.8
