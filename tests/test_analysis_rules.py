"""Per-rule fixtures for the ``repro.analysis`` invariant checker.

Every rule gets a violating, a clean, and a suppressed snippet, so a rule
that silently stops firing (or starts over-firing) is caught here rather
than by a regression slipping into the real tree.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np

from repro.analysis.engine import analyze_source
from repro.analysis.rules_registry import check_registry
from repro.anomaly.base import AnomalyDetector

HOT_PATH = "src/repro/core/fixture.py"


def run(source: str, path: str = HOT_PATH):
    return analyze_source(textwrap.dedent(source), path)


def rules(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------- HP001


def test_hotpath_allocation_in_loop_is_flagged():
    findings = run(
        """
        @hotpath
        def advance(xs):
            out = None
            for x in xs:
                out = [x, x]
            return out
        """
    )
    assert rules(findings) == ["HP001"]
    assert "list literal" in findings[0].message


def test_hotpath_comprehension_in_loop_is_flagged():
    findings = run(
        """
        @hotpath
        def advance(xs):
            for x in xs:
                ys = [y + 1 for y in x]
            return ys
        """
    )
    assert rules(findings) == ["HP001"]


def test_hotpath_allocation_outside_loop_is_clean():
    findings = run(
        """
        @hotpath
        def advance(xs):
            scratch = [0.0] * 4
            for x in xs:
                scratch[0] = x
            return scratch
        """
    )
    assert findings == []


def test_unmarked_function_is_not_checked():
    findings = run(
        """
        def cold(xs):
            return [[x] for x in xs for _ in range(2)]
        """
    )
    assert findings == []


def test_tuples_and_index_tuples_are_exempt():
    findings = run(
        """
        @hotpath
        def advance(a, xs):
            for x in xs:
                pair = (x, x)
                a[:, None] = x
            return pair
        """
    )
    assert findings == []


def test_hotpath_allocation_suppressed_with_reason():
    findings = run(
        """
        @hotpath
        def advance(xs):
            for x in xs:
                out = [x]  # repro: allow[HP001] bounded warmup scratch
            return out
        """
    )
    assert findings == []


# --------------------------------------------------------------- HP002


def test_attribute_chain_in_loop_is_flagged():
    findings = run(
        """
        @hotpath
        def advance(self, values):
            for state in self.states:
                state.solver.extend(values)
        """
    )
    assert rules(findings) == ["HP002"]
    assert "state.solver.extend" in findings[0].message


def test_hoisted_attribute_chain_is_clean():
    findings = run(
        """
        @hotpath
        def advance(self, values):
            for state in self.states:
                solver = state.solver
                solver.extend(values)
        """
    )
    assert findings == []


def test_long_chain_is_one_finding():
    findings = run(
        """
        @hotpath
        def advance(self, values):
            for v in values:
                self.a.b.c.d(v)
        """
    )
    assert rules(findings) == ["HP002"]


# --------------------------------------------------------- HP003 / HP004


def test_try_except_in_loop_is_flagged():
    findings = run(
        """
        @hotpath
        def advance(xs):
            for x in xs:
                try:
                    x.go()
                except ValueError:
                    pass
        """
    )
    assert rules(findings) == ["HP003"]


def test_try_except_outside_loop_is_clean():
    findings = run(
        """
        @hotpath
        def advance(xs):
            try:
                for x in xs:
                    x.go()
            except ValueError:
                pass
        """
    )
    assert findings == []


def test_kwargs_forwarding_is_flagged_even_outside_loops():
    findings = run(
        """
        @hotpath
        def advance(target, **options):
            return target(**options)
        """
    )
    assert rules(findings) == ["HP004"]


# --------------------------------------------------------------- WAL001


def test_mutation_hoisted_above_wal_append_is_flagged():
    findings = run(
        """
        class Engine:
            def process(self, key, value):
                record = self._process_unlogged(key, value)
                self._wal_append("point", key, value)
                return record
        """
    )
    assert rules(findings) == ["WAL001"]
    assert "_process_unlogged" in findings[0].message


def test_append_before_mutation_is_clean():
    findings = run(
        """
        class Engine:
            def process(self, key, value):
                self._wal_append("point", key, value)
                record = self._process_unlogged(key, value)
                return record
        """
    )
    assert findings == []


def test_store_to_series_dict_before_append_is_flagged():
    findings = run(
        """
        class Engine:
            def put(self, key, state):
                self._series[key] = state
                self._wal_append("put", key)
        """
    )
    assert rules(findings) == ["WAL001"]


def test_branch_local_appends_dominate_later_mutation():
    findings = run(
        """
        class Engine:
            def ingest(self, batch):
                if isinstance(batch, dict):
                    self._wal_append("grid", batch)
                else:
                    self._wal_append("rows", batch)
                return self._ingest_unlogged(batch)
        """
    )
    assert findings == []


def test_append_in_one_branch_only_does_not_dominate():
    findings = run(
        """
        class Engine:
            def ingest(self, batch):
                if isinstance(batch, dict):
                    self._wal_append("grid", batch)
                return self._ingest_unlogged(batch)
        """
    )
    assert rules(findings) == ["WAL001"]


def test_append_inside_loop_does_not_dominate():
    findings = run(
        """
        class Engine:
            def ingest(self, rows):
                for row in rows:
                    self._wal_append("row", row)
                return self._ingest_unlogged(rows)
        """
    )
    assert rules(findings) == ["WAL001"]


def test_method_without_wal_append_is_not_checked():
    findings = run(
        """
        class Engine:
            def _process_unlogged(self, key, value):
                self._series[key] = value
        """
    )
    assert findings == []


# ------------------------------------------------------------- SLOTS001


def test_unslotted_dataclass_in_hot_module_is_flagged():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Verdict:
            score: float
        """
    )
    assert rules(findings) == ["SLOTS001"]


def test_slotted_dataclass_is_clean():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True, slots=True)
        class Verdict:
            score: float
        """
    )
    assert findings == []


def test_unslotted_dataclass_outside_hot_modules_is_clean():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass
        class Row:
            label: str
        """,
        path="src/repro/anomaly/fixture.py",
    )
    assert findings == []


# -------------------------------------------------------------- SPEC001


def test_non_primitive_spec_field_is_flagged():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class BadSpec:
            initializer: object
        """,
        path="src/repro/specs.py",
    )
    assert rules(findings) == ["SPEC001"]


def test_primitive_and_nested_spec_fields_are_clean():
    findings = run(
        """
        from dataclasses import dataclass
        from typing import ClassVar

        @dataclass(frozen=True)
        class GoodSpec:
            name: str
            params: dict
            pipeline: PipelineSpec
            window: int | None
            kind: ClassVar[object] = None
        """,
        path="src/repro/specs.py",
    )
    assert findings == []


# ------------------------------------------------------- suppressions


def test_unknown_rule_id_in_suppression_is_a_finding():
    findings = run(
        """
        x = 1  # repro: allow[NOPE42] misremembered id
        """
    )
    assert rules(findings) == ["SUP001"]
    assert "NOPE42" in findings[0].message


def test_suppression_without_reason_is_a_finding():
    findings = run(
        """
        x = 1  # repro: allow[HP001]
        """
    )
    assert rules(findings) == ["SUP002"]


def test_standalone_suppression_covers_next_code_line():
    findings = run(
        """
        @hotpath
        def advance(xs):
            for x in xs:
                # repro: allow[HP001] bounded scratch, reason continues
                # over a second comment line
                out = [x]
            return out
        """
    )
    assert findings == []


def test_suppression_does_not_cover_other_rules():
    findings = run(
        """
        @hotpath
        def advance(self, xs):
            for x in xs:
                self.a.b.c(x)  # repro: allow[HP001] wrong rule named
        """
    )
    assert rules(findings) == ["HP002"]


# ------------------------------------------------------- registry rule


class _UnregisteredDetector(AnomalyDetector):
    """Concrete detector deliberately left out of the registry."""

    def detect(self, train_values, test_values) -> np.ndarray:
        return np.zeros(np.asarray(test_values).size)


def test_unregistered_detector_subclass_is_flagged():
    findings = check_registry(extra_classes=[_UnregisteredDetector])
    ours = [
        finding
        for finding in findings
        if "_UnregisteredDetector" in finding.message
    ]
    assert len(ours) == 1
    assert ours[0].rule == "REG001"
    assert ours[0].path.endswith("test_analysis_rules.py")


def test_registered_components_pass_registry_rule():
    # the only raw finding on the real tree is the (inline-suppressed)
    # PrefilteredDampDetector adapter; every registered component must
    # pass the REG002 spec round-trip outright
    findings = check_registry()
    assert all(
        "PrefilteredDampDetector" in finding.message for finding in findings
    )


# ------------------------------------------------------------------ CLI


def test_cli_reports_findings_and_exit_code(tmp_path):
    bad = tmp_path / "fixture.py"
    bad.write_text(
        textwrap.dedent(
            """
            @hotpath
            def advance(xs):
                for x in xs:
                    y = [x]
                return y
            """
        )
    )
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--no-registry", str(bad)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": repo_src, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1
    assert f"{bad}:5: HP001" in result.stdout
    assert "1 finding(s)" in result.stderr
