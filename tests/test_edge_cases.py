"""Edge-case and robustness tests across the library.

These tests pin down behaviour on degenerate inputs -- constant series,
minimal lengths, extreme parameters -- where numerical code tends to break
silently.
"""

import numpy as np
import pytest

from repro.anomaly import NSigma, NSigmaDetector, NormaDetector, StompDetector
from repro.core import JointSTL, OneShotSTL
from repro.decomposition import STL, OnlineSTL, RobustSTL, loess_smooth
from repro.forecasting import (
    DirectRidgeForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.metrics import mae, roc_auc
from repro.periodicity import find_length
from repro.solvers import IncrementalBandedLDLT


class TestConstantSeries:
    def test_stl_on_constant_series(self):
        values = np.full(120, 7.5)
        result = STL(12).decompose(values)
        np.testing.assert_allclose(result.reconstruct(), values, atol=1e-9)
        np.testing.assert_allclose(result.seasonal, 0.0, atol=1e-6)
        np.testing.assert_allclose(result.residual, 0.0, atol=1e-6)

    def test_oneshotstl_on_constant_series(self):
        values = np.full(200, 3.0)
        model = OneShotSTL(20, shift_window=0)
        model.initialize(values[:80])
        for value in values[80:]:
            point = model.update(float(value))
            assert point.trend == pytest.approx(3.0, abs=0.05)
            assert point.seasonal == pytest.approx(0.0, abs=0.05)

    def test_jointstl_on_constant_series(self):
        values = np.full(100, -2.0)
        result = JointSTL(10, iterations=3).decompose(values)
        np.testing.assert_allclose(result.reconstruct(), values, atol=1e-8)
        assert np.std(result.trend) < 0.05

    def test_robuststl_on_constant_series(self):
        values = np.full(90, 1.0)
        result = RobustSTL(15, iterations=3).decompose(values)
        np.testing.assert_allclose(result.reconstruct(), values, atol=1e-8)

    def test_nsigma_on_constant_stream_never_alarms(self):
        scorer = NSigma(threshold=3.0)
        for _ in range(100):
            verdict = scorer.update(5.0)
            assert not verdict.is_anomaly

    def test_onlinestl_on_constant_series(self):
        values = np.full(150, 4.0)
        model = OnlineSTL(15)
        result = model.decompose(values, 60)
        np.testing.assert_allclose(result.residual, 0.0, atol=1e-6)


class TestMinimalSizes:
    def test_smallest_valid_period(self):
        rng = np.random.default_rng(0)
        values = np.sin(np.pi * np.arange(60)) + 0.01 * rng.normal(size=60)
        model = OneShotSTL(2, shift_window=0)
        result = model.decompose(values, 10)
        np.testing.assert_allclose(result.reconstruct(), values, atol=1e-8)

    def test_loess_window_larger_than_series(self):
        values = np.arange(5.0)
        smoothed = loess_smooth(values, 99)
        assert smoothed.shape == values.shape
        assert np.all(np.isfinite(smoothed))

    def test_forecast_horizon_one(self):
        values = np.sin(np.arange(100.0))
        model = SeasonalNaiveForecaster(10).fit(values)
        assert model.forecast(values, 1).shape == (1,)
        assert NaiveForecaster().fit(values).forecast(values, 1).shape == (1,)

    def test_incremental_solver_single_variable_steps(self):
        solver = IncrementalBandedLDLT(2)
        reference_matrix = np.zeros((0, 0))
        for step in range(12):
            solver.extend(1, [(step, step, 4.0 + step)], [float(step)])
            new = np.zeros((step + 1, step + 1))
            new[:step, :step] = reference_matrix
            new[step, step] = 4.0 + step
            reference_matrix = new
        expected = np.linalg.solve(reference_matrix, np.arange(12.0))
        np.testing.assert_allclose(solver.tail_solution(2), expected[-2:], atol=1e-9)

    def test_find_length_on_short_series(self):
        assert find_length(np.arange(12.0), max_period=6) >= 2


class TestDetectorRobustness:
    def test_nsigma_detector_on_constant_test_region(self):
        train = np.random.default_rng(1).normal(size=200)
        test = np.full(50, train.mean())
        scores = NSigmaDetector().detect(train, test)
        assert np.all(np.isfinite(scores))
        assert np.max(scores) < 5.0

    def test_norma_on_noisy_data_produces_finite_scores(self):
        rng = np.random.default_rng(2)
        train = rng.normal(size=400)
        test = rng.normal(size=200)
        scores = NormaDetector(window=16, clusters=3).detect(train, test)
        assert scores.shape == (200,)
        assert np.all(np.isfinite(scores))

    def test_stomp_detector_with_flat_training_segments(self):
        train = np.concatenate([np.zeros(100), np.sin(np.arange(200.0) / 5)])
        test = np.sin(np.arange(300.0, 400.0) / 5)
        scores = StompDetector(window=20).detect(train, test)
        assert np.all(np.isfinite(scores))

    def test_detectors_reject_invalid_inputs(self):
        with pytest.raises(ValueError):
            NSigmaDetector().detect([], [1.0])
        with pytest.raises(ValueError):
            NSigmaDetector().detect([1.0, np.nan, 2.0], [1.0])


class TestForecasterRobustness:
    def test_ridge_on_constant_series(self):
        values = np.full(400, 2.5)
        model = DirectRidgeForecaster(input_window=20, horizon=10).fit(values)
        np.testing.assert_allclose(model.forecast(values, 10), 2.5, atol=1e-6)

    def test_holt_winters_on_pure_seasonal_signal(self):
        period = 12
        values = np.tile(np.sin(2 * np.pi * np.arange(period) / period), 20)
        model = HoltWintersForecaster(period).fit(values)
        prediction = model.forecast(values, period)
        assert mae(values[:period], prediction) < 0.2

    def test_seasonal_naive_with_horizon_longer_than_period(self):
        values = np.tile(np.arange(5.0), 10)
        prediction = SeasonalNaiveForecaster(5).fit(values).forecast(values, 12)
        np.testing.assert_allclose(prediction[:5], prediction[5:10])


class TestMetricEdgeCases:
    def test_roc_auc_with_single_positive(self):
        labels = np.zeros(100, dtype=int)
        labels[40] = 1
        scores = np.zeros(100)
        scores[40] = 1.0
        assert roc_auc(labels, scores) == pytest.approx(1.0)

    def test_mae_of_identical_constant_arrays(self):
        assert mae(np.full(10, 3.0), np.full(10, 3.0)) == 0.0

    def test_roc_rejects_empty(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([]), np.array([]))
