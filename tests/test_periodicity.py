"""Tests for period detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.periodicity import autocorrelation, estimate_period, find_length, periodogram_period


def seasonal_series(period, cycles=20, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    time = np.arange(period * cycles)
    return np.sin(2 * np.pi * time / period) + 0.3 * np.sin(4 * np.pi * time / period) + rng.normal(
        0, noise, period * cycles
    )


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        values = np.random.default_rng(0).normal(size=200)
        acf = autocorrelation(values, 50)
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_signal_peaks_at_period(self):
        acf = autocorrelation(seasonal_series(24), 60)
        assert acf[24] > acf[12]
        assert acf[24] > 0.5

    def test_constant_series_returns_degenerate_acf(self):
        acf = autocorrelation(np.full(100, 3.0), 10)
        assert acf[0] == pytest.approx(1.0)
        np.testing.assert_allclose(acf[1:], 0.0)


class TestFindLength:
    @pytest.mark.parametrize("period", [12, 24, 50, 100])
    def test_recovers_known_period(self, period):
        estimate = find_length(seasonal_series(period), max_period=300)
        assert abs(estimate - period) <= max(2, period // 20)

    def test_noise_only_returns_fallback(self):
        rng = np.random.default_rng(5)
        estimate = find_length(rng.normal(size=2000), max_period=300)
        assert 2 <= estimate <= 300

    def test_periodogram_recovers_period(self):
        estimate = periodogram_period(seasonal_series(40), max_period=200)
        assert abs(estimate - 40) <= 2

    def test_estimate_period_agrees_on_clean_signal(self):
        assert abs(estimate_period(seasonal_series(36)) - 36) <= 2

    @given(st.sampled_from([10, 16, 25, 32, 48, 64]), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_detection_within_ten_percent(self, period, seed):
        values = seasonal_series(period, cycles=25, noise=0.05, seed=seed)
        estimate = find_length(values, max_period=4 * period)
        assert abs(estimate - period) <= max(2, int(0.1 * period))
