"""End-to-end integration tests across subsystems.

These tests exercise realistic workflows that span several subpackages:
dataset generation -> period detection -> decomposition -> anomaly scoring
-> evaluation, and dataset generation -> forecasting -> evaluation.  They
are intentionally small (a few thousand points) so the whole suite stays
fast, but they touch the same code paths as the benchmark harnesses.
"""

import numpy as np
import pytest

from repro.anomaly import (
    NSigmaDetector,
    OneShotSTLDetector,
    OnlineSTLDetector,
    score_anomaly_series,
)
from repro.core import JointSTL, ModifiedJointSTL, OneShotSTL
from repro.datasets import make_family, make_kdd21_like, make_syn1, make_tsf_dataset
from repro.decomposition import STL, OnlineSTL
from repro.forecasting import (
    OneShotSTLForecaster,
    SeasonalNaiveForecaster,
    evaluate_on_series,
)
from repro.metrics import kdd21_score, vus_roc
from repro.metrics.kdd21 import kdd21_single
from repro.periodicity import find_length
from repro.streaming import StreamingPipeline


class TestAnomalyWorkflow:
    def test_detector_beats_random_on_benchmark_family(self):
        series = make_family("IOPS", series_per_family=1, seed=13)[0]
        detector = OneShotSTLDetector(series.period, shift_window=20)
        scores = score_anomaly_series(detector, series)
        rng = np.random.default_rng(0)
        random_scores = rng.random(scores.size)
        window = min(series.period // 2, 100)
        assert vus_roc(series.test_labels, scores, max_window=window, steps=5) > vus_roc(
            series.test_labels, random_scores, max_window=window, steps=5
        )

    def test_period_detection_feeds_detector(self):
        series = make_family("ECG", series_per_family=1, seed=3)[0]
        detected_period = find_length(series.train_values, max_period=3 * series.period)
        detector = OnlineSTLDetector(detected_period)
        scores = detector.detect(series.train_values, series.test_values)
        assert scores.shape == series.test_values.shape
        assert np.all(np.isfinite(scores))

    def test_kdd21_workflow_scores_some_series(self):
        series_list = make_kdd21_like(count=4, seed=9)
        verdicts = []
        for series in series_list:
            detector = NSigmaDetector()
            scores = detector.detect(series.train_values, series.test_values)
            positions = np.where(series.test_labels == 1)[0]
            verdicts.append(
                kdd21_single(scores, int(positions[0]), int(positions[-1]) + 1)
            )
        assert 0.0 <= kdd21_score(verdicts) <= 1.0


class TestForecastingWorkflow:
    def test_oneshotstl_beats_seasonal_naive_on_weather_like_data(self):
        series = make_tsf_dataset("Weather", seed=2)
        horizon = 96
        std = evaluate_on_series(
            OneShotSTLForecaster(series.period, shift_window=0),
            series,
            horizon=horizon,
            max_origins=3,
        )
        naive = evaluate_on_series(
            SeasonalNaiveForecaster(series.period), series, horizon=horizon, max_origins=3
        )
        assert std.mae <= naive.mae * 1.2

    def test_forecaster_and_pipeline_agree(self):
        data = make_syn1(length=2400, period=200, seed=5)
        init = 4 * 200
        pipeline = StreamingPipeline(OneShotSTL(200, shift_window=0))
        pipeline.initialize(data.values[:init])
        pipeline.process_many(data.values[init : init + 400])

        forecaster = OneShotSTLForecaster(200, shift_window=0)
        forecaster.fit(data.values[:init])
        prediction = forecaster.forecast(data.values[: init + 400], 50)
        np.testing.assert_allclose(prediction, pipeline.forecast(50), atol=1e-9)


class TestDecompositionConsistency:
    def test_batch_and_online_joint_models_agree_on_trend_level(self):
        data = make_syn1(length=1600, period=200, seed=6)
        batch = JointSTL(200, iterations=4).decompose(data.values)
        online = OneShotSTL(200, iterations=4, shift_window=0).decompose(
            data.values, 4 * 200
        )
        view = slice(4 * 200, None)
        batch_error = np.mean(np.abs(batch.trend[view] - data.trend[view]))
        online_error = np.mean(np.abs(online.trend[view] - data.trend[view]))
        # The online approximation should stay within a reasonable factor of
        # the batch solution it approximates.
        assert online_error < 5 * batch_error + 0.05

    def test_stl_initialization_is_consistent_across_methods(self):
        data = make_syn1(length=1600, period=200, seed=7)
        init = 4 * 200
        reference = STL(200, seasonal_window="periodic").decompose(data.values[:init])
        for factory in (
            lambda: OneShotSTL(200, shift_window=0),
            lambda: ModifiedJointSTL(200),
            lambda: OnlineSTL(200),
        ):
            result = factory().initialize(data.values[:init])
            np.testing.assert_allclose(result.seasonal, reference.seasonal, atol=1e-9)

    def test_long_stream_stays_stable(self):
        # A long stream (many periods) must not accumulate numerical drift:
        # the reconstruction identity holds at every point and the residuals
        # stay bounded.
        data = make_syn1(length=4000, period=100, seed=8)
        model = OneShotSTL(100, shift_window=0, iterations=4)
        model.initialize(data.values[:400])
        worst_residual = 0.0
        for value in data.values[400:]:
            point = model.update(float(value))
            assert point.reconstruct() == pytest.approx(point.value, abs=1e-8)
            worst_residual = max(worst_residual, abs(point.residual))
        assert worst_residual < 3.0
