"""Serving-layer tests: wire format, app routing, pagination, lifecycle.

Three tiers of evidence, cheapest first:

* pure-function tests of the columnar wire format (round-trips and
  corruption rejection) -- no engine, no sockets;
* in-process app tests: :meth:`ServingApp.handle` is a plain callable,
  so routing, ingest parity against a twin engine, cursor pagination
  across page boundaries, degraded mode, and backpressure are all
  checked without a single socket;
* end-to-end lifecycle tests: one real asyncio server smoke test
  (ingest over HTTP -> query -> graceful shutdown -> the store reopens
  bit-identically), and a subprocess SIGTERM test asserting the
  documented shutdown ordering -- drain, checkpoint, release the store
  lease, exit 0 -- with the recovered store matching a twin engine fed
  exactly the confirmed batches.

Fleets stay tiny (period 8, initialization 16) to hold tier-1 budgets.
"""

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AnomalyEvent,
    EngineBackend,
    IngestSummary,
    ProtocolError,
    Request,
    RouterBackend,
    ServingApp,
    ServingClient,
    ServingError,
    ServingServer,
    decode_grid,
    decode_summary,
    encode_grid,
    encode_summary,
)
from repro.serving.protocol import CONTENT_TYPE_COLUMNAR
from repro.streaming.engine import MultiSeriesEngine

from tests.conftest import make_seasonal_series

PERIOD = 8
INIT = 2 * PERIOD


def fresh_engine() -> MultiSeriesEngine:
    return MultiSeriesEngine.for_oneshotstl(
        PERIOD, initialization_length=INIT, shift_window=0
    )


def fleet_grid(n_series: int, rounds: int, seed: int = 0):
    keys = [f"series-{index:03d}" for index in range(n_series)]
    grid = np.column_stack(
        [
            make_seasonal_series(rounds, PERIOD, seed=seed + index)["values"]
            for index in range(n_series)
        ]
    )
    return keys, grid


def spiked_grid(n_series: int, rounds: int, seed: int = 0):
    """A grid whose post-warmup tail carries guaranteed anomaly spikes."""
    keys, grid = fleet_grid(n_series, rounds, seed=seed)
    grid = grid.copy()
    for column in range(n_series):
        for row in range(INIT + PERIOD, rounds, PERIOD + column + 1):
            grid[row, column] += 40.0 + column
    return keys, grid


# --------------------------------------------------------------- protocol


class TestProtocol:
    def test_grid_round_trip_is_exact(self):
        keys, grid = fleet_grid(7, 33, seed=3)
        decoded_keys, decoded = decode_grid(encode_grid(keys, grid))
        assert decoded_keys == keys
        assert decoded.shape == grid.shape
        assert np.array_equal(decoded, grid)

    def test_one_dimensional_grid_is_a_single_round(self):
        keys, decoded = decode_grid(
            encode_grid(["a", "b"], np.array([1.5, -2.5]))
        )
        assert keys == ["a", "b"]
        assert decoded.shape == (1, 2)
        assert decoded.tolist() == [[1.5, -2.5]]

    def test_summary_round_trip_is_exact(self):
        summary = IngestSummary(
            keys=("a", "b", "c"),
            points=np.array([10, 10, 0], dtype=np.int64),
            anomalies=np.array([2, 0, 0], dtype=np.int64),
            last_score=np.array([1.25, np.nan, np.nan]),
            rows=20,
            anomalies_total=2,
            skipped_keys=("c",),
            down_shards=("shard-001",),
        )
        decoded = decode_summary(encode_summary(summary))
        assert decoded.keys == summary.keys
        assert np.array_equal(decoded.points, summary.points)
        assert np.array_equal(decoded.anomalies, summary.anomalies)
        assert np.array_equal(
            decoded.last_score, summary.last_score, equal_nan=True
        )
        assert decoded.rows == 20
        assert decoded.anomalies_total == 2
        assert decoded.skipped_keys == ("c",)
        assert decoded.down_shards == ("shard-001",)
        assert not decoded.complete

    @pytest.mark.parametrize(
        "mutilate",
        [
            lambda body: b"JUNK" + body[4:],  # wrong magic
            lambda body: body[:10],  # truncated header
            lambda body: body[:-8],  # payload too short
            lambda body: body + b"\x00" * 8,  # payload too long
        ],
        ids=["magic", "truncated", "short-payload", "long-payload"],
    )
    def test_corrupt_frames_are_rejected(self, mutilate):
        keys, grid = fleet_grid(3, 8)
        with pytest.raises(ProtocolError):
            decode_grid(mutilate(encode_grid(keys, grid)))

    def test_wrong_kind_is_rejected(self):
        keys, grid = fleet_grid(2, 4)
        with pytest.raises(ProtocolError, match="kind"):
            decode_summary(encode_grid(keys, grid))

    def test_duplicate_keys_are_rejected(self):
        body = encode_grid(["a", "a"], np.zeros((4, 2)))
        with pytest.raises(ProtocolError, match="unique"):
            decode_grid(body)

    def test_shape_mismatch_is_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="round-major"):
            encode_grid(["a", "b", "c"], np.zeros((4, 2)))


# ----------------------------------------------------------- app routing


def make_app(**kwargs) -> ServingApp:
    return ServingApp(EngineBackend(fresh_engine()), **kwargs)


class TestAppRouting:
    def test_unknown_routes_404(self):
        app = make_app()
        assert app.handle(Request.get("/nope")).status == 404
        assert app.handle(Request.get("/v1/unknown")).status == 404
        assert app.handle(Request.get("/v1/series/k")).status == 404
        assert app.handle(Request.get("/v1/series/k/nope")).status == 404

    def test_wrong_methods_405(self):
        app = make_app()
        assert app.handle(Request.get("/v1/ingest")).status == 405
        assert (
            app.handle(Request.post("/v1/keys", b"", "text/plain")).status
            == 405
        )
        assert (
            app.handle(Request.post("/health", b"", "text/plain")).status
            == 405
        )

    def test_ingest_content_type_and_frame_errors(self):
        app = make_app()
        keys, grid = fleet_grid(2, 4)
        good = encode_grid(keys, grid)
        wrong_type = Request.post("/v1/ingest", good, "application/json")
        assert app.handle(wrong_type).status == 415
        garbage = Request.post("/v1/ingest", b"not a frame")
        response = app.handle(garbage)
        assert response.status == 400
        assert response.json()["error"] == "bad_frame"

    def test_health_reports_engine_backend(self):
        app = make_app()
        response = app.handle(Request.get("/health"))
        assert response.status == 200
        body = response.json()
        assert body["backend"] == "engine"
        assert body["status"] == "ok"
        assert body["draining"] is False
        assert body["down_shards"] == []
        assert body["quarantined_keys"] == []

    def test_url_encoded_keys_route(self):
        app = make_app()
        keys = ["with space", "with/slash"]
        grid = np.tile(
            make_seasonal_series(INIT + PERIOD, PERIOD)["values"][:, None],
            (1, 2),
        )
        ingest = app.handle(Request.post("/v1/ingest", encode_grid(keys, grid)))
        assert ingest.status == 200
        response = app.handle(Request.get("/v1/series/with%20space/stats"))
        assert response.status == 200
        assert response.json()["key"] == "with space"
        response = app.handle(Request.get("/v1/series/with%2Fslash/stats"))
        assert response.status == 200
        assert response.json()["key"] == "with/slash"


class TestAppIngestParity:
    """The served answers must be the library's answers, bit for bit."""

    def test_summary_matches_twin_engine(self):
        app = make_app()
        twin = fresh_engine()
        keys, grid = spiked_grid(6, PERIOD * 12, seed=11)
        response = app.handle(Request.post("/v1/ingest", encode_grid(keys, grid)))
        assert response.status == 200
        assert response.content_type == CONTENT_TYPE_COLUMNAR
        summary = decode_summary(response.body)
        result = twin.ingest_grid(keys, grid)
        rounds, n = grid.shape
        per_key = result.is_anomaly.reshape(rounds, n).sum(axis=0)
        assert summary.keys == tuple(keys)
        assert summary.points.tolist() == [rounds] * n
        assert summary.anomalies.tolist() == per_key.tolist()
        assert summary.rows == rounds * n
        assert summary.anomalies_total == int(per_key.sum())
        assert summary.anomalies_total > 0  # the spikes registered
        assert summary.complete
        # last_score: the twin's most recent live score per key
        scores = result.anomaly_score.reshape(rounds, n)
        live = result.live.reshape(rounds, n)
        for column in range(n):
            rows_live = np.flatnonzero(live[:, column])
            expected = scores[rows_live[-1], column]
            assert summary.last_score[column] == expected

    def test_queries_match_twin_engine(self):
        app = make_app()
        twin = fresh_engine()
        keys, grid = fleet_grid(5, PERIOD * 6, seed=23)
        app.handle(Request.post("/v1/ingest", encode_grid(keys, grid)))
        twin.ingest_grid(keys, grid)
        listed = app.handle(Request.get("/v1/keys")).json()
        assert listed["keys"] == sorted(str(key) for key in twin.keys())
        assert listed["count"] == len(twin)
        for key in keys:
            served = app.handle(Request.get(f"/v1/series/{key}/stats")).json()
            stats = twin.series_stats(key)
            assert served == {
                "key": key,
                "status": str(stats.status),
                "points": stats.points,
                "anomalies": stats.anomalies,
            }
            forecast = app.handle(
                Request.get(f"/v1/series/{key}/forecast", h="5")
            ).json()
            assert forecast["forecast"] == twin.forecast(key, 5).tolist()

    def test_forecast_error_mapping(self):
        app = make_app()
        keys, grid = fleet_grid(2, INIT // 2, seed=5)  # still warming
        app.handle(Request.post("/v1/ingest", encode_grid(keys, grid)))
        missing = app.handle(Request.get("/v1/series/ghost/forecast"))
        assert missing.status == 404
        warming = app.handle(Request.get(f"/v1/series/{keys[0]}/forecast"))
        assert warming.status == 409
        assert warming.json()["error"] == "not_live"
        bad_h = app.handle(
            Request.get(f"/v1/series/{keys[0]}/forecast", h="zero")
        )
        assert bad_h.status == 400

    def test_rejected_values_are_422_with_prefix_contract(self):
        app = make_app()
        keys, grid = fleet_grid(2, 4, seed=7)
        bad = grid.copy()
        bad[2, 1] = np.inf
        response = app.handle(Request.post("/v1/ingest", encode_grid(keys, bad)))
        assert response.status == 422
        assert "re-send" in response.json()["detail"]


# ----------------------------------------------------------- pagination


def seeded_ring_app(n_events: int = 23) -> ServingApp:
    """An app whose ring holds a deterministic, collision-rich event set."""
    app = make_app()
    for seq in range(n_events):
        # repeated indices across keys exercise the (index, key) tiebreak
        app.ring._entries.append(
            AnomalyEvent(
                seq=seq,
                key=f"k{seq % 5}",
                index=100 + (seq // 3),
                value=float(seq),
                anomaly_score=float((seq * 7) % 11),
                residual=0.5 * seq,
            )
        )
        app.ring._seq = seq + 1
        app.ring._total = seq + 1
    return app


class TestAnomalyPagination:
    def test_ring_is_fed_from_ingest_results(self):
        app = make_app()
        twin = fresh_engine()
        keys, grid = spiked_grid(4, PERIOD * 10, seed=31)
        app.handle(Request.post("/v1/ingest", encode_grid(keys, grid)))
        result = twin.ingest_grid(keys, grid)
        expected_total = int(result.is_anomaly.sum())
        assert expected_total > 0
        body = app.handle(Request.get("/v1/anomalies", limit="1000")).json()
        assert body["page"]["total"] == expected_total
        # every served event matches the twin's flagged rows exactly
        rounds, n = grid.shape
        flagged = np.flatnonzero(result.is_anomaly)
        expected = {
            (keys[position % n], int(result.index[position]))
            for position in flagged
        }
        served = {
            (item["key"], item["index"]) for item in body["items"]
        }
        assert served == expected

    def test_default_sort_is_newest_first(self):
        app = seeded_ring_app()
        items = app.handle(Request.get("/v1/anomalies")).json()["items"]
        ordering = [(item["index"], item["key"]) for item in items]
        assert ordering == sorted(ordering, reverse=True)

    @pytest.mark.parametrize("sort", ["index", "-index"])
    def test_cursor_walk_covers_everything_once(self, sort):
        """Keyset pagination across page boundaries: no duplicates, no
        gaps, even with repeated indices straddling the boundary."""
        app = seeded_ring_app()
        everything = app.handle(
            Request.get("/v1/anomalies", limit="1000", sort=sort)
        ).json()["items"]
        assert len(everything) == 23
        walked: list = []
        cursor = None
        pages = 0
        while True:
            query = {"limit": "4", "sort": sort}
            if cursor is not None:
                query["cursor"] = cursor
            body = app.handle(Request.get("/v1/anomalies", **query)).json()
            walked.extend(body["items"])
            pages += 1
            cursor = body["page"]["next_cursor"]
            if not body["page"]["has_more"]:
                break
            assert cursor is not None
        assert pages == 6  # ceil(23 / 4)
        assert walked == everything  # same order, nothing lost or repeated

    def test_offset_pagination_slices_the_same_order(self):
        app = seeded_ring_app()
        everything = app.handle(
            Request.get("/v1/anomalies", limit="1000")
        ).json()["items"]
        first = app.handle(Request.get("/v1/anomalies", limit="10")).json()
        second = app.handle(
            Request.get("/v1/anomalies", limit="10", offset="10")
        ).json()
        assert first["items"] == everything[:10]
        assert second["items"] == everything[10:20]
        assert first["page"]["has_more"] is True
        assert first["page"]["total"] == 23

    def test_score_sort_orders_by_score(self):
        app = seeded_ring_app()
        items = app.handle(
            Request.get("/v1/anomalies", sort="-score", limit="1000")
        ).json()["items"]
        scores = [item["anomaly_score"] for item in items]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_sort_is_400(self):
        app = seeded_ring_app()
        response = app.handle(Request.get("/v1/anomalies", sort="severity"))
        assert response.status == 400
        assert response.json()["error"] == "bad_sort"

    def test_cursor_requires_an_index_sort(self):
        app = seeded_ring_app()
        response = app.handle(
            Request.get("/v1/anomalies", sort="-score", cursor="100|k1")
        )
        assert response.status == 400
        assert response.json()["error"] == "bad_cursor"

    def test_malformed_cursors_are_400(self):
        app = seeded_ring_app()
        for cursor in ("nonsense", "x|k1", "100"):
            response = app.handle(
                Request.get("/v1/anomalies", cursor=cursor)
            )
            assert response.status == 400, cursor
            assert response.json()["error"] == "bad_cursor"

    def test_limit_bounds_are_enforced(self):
        app = seeded_ring_app()
        assert app.handle(Request.get("/v1/anomalies", limit="0")).status == 400
        assert (
            app.handle(Request.get("/v1/anomalies", limit="9999")).status
            == 400
        )
        assert (
            app.handle(Request.get("/v1/anomalies", offset="-1")).status
            == 400
        )

    def test_ring_is_bounded(self):
        app = ServingApp(
            EngineBackend(fresh_engine()), anomaly_capacity=3
        )
        keys, grid = spiked_grid(6, PERIOD * 8, seed=53)
        app.handle(Request.post("/v1/ingest", encode_grid(keys, grid)))
        assert app.ring.total_seen > 3  # more flagged than retained...
        assert len(app.ring) == 3  # ...the ring kept only the newest
        body = app.handle(Request.get("/v1/anomalies", limit="1000")).json()
        assert body["page"]["total"] == 3


# --------------------------------------------------------- backpressure


class TestBackpressure:
    def test_overload_is_503_with_retry_after(self):
        app = make_app(max_in_flight=2)
        assert app.gate.try_acquire() and app.gate.try_acquire()
        response = app.handle(Request.get("/v1/keys"))
        assert response.status == 503
        assert response.json()["error"] == "overloaded"
        assert response.headers["Retry-After"] == "1"
        # health is exempt: it must answer while the service is saturated
        assert app.handle(Request.get("/health")).status == 200
        app.gate.release()
        assert app.handle(Request.get("/v1/keys")).status == 200
        app.gate.release()

    def test_draining_rejects_new_work_but_health_answers(self):
        app = make_app()
        app.draining = True
        response = app.handle(Request.get("/v1/keys"))
        assert response.status == 503
        assert response.json()["error"] == "draining"
        health = app.handle(Request.get("/health"))
        assert health.status == 503  # unhealthy for load balancers...
        assert health.json()["draining"] is True  # ...but still answering


# ------------------------------------------------------- sharded backend


class TestRouterBackend:
    def test_cluster_serving_end_to_end(self, tmp_path):
        from repro.sharding import ClusterSpec, ShardRouter

        spec = fresh_engine().spec
        cluster = ClusterSpec.for_root(spec, tmp_path, n_shards=2)
        keys, grid = fleet_grid(8, PERIOD * 6, seed=41)
        twin = fresh_engine()
        with ShardRouter(cluster) as router:
            app = ServingApp(RouterBackend(router))
            response = app.handle(
                Request.post("/v1/ingest", encode_grid(keys, grid))
            )
            assert response.status == 200
            summary = decode_summary(response.body)
            twin.ingest_grid(keys, grid)
            assert summary.complete
            assert summary.rows == grid.size
            health = app.handle(Request.get("/health")).json()
            assert health["backend"] == "cluster"
            assert health["status"] == "ok"
            assert sorted(health["shards"]) == ["shard-000", "shard-001"]
            assert health["down_shards"] == []
            listed = app.handle(Request.get("/v1/keys")).json()
            assert listed["keys"] == sorted(keys)
            for key in keys[:3]:
                served = app.handle(
                    Request.get(f"/v1/series/{key}/stats")
                ).json()
                stats = twin.series_stats(key)
                assert served["points"] == stats.points
                assert served["status"] == str(stats.status)
                forecast = app.handle(
                    Request.get(f"/v1/series/{key}/forecast", h="3")
                ).json()
                assert forecast["forecast"] == twin.forecast(key, 3).tolist()
            missing = app.handle(Request.get("/v1/series/ghost/stats"))
            assert missing.status == 404

    def test_down_shard_degrades_and_health_names_it(self, tmp_path):
        from repro.faults import FaultInjector
        from repro.sharding import ClusterSpec, ShardRouter

        spec = fresh_engine().spec
        cluster = ClusterSpec.for_root(spec, tmp_path, n_shards=2)
        keys, grid = fleet_grid(8, PERIOD * 2, seed=43)
        victim = "shard-000"
        router = ShardRouter(
            cluster,
            circuit_threshold=2,
            fault_plans={
                victim: [
                    FaultInjector(
                        point="wal.append.before",
                        action="sigkill",
                        times=0,
                        persist=True,  # replacements die the same way
                    )
                ]
            },
        )
        try:
            app = ServingApp(RouterBackend(router))
            body = encode_grid(keys, grid)
            # strict ingests surface the crash loop as 503s until the
            # circuit trips the shard down
            first = app.handle(Request.post("/v1/ingest", body))
            assert first.status == 503
            assert first.json()["error"] == "backend_unavailable"
            second = app.handle(Request.post("/v1/ingest", body))
            assert second.status == 503
            health = app.handle(Request.get("/health")).json()
            assert health["status"] == "degraded"
            assert health["down_shards"] == [victim]
            assert health["shards"][victim]["state"] == "down"
            # degraded mode serves the surviving shard and names the rest
            degraded = app.handle(
                Request.post("/v1/ingest", body, allow_partial="1")
            )
            assert degraded.status == 200
            summary = decode_summary(degraded.body)
            assert not summary.complete
            assert summary.down_shards == (victim,)
            assert set(summary.skipped_keys) == {
                key for key in keys if router.shard_of(key) == victim
            }
            served = set(keys) - set(summary.skipped_keys)
            assert served  # the survivor really did apply its slice
            for position, key in enumerate(keys):
                expected = 0 if key in summary.skipped_keys else grid.shape[0]
                assert summary.points[position] == expected
        finally:
            router.close(checkpoint=False)


# ------------------------------------------------------------ lifecycle


class TestServerLifecycle:
    def test_socket_smoke_ingest_query_shutdown_reopen(self, tmp_path):
        """The one real-socket test: HTTP in, engine truth out, graceful
        shutdown checkpoints, and the store reopens bit-identically."""
        from repro.durability import DirectoryCheckpointStore

        store_dir = tmp_path / "store"
        store = DirectoryCheckpointStore(store_dir, exclusive=True)
        engine = fresh_engine()
        engine.attach_store(store)
        app = ServingApp(EngineBackend(engine))
        server = ServingServer(app, ready_stream=open(os.devnull, "w"))
        host, port = server.start_in_thread()
        twin = fresh_engine()
        keys, grid = spiked_grid(6, PERIOD * 8, seed=53)
        half = grid.shape[0] // 2
        try:
            with ServingClient(host, port) as client:
                assert client.health()["status"] == "ok"
                first = client.ingest(keys, grid[:half])
                second = client.ingest(keys, grid[half:])
                assert first.complete and second.complete
                twin.ingest_grid(keys, grid[:half])
                twin.ingest_grid(keys, grid[half:])
                assert client.keys() == sorted(keys)
                stats = client.series_stats(keys[0])
                assert stats["points"] == grid.shape[0]
                assert np.array_equal(
                    client.forecast(keys[0], 4), twin.forecast(keys[0], 4)
                )
                listing = client.anomalies(limit=1000)
                assert listing["page"]["total"] == app.ring.total_seen > 0
                with pytest.raises(ServingError) as missing:
                    client.series_stats("ghost")
                assert missing.value.status == 404
        finally:
            server.stop()
        # lease released, store reopens to exactly the served state
        assert not (store_dir / "LEASE.json").exists()
        reopened = MultiSeriesEngine.open(store_dir)
        try:
            assert sorted(map(str, reopened.keys())) == sorted(keys)
            for key in keys:
                ours = reopened.series_stats(key)
                theirs = twin.series_stats(key)
                assert (ours.points, ours.anomalies) == (
                    theirs.points,
                    theirs.anomalies,
                )
                assert np.array_equal(
                    reopened.forecast(key, PERIOD), twin.forecast(key, PERIOD)
                )
        finally:
            reopened.close()

    def test_sigterm_mid_stream_drains_checkpoints_and_releases(
        self, tmp_path
    ):
        """Satellite fix oracle: SIGTERM mid-stream must stop accepting,
        drain the in-flight request, checkpoint, release the lease, and
        exit 0 -- and the store must recover exactly the confirmed
        batches (the surviving WAL prefix)."""
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [
                str(pathlib.Path(__file__).resolve().parents[1] / "src"),
                env.get("PYTHONPATH", ""),
            ]
        ).rstrip(os.pathsep)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving",
                "--store",
                str(store_dir),
                "--period",
                str(PERIOD),
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            ready = process.stdout.readline()
            assert "ready on http://" in ready, ready
            port = int(ready.rsplit(":", 1)[1])
            keys, grid = fleet_grid(6, PERIOD * 40, seed=61)
            rounds_per_batch = PERIOD
            confirmed = 0
            failed = threading.Event()

            def stream():
                nonlocal confirmed
                try:
                    with ServingClient("127.0.0.1", port) as client:
                        for start in range(
                            0, grid.shape[0], rounds_per_batch
                        ):
                            client.ingest(
                                keys, grid[start : start + rounds_per_batch]
                            )
                            confirmed += 1
                except (ServingError, OSError):
                    # the shutdown refused or cut this batch; everything
                    # before it was confirmed
                    failed.set()

            streamer = threading.Thread(target=stream)
            streamer.start()
            while confirmed < 2 and streamer.is_alive():
                time.sleep(0.005)
            process.send_signal(signal.SIGTERM)
            streamer.join(timeout=60)
            assert not streamer.is_alive()
            assert process.wait(timeout=60) == 0  # drained exit is success
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert confirmed >= 2
        # ordering step 4: the lease was released on the way out
        assert not (store_dir / "LEASE.json").exists()
        # the store recovers the confirmed prefix -- plus at most the one
        # batch that was in flight (drained and applied, reply racing the
        # client's read) when the signal landed
        reopened = MultiSeriesEngine.open(store_dir)
        try:
            points = reopened.series_stats(keys[0]).points
            batches = points // rounds_per_batch
            assert points % rounds_per_batch == 0
            assert batches in (confirmed, confirmed + 1)
            twin = MultiSeriesEngine.for_oneshotstl(PERIOD)
            twin.ingest_grid(keys, grid[: batches * rounds_per_batch])
            for key in keys:
                ours = reopened.series_stats(key)
                theirs = twin.series_stats(key)
                assert (ours.points, ours.anomalies) == (
                    theirs.points,
                    theirs.anomalies,
                )
            if str(reopened.series_stats(keys[0]).status) == "live":
                for key in keys:
                    assert np.array_equal(
                        reopened.forecast(key, PERIOD),
                        twin.forecast(key, PERIOD),
                    )
        finally:
            reopened.close()

    def test_server_rejects_oversized_and_malformed_requests(self, tmp_path):
        app = make_app()
        server = ServingServer(
            app, max_body_bytes=1024, ready_stream=open(os.devnull, "w")
        )
        host, port = server.start_in_thread()
        try:
            import http.client

            connection = http.client.HTTPConnection(host, port, timeout=10)
            keys, grid = fleet_grid(4, 64)
            connection.request(
                "POST",
                "/v1/ingest",
                body=encode_grid(keys, grid),  # far over 1024 bytes
                headers={"Content-Type": CONTENT_TYPE_COLUMNAR},
            )
            response = connection.getresponse()
            assert response.status == 413
            response.read()
            connection.close()
            # malformed request line: the codec answers 400 and closes
            import socket as socket_module

            raw = socket_module.create_connection((host, port), timeout=10)
            raw.sendall(b"NONSENSE\r\n\r\n")
            reply = raw.recv(4096)
            assert reply.startswith(b"HTTP/1.1 400")
            assert b"Connection: close" in reply
            raw.close()
        finally:
            server.stop()
