"""Tests for the minimal neural-network substrate."""

import numpy as np
import pytest

from repro.neural import AdamOptimizer, DenseLayer, MLPRegressor


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(4, 3, rng=np.random.default_rng(0))
        outputs = layer.forward(np.ones((5, 4)))
        assert outputs.shape == (5, 3)

    def test_backward_requires_forward(self):
        layer = DenseLayer(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            DenseLayer(2, 2, activation="swish")

    def test_gradient_check_identity_activation(self):
        rng = np.random.default_rng(1)
        layer = DenseLayer(3, 2, activation="identity", rng=rng)
        inputs = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((layer.forward(inputs) - targets) ** 2)

        base = loss()
        gradient_out = layer.forward(inputs) - targets
        _, weight_gradient, _ = layer.backward(gradient_out)
        epsilon = 1e-6
        layer.weights[0, 0] += epsilon
        numerical = (loss() - base) / epsilon
        layer.weights[0, 0] -= epsilon
        # backward() averages over the batch, the numerical gradient does not.
        assert numerical == pytest.approx(weight_gradient[0, 0] * inputs.shape[0], rel=1e-3)


class TestAdam:
    def test_minimizes_quadratic(self):
        parameter = np.array([5.0])
        optimizer = AdamOptimizer(learning_rate=0.1)
        for _ in range(500):
            gradient = 2.0 * parameter
            optimizer.update([parameter], [gradient])
        assert abs(parameter[0]) < 1e-2


class TestMLPRegressor:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(400, 3))
        targets = inputs @ np.array([[1.0], [-2.0], [0.5]]) + 0.3
        model = MLPRegressor(3, 1, hidden_sizes=(), epochs=200, learning_rate=0.05, seed=0)
        model.fit(inputs, targets)
        predictions = model.predict(inputs)
        assert np.mean((predictions - targets) ** 2) < 0.05

    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(1)
        inputs = rng.uniform(-1, 1, size=(600, 2))
        targets = np.sin(3 * inputs[:, :1]) * inputs[:, 1:]
        model = MLPRegressor(2, 1, hidden_sizes=(32, 32), epochs=300, learning_rate=0.01, seed=1)
        model.fit(inputs, targets)
        error = np.mean((model.predict(inputs) - targets) ** 2)
        assert error < 0.1 * np.var(targets) + 1e-3

    def test_early_stopping_records_history(self):
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(100, 2))
        targets = inputs.sum(axis=1, keepdims=True)
        model = MLPRegressor(2, 1, hidden_sizes=(8,), epochs=500, patience=5, seed=2)
        model.fit(inputs, targets)
        assert 0 < len(model.training_history) <= 500

    def test_dimension_mismatch_rejected(self):
        model = MLPRegressor(3, 1)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 2)), np.zeros((10, 1)))
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 3)), np.zeros((8, 1)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            MLPRegressor(2, 1, validation_fraction=1.5)
        with pytest.raises(ValueError):
            MLPRegressor(0, 1)
