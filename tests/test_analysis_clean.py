"""Tier-1 gate: the repo's own source passes its invariant checker.

This is the test that makes the contracts of PRs 3-5 mechanical: a PR
that allocates in a kernel loop, mutates engine state before its WAL
append, forgets to register a component, or adds an unslotted hot
dataclass fails here -- with the rule id and the line -- instead of
surviving until someone profiles a regression or loses data in a crash.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.engine import analyze_paths
from repro.analysis.suppressions import collect_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: acceptance budget: at most this many inline suppressions in src/
MAX_SUPPRESSIONS = 5


def test_source_tree_has_zero_findings():
    findings = analyze_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_suppressions_stay_within_budget_and_state_reasons():
    suppressions = []
    for file in sorted(SRC.rglob("*.py")):
        parsed, meta_findings = collect_suppressions(file.read_text(), str(file))
        assert meta_findings == [], [f.render() for f in meta_findings]
        suppressions.extend(parsed)
    assert len(suppressions) <= MAX_SUPPRESSIONS, [
        f"{s.path}:{s.line}" for s in suppressions
    ]
    for suppression in suppressions:
        assert suppression.reason  # collect_suppressions guarantees this


def test_cli_exits_zero_on_the_tree():
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_mypy_accepts_the_typed_surface():
    mypy_api = pytest.importorskip(
        "mypy.api", reason="mypy is not installed in this environment"
    )
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "mypy.ini")]
    )
    assert status == 0, stdout + stderr
