"""Oracle tests: the columnar fleet kernel equals the scalar path exactly.

The struct-of-arrays fleet kernel (solver layer
:class:`~repro.solvers.batched_ldlt.BatchedIncrementalLDLT`, model layer
:class:`~repro.core.fleet.FleetKernel`, engine routing in
:class:`~repro.streaming.engine.MultiSeriesEngine`) promises *exact*
equality with the per-series scalar path -- every trend, seasonal,
residual, anomaly score and verdict must come out float-for-float
identical, shift searches, NaN imputation and checkpoints included.  These
tests pin that promise at each layer.
"""

import copy

import numpy as np
import pytest

from repro.core import OneShotSTL
from repro.core.fleet import ColumnarNSigma, FleetKernel
from repro.core.nsigma import NSigma
from repro.core.online_system import HALF_BANDWIDTH, ContributionWorkspace
from repro.decomposition import OnlineSTL
from repro.solvers import BatchedIncrementalLDLT, IncrementalBandedLDLT
from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec
from repro.streaming import IngestResult, MultiSeriesEngine, StreamingPipeline
from repro.streaming.latency import summarize_latencies

from tests.conftest import make_seasonal_series

PERIOD = 24
INIT = 4 * PERIOD


def fleet_series(index, length=PERIOD * 10, spike=None, missing=None):
    values = make_seasonal_series(length, PERIOD, seed=300 + index)["values"]
    if spike is not None:
        values[spike] += 10.0
    if missing is not None:
        values[missing] = np.nan
    return values


def warm_models(streams, warm_points, **params):
    """One initialized scalar model per stream, advanced past solver warm-up."""
    models = []
    for values in streams:
        model = OneShotSTL(PERIOD, **params)
        model.initialize(values[:INIT])
        for value in values[INIT : INIT + warm_points]:
            model.update(float(value))
        models.append(model)
    return models


class TestBatchedSolverOracle:
    """BatchedIncrementalLDLT equals n scalar solvers, bit for bit."""

    def _warm_solver_states(self, n, extra_points=0):
        """Scalar per-iteration solvers fed through real OneShotSTL updates."""
        streams = [fleet_series(i) for i in range(n)]
        models = warm_models(streams, 8 + extra_points, shift_window=0)
        return [model._iterations_state[0].solver for model in models], models

    def test_extend_and_tail_match_scalars(self):
        solvers, models = self._warm_solver_states(5)
        batch = BatchedIncrementalLDLT.pack([s.copy() for s in solvers])
        rng = np.random.default_rng(0)
        rows = HALF_BANDWIDTH + ContributionWorkspace._ROW_OFFSETS
        cols = HALF_BANDWIDTH + ContributionWorkspace._COL_OFFSETS
        for _step in range(20):
            observations = rng.normal(0.0, 1.0, 5)
            anchors = rng.normal(0.0, 1.0, 5)
            p = np.abs(rng.normal(1.0, 0.3, 5)) + 0.1
            q = np.abs(rng.normal(1.0, 0.3, 5)) + 0.1
            workspace = ContributionWorkspace(1.0, 1.0)
            expected = []
            for model, solver, value, anchor, pw, qw in zip(
                models, solvers, observations, anchors, p, q
            ):
                updates, rhs = workspace.fill(
                    model._points_processed + _step,
                    float(value),
                    float(anchor),
                    float(pw),
                    float(qw),
                )
                solver.extend(2, updates, rhs, check_indices=False)
                expected.append(solver.tail_solution(HALF_BANDWIDTH))
            first = 1.0 * p
            second = 1.0 * q
            values = np.empty((5, 13))
            values[:, :4] = 1.0
            values[:, 4] = first
            values[:, 5] = first
            values[:, 6] = -first
            values[:, 7] = second
            values[:, 8] = 4.0 * second
            values[:, 9] = second
            values[:, 10] = -2.0 * second
            values[:, 11] = second
            values[:, 12] = -2.0 * second
            rhs = np.stack([observations, observations + anchors], axis=1)
            batch.extend(2, rows, cols, values, rhs)
            assert np.array_equal(
                batch.tail_solution(HALF_BANDWIDTH), np.array(expected)
            )

    def test_rollback_is_exact_and_single_level(self):
        solvers, _models = self._warm_solver_states(3)
        batch = BatchedIncrementalLDLT.pack(solvers)
        before = batch.copy()
        rows = HALF_BANDWIDTH + ContributionWorkspace._ROW_OFFSETS
        cols = HALF_BANDWIDTH + ContributionWorkspace._COL_OFFSETS
        values = np.ones((3, 13))
        rhs = np.ones((3, 2))
        batch.extend(2, rows, cols, values, rhs)
        after = batch.tail_solution(2)
        batch.rollback()
        assert np.array_equal(
            batch.tail_solution(2), before.tail_solution(2)
        )
        with pytest.raises(ValueError, match="no extend to roll back"):
            batch.rollback()
        batch.extend(2, rows, cols, values, rhs)
        assert np.array_equal(batch.tail_solution(2), after)

    def test_pack_extract_round_trip(self):
        solvers, _models = self._warm_solver_states(4, extra_points=3)
        batch = BatchedIncrementalLDLT.pack(solvers)
        for index, solver in enumerate(solvers):
            extracted = batch.extract(index)
            assert extracted.size == solver.size
            assert extracted._m_trail == solver._m_trail
            assert extracted._bp_trail == solver._bp_trail
            assert np.array_equal(
                extracted.tail_solution(2), solver.tail_solution(2)
            )

    def test_pack_rejects_dense_mode_solvers(self):
        with pytest.raises(ValueError, match="dense warm-up"):
            BatchedIncrementalLDLT.pack([IncrementalBandedLDLT(4)])

    def test_select_assign_round_trip(self):
        solvers, _models = self._warm_solver_states(5)
        batch = BatchedIncrementalLDLT.pack(solvers)
        columns = np.array([1, 3])
        sub = batch.select(columns)
        assert np.array_equal(
            sub.tail_solution(2), batch.tail_solution(2)[columns]
        )
        batch.assign(columns, sub)
        assert np.array_equal(batch.tail_solution(2)[columns], sub.tail_solution(2))


class TestFleetKernelOracle:
    """FleetKernel.update equals scalar OneShotSTL.update exactly."""

    def run_pair(self, streams, points, **params):
        """Advance scalar models and a packed kernel over the same streams."""
        scalar = warm_models(streams, 8, **params)
        kernel = FleetKernel.pack(warm_models(streams, 8, **params))
        start = INIT + 8
        for step in range(points):
            values = np.array(
                [stream[start + step] for stream in streams], dtype=float
            )
            points_scalar = [
                model.update(float(value))
                for model, value in zip(scalar, values)
            ]
            out = kernel.update(values)
            for i, point in enumerate(points_scalar):
                assert point.value == out.value[i]
                assert point.trend == out.trend[i]
                assert point.seasonal == out.seasonal[i]
                assert point.residual == out.residual[i]
                assert (
                    scalar[i].last_detection_residual
                    == out.detection_residual[i]
                )
        return scalar, kernel

    def test_plain_fleet_matches(self):
        streams = [fleet_series(i) for i in range(6)]
        self.run_pair(streams, PERIOD * 3, shift_window=0)

    def test_shift_search_divergence_matches(self):
        """Series whose shift search triggers fall back without drift."""
        streams = [
            fleet_series(i, spike=(INIT + 20 + i if i % 2 == 0 else None))
            for i in range(6)
        ]
        scalar, kernel = self.run_pair(
            streams, PERIOD * 2, shift_window=20, shift_threshold=5.0
        )
        # The spike must actually have exercised the divergence path.
        assert any(model.current_shift != 0 for model in scalar)
        assert np.array_equal(
            kernel.last_applied_shift,
            np.array([model.current_shift for model in scalar]),
        )

    def test_nan_inputs_are_imputed_identically(self):
        streams = [
            fleet_series(i, missing=(INIT + 15 if i in (1, 4) else None))
            for i in range(5)
        ]
        self.run_pair(streams, PERIOD * 2, shift_window=20)

    def test_mixed_phase_fleet_matches(self):
        """Members at different stream ages still advance in one batch."""
        streams = [fleet_series(i) for i in range(5)]
        scalar = warm_models(streams, 8, shift_window=0)
        staggered = warm_models(streams, 8, shift_window=0)
        for extra, (model, stream) in enumerate(zip(staggered, streams)):
            for value in stream[INIT + 8 : INIT + 8 + extra]:
                model.update(float(value))
        for extra, (model, stream) in enumerate(zip(scalar, streams)):
            for value in stream[INIT + 8 : INIT + 8 + extra]:
                model.update(float(value))
        kernel = FleetKernel.pack(staggered)
        for step in range(PERIOD):
            values = np.array(
                [
                    stream[INIT + 8 + extra + step]
                    for extra, stream in enumerate(streams)
                ]
            )
            expected = [
                model.update(float(value))
                for model, value in zip(scalar, values)
            ]
            out = kernel.update(values)
            for i, point in enumerate(expected):
                assert point.trend == out.trend[i]
                assert point.residual == out.residual[i]

    def test_subset_update_matches(self):
        streams = [fleet_series(i) for i in range(6)]
        scalar = warm_models(streams, 8, shift_window=0)
        kernel = FleetKernel.pack(warm_models(streams, 8, shift_window=0))
        columns = np.array([0, 2, 5])
        for step in range(PERIOD):
            values = np.array(
                [streams[c][INIT + 8 + step] for c in columns], dtype=float
            )
            expected = [
                scalar[c].update(float(value))
                for c, value in zip(columns, values)
            ]
            out = kernel.update(values, columns=columns)
            for j, point in enumerate(expected):
                assert point.trend == out.trend[j]
                assert point.residual == out.residual[j]

    def test_extract_continues_identically(self):
        streams = [fleet_series(i) for i in range(5)]
        scalar, kernel = self.run_pair(streams, PERIOD, shift_window=20)
        for index, model in enumerate(scalar):
            extracted = kernel.extract(index)
            for value in streams[index][-PERIOD:]:
                assert extracted.update(float(value)) == model.update(
                    float(value)
                )

    def test_pack_requires_uniform_configuration(self):
        streams = [fleet_series(i) for i in range(2)]
        model_a = warm_models(streams[:1], 8, shift_window=0)[0]
        model_b = warm_models(streams[1:], 8, shift_window=5)[0]
        with pytest.raises(ValueError, match="different hyper-parameters"):
            FleetKernel.pack([model_a, model_b])

    def test_pack_rejects_cold_models(self):
        model = OneShotSTL(PERIOD)
        model.initialize(fleet_series(0)[:INIT])
        assert not FleetKernel.eligible(model)
        with pytest.raises(ValueError, match="not packable"):
            FleetKernel.pack([model])


class TestColumnarNSigma:
    def test_matches_scalar_scorers(self):
        rng = np.random.default_rng(1)
        scorers = [NSigma(3.0) for _ in range(4)]
        for scorer in scorers:
            for value in rng.normal(0.0, 1.0, 50):
                scorer.update(float(value))
        columnar = ColumnarNSigma.pack(scorers)
        for _step in range(30):
            values = rng.normal(0.0, 2.0, 4)
            expected = [
                scorer.update(float(value))
                for scorer, value in zip(scorers, values)
            ]
            scores, flags = columnar.update(values)
            for i, verdict in enumerate(expected):
                assert verdict.score == scores[i]
                assert verdict.is_anomaly == bool(flags[i])

    def test_pack_requires_uniform_parameters(self):
        with pytest.raises(ValueError, match="uniform"):
            ColumnarNSigma.pack([NSigma(3.0), NSigma(5.0)])


def engine_pair(n_series, **engine_kwargs):
    """Identically configured engines with the kernel on and off."""
    engines = []
    for enabled in (True, False):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, **engine_kwargs)
        engine.fleet_kernel_enabled = enabled
        engine.kernel_min_cohort = 2
        engines.append(engine)
    return engines


def live_records(engine, batches):
    collected = {}
    for batch in batches:
        for record in engine.ingest(batch):
            if record.status == "live":
                collected.setdefault(record.key, []).append(record.record)
    return collected


class TestEngineKernelOracle:
    """Engine ingest with the kernel equals the scalar engine exactly."""

    def make_batches(self, data):
        length = len(next(iter(data.values())))
        return [
            [(key, values[position]) for key, values in data.items()]
            for position in range(length)
        ]

    def test_row_ingest_matches_scalar_engine(self):
        data = {
            f"host-{i}": fleet_series(i, spike=(INIT + 30 if i == 2 else None))
            for i in range(9)
        }
        batches = self.make_batches(data)
        fast, reference = engine_pair(9)
        records_fast = live_records(fast, batches)
        records_reference = live_records(reference, batches)
        assert fast._absorbed, "the kernel path never engaged"
        assert records_fast == records_reference
        stats_fast = fast.fleet_stats()
        stats_reference = reference.fleet_stats()
        assert stats_fast.points_total == stats_reference.points_total
        assert stats_fast.anomalies_total == stats_reference.anomalies_total

    def test_columnar_and_parallel_ingest_match_rows(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        batches = self.make_batches(data)
        by_rows, _ = engine_pair(8)
        records_rows = live_records(by_rows, batches)

        by_dict, _ = engine_pair(8)
        length = len(next(iter(data.values())))
        records_dict = {}
        for start in range(0, length, 7):
            chunk = {key: values[start : start + 7] for key, values in data.items()}
            for record in by_dict.ingest(chunk):
                if record.status == "live":
                    records_dict.setdefault(record.key, []).append(record.record)
        assert records_dict == records_rows

        by_parallel, _ = engine_pair(8)
        keys = list(data)
        records_parallel = {}
        for position in range(length):
            values = np.array([data[key][position] for key in keys])
            for record in by_parallel.ingest((keys, values)):
                if record.status == "live":
                    records_parallel.setdefault(record.key, []).append(
                        record.record
                    )
        assert records_parallel == records_rows

    def test_columnar_ingest_validates_shape(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
        with pytest.raises(ValueError, match="equal-length"):
            engine.ingest({"a": np.zeros(3), "b": np.zeros(4)})
        with pytest.raises(ValueError, match="parallel-array"):
            engine.ingest((["a", "b"], np.zeros(3)))
        assert engine.ingest({}) == []

    def test_warming_live_mix_matches(self):
        """Keys created at different times: warming and kernel keys coexist."""
        data = {f"early-{i}": fleet_series(i, length=PERIOD * 10) for i in range(8)}
        late = {f"late-{i}": fleet_series(20 + i, length=PERIOD * 10) for i in range(3)}
        fast, reference = engine_pair(8 + 3)
        records = {True: {}, False: {}}
        for enabled, engine in ((True, fast), (False, reference)):
            for position in range(PERIOD * 10):
                batch = [(key, values[position]) for key, values in data.items()]
                if position >= PERIOD * 3:
                    batch += [
                        (key, values[position - PERIOD * 3])
                        for key, values in late.items()
                    ]
                for record in engine.ingest(batch):
                    if record.status == "live":
                        records[enabled].setdefault(record.key, []).append(
                            record.record
                        )
        assert records[True] == records[False]
        assert any(key in fast._absorbed for key in late)

    def test_nan_through_kernel_path_matches(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        for i in (1, 5):
            data[f"m-{i}"][INIT + 25] = np.nan
        batches = self.make_batches(data)
        fast, reference = engine_pair(8)
        assert live_records(fast, batches) == live_records(reference, batches)

    def test_infinite_value_raises_in_input_order(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        batches = self.make_batches(data)
        fast, _ = engine_pair(8)
        live_records(fast, batches[: PERIOD * 5])
        assert fast._absorbed
        poison = [(key, values[0]) for key, values in data.items()]
        poison[3] = (poison[3][0], float("inf"))
        with pytest.raises(ValueError, match="non-finite"):
            fast.ingest(poison)

    def test_mixed_specs_route_to_separate_groups(self):
        """Per-key overrides create distinct cohorts, each batched."""
        spec = EngineSpec(
            pipeline=PipelineSpec(
                decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
                detector=DetectorSpec("nsigma", {"threshold": 5.0}),
            ),
            initialization_length=INIT,
            overrides={
                f"sensitive-{i}": PipelineSpec(
                    decomposer=DecomposerSpec(
                        "oneshotstl", {"period": PERIOD, "iterations": 2}
                    ),
                    detector=DetectorSpec("nsigma", {"threshold": 3.0}),
                )
                for i in range(4)
            },
        )
        data = {f"plain-{i}": fleet_series(i) for i in range(4)}
        data.update(
            {f"sensitive-{i}": fleet_series(10 + i) for i in range(4)}
        )
        batches = [
            [(key, values[position]) for key, values in data.items()]
            for position in range(PERIOD * 8)
        ]
        fast = MultiSeriesEngine.from_spec(spec)
        fast.kernel_min_cohort = 2
        reference = MultiSeriesEngine.from_spec(spec)
        reference.fleet_kernel_enabled = False
        assert live_records(fast, batches) == live_records(reference, batches)
        assert len(fast._groups) == 2

    def test_incompatible_decomposers_stay_on_scalar_path(self):
        def factory(key):
            if key.startswith("slow"):
                return StreamingPipeline(OnlineSTL(PERIOD))
            return StreamingPipeline(OneShotSTL(PERIOD, shift_window=0))

        with pytest.warns(DeprecationWarning):
            engine = MultiSeriesEngine(factory, initialization_length=INIT)
        engine.kernel_min_cohort = 2
        data = {f"slow-{i}": fleet_series(i) for i in range(2)}
        data.update({f"fast-{i}": fleet_series(5 + i) for i in range(4)})
        for batch in self.make_batches(data):
            engine.ingest(batch)
        assert all(not key.startswith("slow") for key in engine._absorbed)
        assert any(key.startswith("fast") for key in engine._absorbed)

    def test_single_key_process_interleaves_with_kernel(self):
        data = {f"m-{i}": fleet_series(i, length=PERIOD * 12) for i in range(8)}
        fast, reference = engine_pair(8)
        for position in range(PERIOD * 6):
            batch = [(key, values[position]) for key, values in data.items()]
            fast.ingest(batch)
            reference.ingest(batch)
        assert fast._absorbed
        for position in range(PERIOD * 6, PERIOD * 7):
            for key, values in data.items():
                fast_record = fast.process(key, float(values[position]))
                reference_record = reference.process(key, float(values[position]))
                assert fast_record.record == reference_record.record
        # ...and batched ingest keeps matching after the interleaved calls.
        batches = [
            [(key, values[position]) for key, values in data.items()]
            for position in range(PERIOD * 7, PERIOD * 8)
        ]
        assert live_records(fast, batches) == live_records(reference, batches)

    def test_forecast_sees_kernel_state(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        fast, reference = engine_pair(8)
        batches = self.make_batches(data)
        live_records(fast, batches)
        live_records(reference, batches)
        for key in data:
            assert np.array_equal(
                fast.forecast(key, PERIOD), reference.forecast(key, PERIOD)
            )


class TestColumnarResults:
    """Lazy IngestResult rows are bit-identical to eager EngineRecords."""

    def make_batches(self, data):
        length = len(next(iter(data.values())))
        return [
            [(key, values[position]) for key, values in data.items()]
            for position in range(length)
        ]

    def assert_result_matches_records(self, result, expected):
        """Every access path of ``result`` equals the eager record list."""
        assert isinstance(result, IngestResult)
        assert len(result) == len(expected)
        assert result.records() == expected
        assert list(result) == expected
        assert result.keys == [record.key for record in expected]
        for position, record in enumerate(expected):
            assert result[position] == record
            assert result.status[position] == record.status
            assert bool(result.live[position]) == (record.record is not None)
            if record.record is None:
                assert np.isnan(result.value[position])
                continue
            point = record.record
            assert result.index[position] == point.index
            assert result.value[position] == point.value
            assert result.trend[position] == point.trend
            assert result.seasonal[position] == point.seasonal
            assert result.residual[position] == point.residual
            assert result.anomaly_score[position] == point.anomaly_score
            assert bool(result.is_anomaly[position]) == point.is_anomaly
            assert (
                result.detection_residual[position] == point.detection_residual
            )
        assert result[-1] == expected[-1]
        assert result[: min(3, len(expected))] == expected[: min(3, len(expected))]

    def test_grid_ingest_columnar_results_match_eager_rows(self):
        """Dict (grid) ingest: arrays out == eager records, spikes included."""
        data = {
            f"m-{i}": fleet_series(i, spike=(INIT + 30 if i == 2 else None))
            for i in range(8)
        }
        fast, reference = engine_pair(8)
        length = len(next(iter(data.values())))
        collected_fast: list = []
        collected_reference: list = []
        for start in range(0, length, 9):
            chunk = {
                key: values[start : start + 9] for key, values in data.items()
            }
            result = fast.ingest_columnar(chunk)
            expected = reference.ingest(chunk)
            self.assert_result_matches_records(result, expected)
            collected_fast.extend(result.records())
            collected_reference.extend(expected)
        assert fast._absorbed, "the kernel path never engaged"
        assert collected_fast == collected_reference

    def test_warming_live_mix_columnar_results(self):
        """Late keys keep warming (record None) while the fleet runs columnar."""
        data = {f"early-{i}": fleet_series(i) for i in range(8)}
        late = {f"late-{i}": fleet_series(20 + i) for i in range(3)}
        fast, reference = engine_pair(8 + 3)
        length = PERIOD * 6
        for position in range(length):
            batch = {key: values[position] for key, values in data.items()}
            if position >= PERIOD * 4:
                batch.update(
                    {
                        key: values[position - PERIOD * 4]
                        for key, values in late.items()
                    }
                )
            result = fast.ingest_columnar(batch)
            expected = reference.ingest(list(batch.items()))
            self.assert_result_matches_records(result, expected)
        statuses = set(fast.ingest_columnar(
            {key: values[length] for key, values in {**data, **late}.items()}
        ).status)
        assert len(statuses) == 2  # warming and live rows coexist

    def test_nan_inputs_columnar_results_match(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        for i in (1, 5):
            data[f"m-{i}"][INIT + 25] = np.nan
        fast, reference = engine_pair(8)
        batches = self.make_batches(data)
        for batch in batches:
            result = fast.ingest(batch, columnar_results=True)
            expected = reference.ingest(batch)
            self.assert_result_matches_records(result, expected)

    def test_mixed_spec_groups_columnar_results_match(self):
        spec = EngineSpec(
            pipeline=PipelineSpec(
                decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
                detector=DetectorSpec("nsigma", {"threshold": 5.0}),
            ),
            initialization_length=INIT,
            overrides={
                f"sensitive-{i}": PipelineSpec(
                    decomposer=DecomposerSpec(
                        "oneshotstl", {"period": PERIOD, "iterations": 2}
                    ),
                    detector=DetectorSpec("nsigma", {"threshold": 3.0}),
                )
                for i in range(4)
            },
        )
        data = {f"plain-{i}": fleet_series(i) for i in range(4)}
        data.update({f"sensitive-{i}": fleet_series(10 + i) for i in range(4)})
        fast = MultiSeriesEngine.from_spec(spec)
        fast.kernel_min_cohort = 2
        reference = MultiSeriesEngine.from_spec(spec)
        reference.fleet_kernel_enabled = False
        length = len(next(iter(data.values())))
        for start in range(0, length, 5):
            chunk = {
                key: values[start : start + 5] for key, values in data.items()
            }
            result = fast.ingest_columnar(chunk)
            expected = reference.ingest(chunk)
            self.assert_result_matches_records(result, expected)
        assert len(fast._groups) == 2

    def test_partial_cohort_rounds_columnar_results_match(self):
        """Rounds touching only a subset of an absorbed group stay exact."""
        data = {f"m-{i}": fleet_series(i, length=PERIOD * 12) for i in range(10)}
        fast, reference = engine_pair(10)
        batches = self.make_batches(data)
        for batch in batches[: PERIOD * 6]:
            fast.ingest(batch)
            reference.ingest(batch)
        assert fast._absorbed
        keys = list(data)
        rng = np.random.default_rng(7)
        for position in range(PERIOD * 6, PERIOD * 8):
            chosen = sorted(
                rng.choice(len(keys), size=rng.integers(3, 9), replace=False)
            )
            subset_keys = [keys[i] for i in chosen]
            values = np.array([data[key][position] for key in subset_keys])
            result = fast.ingest((subset_keys, values), columnar_results=True)
            expected = reference.ingest((subset_keys, values))
            self.assert_result_matches_records(result, expected)

    def test_row_and_parallel_columnar_results_match_dict(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        engines = [engine_pair(8)[0] for _ in range(3)]
        keys = list(data)
        length = len(next(iter(data.values())))
        for position in range(length):
            row_batch = [(key, data[key][position]) for key in keys]
            values = np.array([data[key][position] for key in keys])
            by_rows = engines[0].ingest(row_batch, columnar_results=True)
            by_dict = engines[1].ingest_columnar(
                {key: data[key][position] for key in keys}
            )
            by_parallel = engines[2].ingest_columnar((keys, values))
            assert by_rows.records() == by_dict.records() == by_parallel.records()

    def test_sequential_fallback_wraps_records(self):
        """Small batches and warming-only batches still return a result."""
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
        result = engine.ingest_columnar({"a": 1.0, "b": 2.0})
        assert len(result) == 2
        assert not result.live.any()
        assert all(record.record is None for record in result)
        assert engine.ingest_columnar({}).records() == []
        assert engine.ingest({}) == []

    def test_infinite_value_still_raises_with_columnar_results(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        fast, _ = engine_pair(8)
        for batch in self.make_batches(data)[: PERIOD * 5]:
            fast.ingest(batch)
        assert fast._absorbed
        poison = {key: float("inf") for key in data}
        with pytest.raises(ValueError, match="non-finite"):
            fast.ingest_columnar(poison)


class TestAmortizedAbsorption:
    """Group growth is capacity-doubled: trickle absorption stays linear."""

    def _warm_prototype(self, **params):
        values = fleet_series(0)
        model = OneShotSTL(PERIOD, **params)
        model.initialize(values[:INIT])
        for value in values[INIT : INIT + 10]:
            model.update(float(value))
        assert FleetKernel.eligible(model)
        return model

    def test_kernel_append_reuses_capacity(self):
        prototype = self._warm_prototype(iterations=2)
        kernel = FleetKernel.pack([copy.deepcopy(prototype)])
        for _ in range(20):
            kernel.append(FleetKernel.pack([copy.deepcopy(prototype)]))
        # The columnar arrays sit inside larger capacity bases...
        base = kernel.seasonal_buffer.base
        assert base is not None and base.shape[0] > kernel.n_series
        assert kernel.last_trend.base is not None
        # ...and advancing after growth still matches the scalar model
        # bit for bit (updates write in place, never rebinding the views).
        scalar = copy.deepcopy(prototype)
        values = fleet_series(0)[INIT + 10 : INIT + 10 + PERIOD]
        for value in values:
            point = scalar.update(float(value))
            out = kernel.update(np.full(kernel.n_series, float(value)))
            assert np.all(out.trend == point.trend)
            assert np.all(out.residual == point.residual)
        base_after = kernel.seasonal_buffer.base
        assert base_after is base  # capacity survived the updates

    def test_one_at_a_time_absorption_is_not_quadratic(self):
        """Structural check: repeated single appends copy O(1) rows each."""
        import time

        prototype = self._warm_prototype(iterations=1)
        packs = [
            FleetKernel.pack([copy.deepcopy(prototype)]) for _ in range(96)
        ]

        def absorb(count):
            kernel = FleetKernel.pack([copy.deepcopy(prototype)])
            start = time.perf_counter()
            for single in packs[:count]:
                kernel.append(single)
            return time.perf_counter() - start

        absorb(4)  # warm caches
        first = min(absorb(48) for _ in range(3))
        second = min(absorb(96) for _ in range(3))
        # Quadratic growth would make the doubled batch ~4x slower; the
        # amortized path is ~2x with generous headroom for timer noise.
        assert second < 3.2 * first

    def test_engine_trickle_absorption_matches_scalar(self):
        """Series joining a live group one at a time stay bit-identical."""
        early = {f"early-{i}": fleet_series(i, length=PERIOD * 14) for i in range(8)}
        late = {
            f"late-{i}": fleet_series(30 + i, length=PERIOD * 14) for i in range(5)
        }
        fast, reference = engine_pair(13)
        records = {True: {}, False: {}}
        for enabled, engine in ((True, fast), (False, reference)):
            for position in range(PERIOD * 12):
                batch = [(key, values[position]) for key, values in early.items()]
                # Every late key starts one period after the previous one,
                # so each goes live (and is absorbed) on a different round.
                for offset, (key, values) in enumerate(late.items()):
                    delay = PERIOD * (1 + offset)
                    if position >= delay:
                        batch.append((key, values[position - delay]))
                for record in engine.ingest(batch):
                    if record.status == "live":
                        records[enabled].setdefault(record.key, []).append(
                            record.record
                        )
        assert records[True] == records[False]
        assert all(key in fast._absorbed for key in late)


class TestBatchedLatencyTracking:
    def test_latency_ring_overflow_keeps_newest_window(self):
        spec = EngineSpec(
            pipeline=PipelineSpec(
                decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
                detector=DetectorSpec("nsigma", {"threshold": 5.0}),
            ),
            initialization_length=INIT,
            latency_window=16,
            track_latency=True,
        )
        engine = MultiSeriesEngine.from_spec(spec)
        engine.kernel_min_cohort = 2
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        length = len(next(iter(data.values())))
        for position in range(length):
            engine.ingest({key: values[position] for key, values in data.items()})
        assert engine._absorbed
        for key in data:
            latency = engine.series_stats(key).latency
            assert latency is not None
            assert latency.points == 16
            assert latency.p99_seconds >= latency.median_seconds > 0

    def test_latency_flush_interleaves_with_scalar_process(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=True)
        engine.kernel_min_cohort = 2
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        for position in range(INIT + 20):
            engine.ingest({key: values[position] for key, values in data.items()})
        assert engine._absorbed
        # A single-key process() flushes the pending cohort ring first, so
        # per-key order stays chronological and nothing is lost.
        engine.process("m-0", 0.5)
        latency = engine.series_stats("m-0").latency
        assert latency is not None
        assert latency.points == 21


class TestKernelCheckpointing:
    def run_batches(self, data, start, stop):
        return [
            [(key, values[position]) for key, values in data.items()]
            for position in range(start, stop)
        ]

    def test_save_load_round_trip_through_kernel(self, tmp_path):
        data = {f"m-{i}": fleet_series(i, length=PERIOD * 12) for i in range(8)}
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
        engine.kernel_min_cohort = 2
        for batch in self.run_batches(data, 0, PERIOD * 8):
            engine.ingest(batch)
        assert engine._absorbed
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        restored.kernel_min_cohort = 2
        tail = self.run_batches(data, PERIOD * 8, PERIOD * 12)
        continued = [engine.ingest(batch) for batch in tail]
        reloaded = [restored.ingest(batch) for batch in tail]
        for before, after in zip(continued, reloaded):
            assert [r.record for r in before] == [r.record for r in after]
        # The restored engine re-absorbs its fleet on the batched path.
        assert restored._absorbed

    def test_checkpoint_format_is_identical_to_scalar_path(self, tmp_path):
        """A kernel-run engine saves the exact checkpoint a scalar run saves."""
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        fast, reference = engine_pair(8, track_latency=False)
        for batch in self.run_batches(data, 0, PERIOD * 8):
            fast.ingest(batch)
            reference.ingest(batch)
        assert fast._absorbed and not reference._absorbed
        fast_path = tmp_path / "fast.ckpt"
        reference_path = tmp_path / "reference.ckpt"
        fast.save(fast_path)
        reference.save(reference_path)
        fast_engine = MultiSeriesEngine.load(fast_path)
        reference_engine = MultiSeriesEngine.load(reference_path)
        record_fast = fast_engine.process("m-0", 0.25)
        record_reference = reference_engine.process("m-0", 0.25)
        assert record_fast.record == record_reference.record

    def test_snapshot_restore_through_kernel(self):
        data = {f"m-{i}": fleet_series(i, length=PERIOD * 12) for i in range(8)}
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
        engine.kernel_min_cohort = 2
        for batch in self.run_batches(data, 0, PERIOD * 8):
            engine.ingest(batch)
        assert engine._absorbed
        checkpoint = engine.snapshot()
        tail = self.run_batches(data, PERIOD * 8, PERIOD * 12)
        first = [engine.ingest(batch) for batch in tail]
        engine.restore(checkpoint)
        assert not engine._absorbed  # columnar bookkeeping was reset
        second = [engine.ingest(batch) for batch in tail]
        for before, after in zip(first, second):
            assert [r.record for r in before] == [r.record for r in after]


class TestLatencyEdgeCases:
    def test_empty_window_is_well_defined(self):
        report = summarize_latencies(np.array([]), method="empty")
        assert report.points == 0
        assert report.mean_seconds == 0.0
        assert report.median_seconds == 0.0
        assert report.p99_seconds == 0.0
        assert report.total_seconds == 0.0

    def test_single_sample_window(self):
        report = summarize_latencies([0.25], method="one")
        assert report.points == 1
        assert report.mean_seconds == 0.25
        assert report.median_seconds == 0.25
        assert report.p99_seconds == 0.25
        assert report.total_seconds == 0.25

    def test_no_numpy_warnings_on_edge_windows(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            summarize_latencies(np.array([]), method="empty")
            summarize_latencies([0.1], method="one")

    def test_fleet_stats_on_empty_fleet(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD)
        stats = engine.fleet_stats()
        assert stats.series_total == 0
        assert stats.points_total == 0
        assert stats.anomalies_total == 0

    def test_kernel_path_latency_counts_every_point(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=True)
        engine.kernel_min_cohort = 2
        length = len(next(iter(data.values())))
        for position in range(length):
            engine.ingest([(key, values[position]) for key, values in data.items()])
        assert engine._absorbed
        for key in data:
            latency = engine.fleet_stats().per_series[key].latency
            assert latency is not None
            assert latency.points == min(length - INIT, 1024)
            assert latency.p99_seconds >= latency.median_seconds > 0


class TestTimeBlockedOracle:
    """The time-blocked advance equals the round-at-a-time path exactly.

    ``FleetKernel.update_block`` moves T rounds x N series per call,
    splitting internally on NaN rounds and shift-search triggers; every
    output and every piece of post-block state must be float-for-float
    identical to T consecutive ``update`` calls, and the engine's
    ``time_block_rounds=None`` (blocked) grid path must match
    ``time_block_rounds=1`` (legacy) on the same batches.
    """

    def kernel_pair(self, streams, **params):
        return (
            FleetKernel.pack(warm_models(streams, 8, **params)),
            FleetKernel.pack(warm_models(streams, 8, **params)),
        )

    def assert_block_matches(self, streams, rounds_per_block, points, **params):
        blocked, per_round = self.kernel_pair(streams, **params)
        start = INIT + 8
        fields = ("value", "trend", "seasonal", "residual", "detection_residual")
        for block_start in range(0, points, rounds_per_block):
            block_stop = min(points, block_start + rounds_per_block)
            values = np.array(
                [
                    [stream[start + step] for stream in streams]
                    for step in range(block_start, block_stop)
                ],
                dtype=float,
            )
            out = blocked.update_block(values)
            for row in range(values.shape[0]):
                expected = per_round.update(values[row])
                for field in fields:
                    assert np.array_equal(
                        getattr(out, field)[row],
                        getattr(expected, field),
                        equal_nan=True,
                    ), field
        # Post-block state: both kernels continue identically.
        tail = np.array(
            [stream[start + points] for stream in streams], dtype=float
        )
        continued_blocked = blocked.update(tail)
        continued = per_round.update(tail)
        for field in fields:
            assert np.array_equal(
                getattr(continued_blocked, field),
                getattr(continued, field),
                equal_nan=True,
            ), field
        assert np.array_equal(
            blocked.last_applied_shift, per_round.last_applied_shift
        )

    def test_plain_block_matches(self):
        streams = [fleet_series(i) for i in range(6)]
        self.assert_block_matches(streams, PERIOD, PERIOD * 3, shift_window=0)

    @pytest.mark.parametrize("rounds_per_block", [1, 7, PERIOD * 2])
    def test_block_boundaries_match(self, rounds_per_block):
        """T=1, T dividing and not dividing the batch, T spanning periods."""
        streams = [fleet_series(i) for i in range(5)]
        self.assert_block_matches(
            streams, rounds_per_block, PERIOD * 2, shift_window=0
        )

    def test_nan_rounds_split_the_block_identically(self):
        streams = [
            fleet_series(i, missing=(INIT + 15 + i if i in (1, 3) else None))
            for i in range(5)
        ]
        self.assert_block_matches(streams, PERIOD, PERIOD * 2, shift_window=20)

    def test_shift_search_trigger_mid_block_matches(self):
        streams = [
            fleet_series(i, spike=(INIT + 20 + i if i % 2 == 0 else None))
            for i in range(6)
        ]
        blocked, per_round = self.kernel_pair(
            streams, shift_window=20, shift_threshold=5.0
        )
        self.assert_block_matches(
            streams, PERIOD, PERIOD * 2, shift_window=20, shift_threshold=5.0
        )
        # The spikes must actually have exercised the mid-block fallback.
        scalar = warm_models(streams, 8, shift_window=20, shift_threshold=5.0)
        start = INIT + 8
        for step in range(PERIOD * 2):
            for model, stream in zip(scalar, streams):
                model.update(float(stream[start + step]))
        assert any(model.current_shift != 0 for model in scalar)

    def test_subset_block_matches(self):
        streams = [fleet_series(i) for i in range(6)]
        blocked, per_round = self.kernel_pair(streams, shift_window=0)
        columns = np.array([0, 2, 5])
        start = INIT + 8
        values = np.array(
            [
                [streams[c][start + step] for c in columns]
                for step in range(PERIOD)
            ],
            dtype=float,
        )
        out = blocked.update_block(values, columns=columns)
        for row in range(PERIOD):
            expected = per_round.update(values[row], columns=columns)
            assert np.array_equal(out.trend[row], expected.trend)
            assert np.array_equal(out.residual[row], expected.residual)
            assert np.array_equal(
                out.detection_residual[row], expected.detection_residual
            )

    def test_columnar_nsigma_block_matches(self):
        rng = np.random.default_rng(5)
        scorers = [NSigma(3.0) for _ in range(4)]
        for scorer in scorers:
            for value in rng.normal(0.0, 1.0, 50):
                scorer.update(float(value))
        blocked = ColumnarNSigma.pack(scorers)
        per_round = ColumnarNSigma.pack(scorers)
        values = rng.normal(0.0, 2.0, (30, 4))
        scores, flags = blocked.update_block(values)
        for row in range(30):
            expected_scores, expected_flags = per_round.update(values[row])
            assert np.array_equal(scores[row], expected_scores)
            assert np.array_equal(flags[row], expected_flags)
        assert np.array_equal(blocked.mean, per_round.mean)
        assert np.array_equal(blocked.m2, per_round.m2)
        assert np.array_equal(blocked.count, per_round.count)

    def engine_block_pair(self, **engine_kwargs):
        """Identically configured engines: blocked grid path vs legacy."""
        engines = []
        for block_rounds in (None, 1):
            engine = MultiSeriesEngine.for_oneshotstl(PERIOD, **engine_kwargs)
            engine.kernel_min_cohort = 2
            engine.time_block_rounds = block_rounds
            engines.append(engine)
        return engines

    def assert_engine_grids_match(self, data, chunk, **engine_kwargs):
        blocked, per_round = self.engine_block_pair(**engine_kwargs)
        length = len(next(iter(data.values())))
        fields = (
            "index",
            "value",
            "trend",
            "seasonal",
            "residual",
            "anomaly_score",
            "is_anomaly",
            "detection_residual",
            "live",
        )
        for start in range(0, length, chunk):
            batch = {
                key: values[start : start + chunk]
                for key, values in data.items()
            }
            out_blocked = blocked.ingest_columnar(batch)
            out_per_round = per_round.ingest_columnar(batch)
            for field in fields:
                assert np.array_equal(
                    getattr(out_blocked, field),
                    getattr(out_per_round, field),
                    equal_nan=True,
                ), field
        assert blocked._absorbed, "the kernel path never engaged"
        for key in data:
            stats_blocked = blocked.series_stats(key)
            stats_per_round = per_round.series_stats(key)
            assert stats_blocked.points == stats_per_round.points
            assert stats_blocked.anomalies == stats_per_round.anomalies
        return blocked, per_round

    def test_engine_blocked_grid_matches_per_round(self):
        """Warming -> live transition happens mid-batch on both paths."""
        data = {
            f"m-{i}": fleet_series(
                i,
                spike=(INIT + 30 if i == 2 else None),
                missing=(INIT + 41 if i == 5 else None),
            )
            for i in range(8)
        }
        self.assert_engine_grids_match(data, chunk=37)

    @pytest.mark.parametrize("block_rounds", [2, 7, 1000])
    def test_engine_explicit_block_sizes_match(self, block_rounds):
        """T dividing, not dividing, and exceeding the batch length."""
        data = {f"m-{i}": fleet_series(i) for i in range(6)}
        blocked, per_round = self.engine_block_pair()
        blocked.time_block_rounds = block_rounds
        length = len(next(iter(data.values())))
        for start in range(0, length, 50):
            batch = {
                key: values[start : start + 50] for key, values in data.items()
            }
            out_blocked = blocked.ingest_columnar(batch)
            out_per_round = per_round.ingest_columnar(batch)
            assert np.array_equal(
                out_blocked.trend, out_per_round.trend, equal_nan=True
            )
            assert np.array_equal(
                out_blocked.is_anomaly, out_per_round.is_anomaly
            )
        assert blocked._absorbed

    def test_blocked_latency_counts_every_round(self):
        data = {f"m-{i}": fleet_series(i) for i in range(8)}
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, track_latency=True)
        engine.kernel_min_cohort = 2
        length = len(next(iter(data.values())))
        for start in range(0, length, 40):
            engine.ingest({
                key: values[start : start + 40] for key, values in data.items()
            })
        assert engine._absorbed
        for key in data:
            latency = engine.fleet_stats().per_series[key].latency
            assert latency is not None
            assert latency.points == min(length - INIT, 1024)
            assert latency.p99_seconds >= latency.median_seconds > 0
