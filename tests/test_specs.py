"""Tests for the declarative spec layer and the component registry."""

import json

import numpy as np
import pytest

from repro import registry
from repro.core import NSigma, OneShotSTL
from repro.decomposition import OnlineSTL
from repro.specs import (
    DecomposerSpec,
    DetectorSpec,
    EngineSpec,
    ForecasterSpec,
    PipelineSpec,
    build,
    spec_of,
)
from repro.streaming import MultiSeriesEngine, StreamingPipeline

from tests.conftest import make_seasonal_series

PERIOD = 24
INIT = 4 * PERIOD


class TestRegistry:
    def test_builtins_are_discoverable(self):
        assert "oneshotstl" in registry.available("decomposer")
        assert "online_stl" in registry.available("decomposer")
        assert "nsigma" in registry.available("scorer")
        assert "oneshotstl" in registry.available("detector")
        assert "oneshotstl" in registry.available("forecaster")

    def test_lookup_resolves_class(self):
        assert registry.get_component("decomposer", "oneshotstl") is OneShotSTL
        assert registry.get_component("scorer", "nsigma") is NSigma

    def test_unknown_name_raises_with_alternatives(self):
        with pytest.raises(KeyError, match="oneshotstl"):
            registry.get_component("decomposer", "no-such-method")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown registry kind"):
            registry.get_component("widget", "oneshotstl")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @registry.register_decomposer("oneshotstl")
            class Impostor:
                pass

    def test_reregistering_same_class_is_noop(self):
        registry.register_decomposer("oneshotstl")(OneShotSTL)
        assert registry.get_component("decomposer", "oneshotstl") is OneShotSTL

    def test_module_reload_replaces_registration(self):
        """importlib.reload re-executes the decorator on a new class object."""
        import importlib

        import repro.core.nsigma as nsigma_module

        try:
            reloaded = importlib.reload(nsigma_module)
            assert registry.get_component("scorer", "nsigma") is reloaded.NSigma
            assert reloaded.NSigma is not NSigma
        finally:
            # Other modules still hold the originally imported class; point
            # the registry (and the module) back at it for later tests.
            registry.register_scorer("nsigma")(NSigma)
            nsigma_module.NSigma = NSigma

    def test_component_name_ignores_unregistered_subclass(self):
        class Subclass(OneShotSTL):
            pass

        assert registry.component_name("decomposer", OneShotSTL) == "oneshotstl"
        assert registry.component_name("decomposer", Subclass) is None


class TestSpecRoundTrip:
    def test_component_spec_dict_and_json(self):
        spec = DecomposerSpec("oneshotstl", {"period": PERIOD, "iterations": 2})
        assert DecomposerSpec.from_dict(spec.to_dict()) == spec
        assert DecomposerSpec.from_json(spec.to_json()) == spec
        # to_json emits valid, self-contained JSON
        assert json.loads(spec.to_json())["name"] == "oneshotstl"

    def test_pipeline_spec_round_trip(self):
        spec = PipelineSpec(
            decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
            detector=DetectorSpec("nsigma", {"threshold": 4.0}),
        )
        assert PipelineSpec.from_dict(spec.to_dict()) == spec
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_engine_spec_round_trip_with_overrides(self):
        spec = EngineSpec(
            pipeline=PipelineSpec(DecomposerSpec("oneshotstl", {"period": PERIOD})),
            initialization_length=INIT,
            latency_window=256,
            track_latency=False,
            overrides={
                "slow": PipelineSpec(DecomposerSpec("online_stl", {"period": PERIOD}))
            },
        )
        assert EngineSpec.from_dict(spec.to_dict()) == spec
        assert EngineSpec.from_json(spec.to_json()) == spec

    def test_non_primitive_params_rejected(self):
        with pytest.raises(ValueError, match="JSON primitives"):
            DecomposerSpec("oneshotstl", {"initializer": object()})

    def test_non_finite_params_rejected(self):
        """NaN/Infinity serialize to invalid JSON, so they must fail early."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                DecomposerSpec("oneshotstl", {"epsilon": bad})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            DecomposerSpec.from_dict({"name": "oneshotstl", "parms": {}})
        with pytest.raises(ValueError, match="unknown keys"):
            EngineSpec.from_dict(
                {
                    "pipeline": {"decomposer": {"name": "oneshotstl"}},
                    "initialization_length": INIT,
                    "factory": "nope",
                }
            )

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError, match="name"):
            DecomposerSpec.from_dict({"params": {}})
        with pytest.raises(ValueError, match="pipeline"):
            EngineSpec.from_dict({"initialization_length": INIT})

    def test_override_keys_must_be_strings(self):
        with pytest.raises(ValueError, match="strings"):
            EngineSpec(
                pipeline=PipelineSpec(DecomposerSpec("oneshotstl", {"period": 8})),
                initialization_length=16,
                overrides={3: PipelineSpec(DecomposerSpec("oneshotstl", {"period": 8}))},
            )


#: registered online decomposers with cheap reference parameters
DECOMPOSER_CASES = [
    ("oneshotstl", {"period": PERIOD, "shift_window": 0}),
    ("oneshotstl", {"period": PERIOD, "shift_window": 10}),
    ("modified_joint_stl", {"period": PERIOD, "iterations": 2}),
    ("online_stl", {"period": PERIOD}),
    ("window_stl", {"period": PERIOD, "recompute_stride": 16}),
]


class TestBuildEquivalence:
    @pytest.mark.parametrize("name,params", DECOMPOSER_CASES)
    def test_spec_built_pipeline_matches_hand_constructed(self, name, params):
        """build(Spec.from_dict(spec.to_dict())) == hand-wired pipeline, bit for bit."""
        values = make_seasonal_series(PERIOD * 7, PERIOD, seed=31)["values"]
        spec = PipelineSpec(
            decomposer=DecomposerSpec(name, params),
            detector=DetectorSpec("nsigma", {"threshold": 5.0}),
        )
        from_spec = build(PipelineSpec.from_dict(spec.to_dict()))
        decomposer_class = registry.get_component("decomposer", name)
        by_hand = StreamingPipeline(decomposer_class(**params), anomaly_threshold=5.0)

        from_spec.initialize(values[:INIT])
        by_hand.initialize(values[:INIT])
        assert from_spec.process_many(values[INIT:]) == by_hand.process_many(
            values[INIT:]
        )

    def test_detector_threshold_flows_through(self):
        spec = PipelineSpec(
            decomposer=DecomposerSpec("oneshotstl", {"period": PERIOD}),
            detector=DetectorSpec("nsigma", {"threshold": 2.5}),
        )
        pipeline = build(spec)
        assert pipeline.scorer.threshold == 2.5

    def test_forecaster_spec_builds(self):
        spec = ForecasterSpec("seasonal_naive", {"period": PERIOD})
        forecaster = build(ForecasterSpec.from_json(spec.to_json()))
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=32)["values"]
        forecaster.fit(values[: PERIOD * 4])
        predictions = forecaster.forecast(values[: PERIOD * 5], PERIOD)
        np.testing.assert_allclose(
            predictions, values[PERIOD * 4 : PERIOD * 5]
        )

    def test_build_rejects_non_spec(self):
        with pytest.raises(TypeError):
            build({"name": "oneshotstl"})


class TestSpecDerivation:
    def test_pipeline_spec_property_round_trips(self):
        """A hand-built pipeline reports a spec that rebuilds it exactly."""
        values = make_seasonal_series(PERIOD * 7, PERIOD, seed=33)["values"]
        original = StreamingPipeline(
            OneShotSTL(PERIOD, shift_window=0), anomaly_threshold=4.0
        )
        spec = original.spec
        assert spec is not None
        rebuilt = build(spec)
        original.initialize(values[:INIT])
        rebuilt.initialize(values[:INIT])
        assert original.process_many(values[INIT:]) == rebuilt.process_many(
            values[INIT:]
        )

    def test_spec_is_none_for_unportable_configuration(self):
        from repro.decomposition import STL

        custom_initializer = StreamingPipeline(
            OneShotSTL(PERIOD, initializer=STL(PERIOD, seasonal_window="periodic"))
        )
        assert custom_initializer.spec is None

    def test_spec_of_unregistered_component_is_none(self):
        class Anonymous:
            def get_params(self):
                return {}

        assert spec_of(Anonymous()) is None


class TestEngineSpecNative:
    def test_from_spec_and_spec_property(self):
        spec = EngineSpec(
            pipeline=PipelineSpec(
                DecomposerSpec("oneshotstl", {"period": PERIOD, "shift_window": 0})
            ),
            initialization_length=INIT,
        )
        engine = MultiSeriesEngine.from_spec(spec)
        assert engine.spec == spec
        assert engine.initialization_length == INIT

    def test_per_key_overrides_select_pipeline(self):
        spec = EngineSpec(
            pipeline=PipelineSpec(
                DecomposerSpec("oneshotstl", {"period": PERIOD, "shift_window": 0})
            ),
            initialization_length=INIT,
            overrides={
                "legacy": PipelineSpec(DecomposerSpec("online_stl", {"period": PERIOD}))
            },
        )
        engine = MultiSeriesEngine.from_spec(spec)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=34)["values"]
        for value in values:
            engine.process("legacy", float(value))
            engine.process("modern", float(value))
        assert type(engine._series["legacy"].pipeline.decomposer) is OnlineSTL
        assert type(engine._series["modern"].pipeline.decomposer) is OneShotSTL

    def test_override_engine_matches_hand_run_pipelines(self):
        """Heterogeneous fleets in one engine equal independent pipelines."""
        values = make_seasonal_series(PERIOD * 7, PERIOD, seed=35)["values"]
        spec = EngineSpec(
            pipeline=PipelineSpec(
                DecomposerSpec("oneshotstl", {"period": PERIOD, "shift_window": 0})
            ),
            initialization_length=INIT,
            overrides={
                "legacy": PipelineSpec(DecomposerSpec("online_stl", {"period": PERIOD}))
            },
        )
        engine = MultiSeriesEngine.from_spec(spec)
        engine_records = {"legacy": [], "modern": []}
        for value in values:
            for key in engine_records:
                record = engine.process(key, float(value))
                if record.status == "live":
                    engine_records[key].append(record.record)
        for key in engine_records:
            pipeline = spec.pipeline_for(key).build()
            pipeline.initialize(values[:INIT])
            assert engine_records[key] == pipeline.process_many(values[INIT:])

    def test_for_oneshotstl_is_spec_built(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        assert engine.spec is not None
        assert engine.spec.pipeline.decomposer.name == "oneshotstl"
        assert engine.spec.pipeline.decomposer.params["shift_window"] == 0

    def test_factory_constructor_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="EngineSpec"):
            MultiSeriesEngine(
                lambda key: StreamingPipeline(OneShotSTL(PERIOD, shift_window=0)),
                initialization_length=INIT,
            )

    def test_spec_and_factory_are_mutually_exclusive(self):
        spec = EngineSpec(
            pipeline=PipelineSpec(DecomposerSpec("oneshotstl", {"period": PERIOD})),
            initialization_length=INIT,
        )
        with pytest.raises(ValueError, match="not both"):
            MultiSeriesEngine(
                lambda key: None, initialization_length=INIT, spec=spec
            )
        # Every non-spec setting is owned by the spec -- no silent ignores.
        with pytest.raises(ValueError, match="not both"):
            MultiSeriesEngine(latency_window=64, spec=spec)
        with pytest.raises(ValueError, match="not both"):
            MultiSeriesEngine(track_latency=False, spec=spec)
        with pytest.raises(TypeError, match="requires either"):
            MultiSeriesEngine()
