"""Tests for the decomposition baselines (STL, RobustSTL, OnlineSTL, windowed)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    STL,
    OnlineRobustSTL,
    OnlineSTL,
    RobustSTL,
    WindowRobustSTL,
    WindowSTL,
    bilateral_filter,
    l1_trend_filter,
    loess_smooth,
    moving_average,
    tricube_weights,
)
from repro.decomposition.stl import next_odd

from tests.conftest import make_seasonal_series


class TestLoess:
    def test_tricube_weights_shape_and_range(self):
        distances = np.linspace(-2, 2, 101)
        weights = tricube_weights(distances)
        assert np.all(weights >= 0)
        assert np.all(weights <= 1)
        assert weights[50] == pytest.approx(1.0)
        assert weights[0] == 0.0 and weights[-1] == 0.0

    def test_moving_average_constant_series(self):
        values = np.full(20, 3.5)
        np.testing.assert_allclose(moving_average(values, 5), np.full(16, 3.5))

    def test_moving_average_rejects_long_window(self):
        with pytest.raises(ValueError):
            moving_average(np.arange(5.0), 6)

    def test_loess_preserves_linear_signal(self):
        values = 0.5 * np.arange(100.0) + 2.0
        smoothed = loess_smooth(values, 15)
        np.testing.assert_allclose(smoothed, values, atol=1e-6)

    def test_loess_reduces_noise(self):
        rng = np.random.default_rng(0)
        signal = np.sin(np.linspace(0, 4 * np.pi, 400))
        noisy = signal + rng.normal(0, 0.3, size=400)
        smoothed = loess_smooth(noisy, 31)
        assert np.mean((smoothed - signal) ** 2) < 0.5 * np.mean((noisy - signal) ** 2)

    def test_loess_degree_zero(self):
        values = np.ones(50)
        np.testing.assert_allclose(loess_smooth(values, 9, degree=0), values)

    def test_loess_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            loess_smooth(np.arange(10.0), 5, degree=2)

    def test_loess_robustness_weights_downweight_outliers(self):
        values = np.zeros(60)
        values[30] = 50.0
        robustness = np.ones(60)
        robustness[30] = 0.0
        smoothed = loess_smooth(values, 11, robustness_weights=robustness)
        assert abs(smoothed[29]) < 1e-6

    @given(st.integers(min_value=10, max_value=200), st.integers(min_value=3, max_value=31))
    @settings(max_examples=20, deadline=None)
    def test_property_loess_degree_zero_within_input_range(self, n, window):
        rng = np.random.default_rng(n * 31 + window)
        values = rng.uniform(-5, 5, size=n)
        smoothed = loess_smooth(values, window, degree=0)
        assert smoothed.shape == values.shape
        assert np.all(np.isfinite(smoothed))
        assert smoothed.min() >= values.min() - 1e-6
        assert smoothed.max() <= values.max() + 1e-6

    @given(st.integers(min_value=10, max_value=200), st.integers(min_value=3, max_value=31))
    @settings(max_examples=20, deadline=None)
    def test_property_loess_degree_one_is_finite_and_bounded(self, n, window):
        rng = np.random.default_rng(n * 13 + window)
        values = rng.uniform(-5, 5, size=n)
        smoothed = loess_smooth(values, window, degree=1)
        assert smoothed.shape == values.shape
        assert np.all(np.isfinite(smoothed))
        # Local linear fits may overshoot at the boundaries, but never by
        # more than the full data range.
        spread = values.max() - values.min()
        assert smoothed.min() >= values.min() - spread
        assert smoothed.max() <= values.max() + spread


class TestSTL:
    def test_next_odd(self):
        assert next_odd(4) == 5
        assert next_odd(5) == 5
        assert next_odd(5.1) == 7

    def test_reconstruction_is_exact(self, small_seasonal):
        result = STL(small_seasonal["period"]).decompose(small_seasonal["values"])
        np.testing.assert_allclose(
            result.reconstruct(), small_seasonal["values"], atol=1e-9
        )

    def test_recovers_seasonal_shape(self, small_seasonal):
        result = STL(small_seasonal["period"], seasonal_window="periodic").decompose(
            small_seasonal["values"]
        )
        error = np.mean(np.abs(result.seasonal - small_seasonal["seasonal"]))
        assert error < 0.1

    def test_recovers_trend(self, small_seasonal):
        result = STL(small_seasonal["period"]).decompose(small_seasonal["values"])
        error = np.mean(np.abs(result.trend - small_seasonal["trend"]))
        assert error < 0.15

    def test_periodic_seasonal_is_strictly_periodic(self, small_seasonal):
        period = small_seasonal["period"]
        result = STL(period, seasonal_window="periodic", outer_iterations=0).decompose(
            small_seasonal["values"]
        )
        np.testing.assert_allclose(
            result.seasonal[period:], result.seasonal[:-period], atol=1e-8
        )

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            STL(24).decompose(np.arange(30.0))

    def test_rejects_bad_seasonal_window(self):
        with pytest.raises(ValueError):
            STL(24, seasonal_window="weekly")

    def test_non_multiple_length_is_handled(self):
        data = make_seasonal_series(24 * 5 + 7, 24, seed=3)
        result = STL(24).decompose(data["values"])
        assert len(result) == 24 * 5 + 7


class TestL1TrendFilter:
    def test_recovers_piecewise_linear_trend(self):
        time = np.arange(300.0)
        trend = np.where(time < 150, 0.02 * time, 3.0 - 0.01 * (time - 150))
        rng = np.random.default_rng(1)
        noisy = trend + rng.normal(0, 0.05, 300)
        estimate = l1_trend_filter(noisy, smoothness=50.0, iterations=15)
        assert np.mean(np.abs(estimate - trend)) < 0.1

    def test_l1_loss_resists_spikes(self):
        time = np.arange(200.0)
        trend = 0.01 * time
        noisy = trend.copy()
        noisy[50] += 20.0
        noisy[150] -= 20.0
        robust = l1_trend_filter(noisy, smoothness=10.0, loss="l1", iterations=15)
        plain = l1_trend_filter(noisy, smoothness=10.0, loss="l2", iterations=15)
        assert np.max(np.abs(robust - trend)) < np.max(np.abs(plain - trend))

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            l1_trend_filter(np.arange(10.0), 1.0, loss="huber")

    def test_large_smoothness_gives_nearly_linear_trend(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=150).cumsum()
        trend = l1_trend_filter(values, smoothness=1e5, iterations=10)
        curvature = np.abs(np.diff(trend, n=2))
        assert np.median(curvature) < 1e-3


class TestBilateralFilter:
    def test_preserves_level_shift(self):
        values = np.concatenate([np.zeros(50), np.full(50, 5.0)])
        smoothed = bilateral_filter(values, window=5)
        assert abs(smoothed[49]) < 0.5
        assert abs(smoothed[50] - 5.0) < 0.5

    def test_reduces_gaussian_noise(self):
        rng = np.random.default_rng(3)
        signal = np.sin(np.linspace(0, 2 * np.pi, 200))
        noisy = signal + rng.normal(0, 0.2, 200)
        smoothed = bilateral_filter(noisy, window=4, sigma_value=1.0)
        assert np.mean((smoothed - signal) ** 2) < np.mean((noisy - signal) ** 2)


class TestRobustSTL:
    def test_reconstruction_is_exact(self, small_seasonal):
        result = RobustSTL(small_seasonal["period"], iterations=4).decompose(
            small_seasonal["values"]
        )
        np.testing.assert_allclose(
            result.reconstruct(), small_seasonal["values"], atol=1e-9
        )

    def test_detects_abrupt_trend_change(self):
        data = make_seasonal_series(
            40 * 8, 40, seed=4, trend_break=40 * 4, trend_break_size=4.0, noise=0.05
        )
        result = RobustSTL(40, iterations=6).decompose(data["values"])
        before = result.trend[40 * 3 : 40 * 4 - 5].mean()
        after = result.trend[40 * 4 + 5 : 40 * 5].mean()
        assert after - before > 2.5

    def test_seasonal_component_tracks_truth(self, small_seasonal):
        result = RobustSTL(small_seasonal["period"], iterations=4).decompose(
            small_seasonal["values"]
        )
        error = np.mean(np.abs(result.seasonal - small_seasonal["seasonal"]))
        assert error < 0.25


class TestOnlineSTL:
    def test_requires_initialization(self):
        with pytest.raises(RuntimeError):
            OnlineSTL(24).update(1.0)

    def test_reconstruction_identity(self, small_seasonal):
        period = small_seasonal["period"]
        model = OnlineSTL(period)
        model.initialize(small_seasonal["values"][: 4 * period])
        for value in small_seasonal["values"][4 * period :]:
            point = model.update(float(value))
            assert point.reconstruct() == pytest.approx(point.value, abs=1e-9)

    def test_tracks_seasonal_pattern(self, small_seasonal):
        period = small_seasonal["period"]
        model = OnlineSTL(period)
        result = model.decompose(small_seasonal["values"], 4 * period)
        online = slice(4 * period, None)
        error = np.mean(np.abs(result.seasonal[online] - small_seasonal["seasonal"][online]))
        assert error < 0.3

    def test_forecast_shape(self, small_seasonal):
        period = small_seasonal["period"]
        model = OnlineSTL(period)
        model.initialize(small_seasonal["values"][: 4 * period])
        model.update(float(small_seasonal["values"][4 * period]))
        assert model.forecast(10).shape == (10,)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            OnlineSTL(24, smoothing=1.5)
        with pytest.raises(ValueError):
            OnlineSTL(24, smoothing=0.0)


class TestWindowedDecomposers:
    def test_window_stl_matches_batch_on_last_point(self, small_seasonal):
        period = small_seasonal["period"]
        values = small_seasonal["values"]
        model = WindowSTL(period, window_periods=4)
        model.initialize(values[: 4 * period])
        point = model.update(float(values[4 * period]))
        window = np.concatenate([values[1 : 4 * period], values[4 * period : 4 * period + 1]])
        batch = STL(period).decompose(window)
        assert point.trend == pytest.approx(batch.trend[-1], abs=1e-9)
        assert point.seasonal == pytest.approx(batch.seasonal[-1], abs=1e-9)

    def test_stride_amortizes_recomputation(self, small_seasonal):
        period = small_seasonal["period"]
        values = small_seasonal["values"]
        model = WindowSTL(period, window_periods=4, recompute_stride=8)
        model.initialize(values[: 4 * period])
        for value in values[4 * period : 4 * period + 16]:
            point = model.update(float(value))
            assert np.isfinite(point.trend)

    def test_window_robust_stl_runs(self):
        data = make_seasonal_series(30 * 5, 30, seed=6)
        model = WindowRobustSTL(30, window_periods=3, recompute_stride=10, iterations=3)
        result = model.decompose(data["values"], 30 * 3)
        np.testing.assert_allclose(result.reconstruct(), data["values"], atol=1e-8)

    def test_online_robust_stl_runs(self):
        data = make_seasonal_series(30 * 5, 30, seed=7)
        model = OnlineRobustSTL(30, recompute_stride=10, iterations=3)
        result = model.decompose(data["values"], 30 * 3)
        assert len(result) == 30 * 5

    def test_requires_initialization(self):
        with pytest.raises(RuntimeError):
            WindowSTL(24).update(0.0)
