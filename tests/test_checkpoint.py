"""Durability tests for the engine's portable versioned checkpoints.

The contract under test: ``save(path)`` writes everything needed --
format version, declarative engine spec, per-series state -- so that
``MultiSeriesEngine.load(path)`` in a *fresh* context (nothing shared with
the original engine) continues the stream bit-identically to the
uninterrupted run.  This is the interface the sharding router and the
periodicity-drift rebuild are specified against.
"""

import pickle

import numpy as np
import pytest

from repro.specs import DecomposerSpec, EngineSpec, PipelineSpec
from repro.streaming import (
    CHECKPOINT_FORMAT_VERSION,
    MultiSeriesEngine,
    SeriesStatus,
    StreamingPipeline,
)
from repro.core import OneShotSTL

from tests.conftest import make_seasonal_series

PERIOD = 24
INIT = 4 * PERIOD


def make_fleet_data(n_series, length=PERIOD * 8):
    return {
        f"host-{index}": make_seasonal_series(length, PERIOD, seed=300 + index)[
            "values"
        ]
        for index in range(n_series)
    }


def interleaved_batches(data):
    length = len(next(iter(data.values())))
    for position in range(length):
        yield [(key, values[position]) for key, values in data.items()]


def heterogeneous_spec():
    return EngineSpec(
        pipeline=PipelineSpec(
            DecomposerSpec("oneshotstl", {"period": PERIOD, "shift_window": 0})
        ),
        initialization_length=INIT,
        overrides={
            "host-1": PipelineSpec(DecomposerSpec("online_stl", {"period": PERIOD}))
        },
    )


class TestSaveLoadDurability:
    def test_fresh_engine_continues_bit_identically(self, tmp_path):
        """Save mid-stream, reload into a fresh engine, diff the two tails."""
        data = make_fleet_data(3)
        engine = MultiSeriesEngine.from_spec(heterogeneous_spec())
        batches = list(interleaved_batches(data))
        cut = PERIOD * 6
        for batch in batches[:cut]:
            engine.ingest(batch)

        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        uninterrupted = [engine.ingest(batch) for batch in batches[cut:]]
        restored_engine = MultiSeriesEngine.load(path)
        restored = [restored_engine.ingest(batch) for batch in batches[cut:]]

        for expected_batch, actual_batch in zip(uninterrupted, restored):
            assert [r.record for r in expected_batch] == [
                r.record for r in actual_batch
            ]
            assert [r.status for r in expected_batch] == [
                r.status for r in actual_batch
            ]

    def test_restored_engine_carries_spec_and_stats(self, tmp_path):
        data = make_fleet_data(2)
        spec = heterogeneous_spec()
        engine = MultiSeriesEngine.from_spec(spec)
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        assert restored.spec == spec
        original_stats = engine.fleet_stats()
        restored_stats = restored.fleet_stats()
        assert restored_stats.points_total == original_stats.points_total
        assert restored_stats.anomalies_total == original_stats.anomalies_total
        assert restored.keys() == engine.keys()
        # The override survived the round trip through plain data.
        assert (
            type(restored._series["host-1"].pipeline.decomposer).__name__
            == "OnlineSTL"
        )

    def test_restored_engine_accepts_new_keys(self, tmp_path):
        """The embedded spec must keep lazily creating series after load."""
        data = make_fleet_data(1, length=PERIOD * 6)
        engine = MultiSeriesEngine.from_spec(heterogeneous_spec())
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=41)["values"]
        statuses = [
            restored.process("brand-new", float(value)).status for value in values
        ]
        assert statuses[:INIT] == [SeriesStatus.WARMING] * INIT
        assert statuses[-1] == SeriesStatus.LIVE

    def test_warming_series_survive_the_round_trip(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=42)["values"]
        half_window = INIT // 2
        for value in values[:half_window]:
            engine.process("m", float(value))
        path = tmp_path / "warming.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        assert restored.series_stats("m").status == SeriesStatus.WARMING
        statuses = [
            restored.process("m", float(value)).status
            for value in values[half_window:]
        ]
        assert statuses[INIT - half_window - 1] == SeriesStatus.WARMING
        assert statuses[-1] == SeriesStatus.LIVE

    def test_save_is_isolated_from_later_ingest(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=43)["values"]
        for value in values:
            engine.process("m", float(value))
        path = tmp_path / "frozen.ckpt"
        engine.save(path)
        points_at_save = engine.series_stats("m").points
        engine.process("m", 1.0)

        restored = MultiSeriesEngine.load(path)
        assert restored.series_stats("m").points == points_at_save


class TestCheckpointValidation:
    def test_format_version_mismatch_rejected(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=44)["values"]
        for value in values:
            engine.process("m", float(value))
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        with open(path, "rb") as stream:
            payload = pickle.load(stream)
        payload["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        with open(path, "wb") as stream:
            pickle.dump(payload, stream)

        with pytest.raises(ValueError, match="format_version"):
            MultiSeriesEngine.load(path)

    def test_payload_without_version_rejected(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        with open(path, "wb") as stream:
            pickle.dump({"series": {}}, stream)
        with pytest.raises(ValueError, match="format_version"):
            MultiSeriesEngine.load(path)

    def test_malformed_series_section_rejected(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)
        with open(path, "rb") as stream:
            payload = pickle.load(stream)
        payload["series"] = {"m": "not-a-series-state"}
        with open(path, "wb") as stream:
            pickle.dump(payload, stream)
        with pytest.raises(ValueError, match="malformed"):
            MultiSeriesEngine.load(path)

    def test_factory_built_engine_cannot_save(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            engine = MultiSeriesEngine(
                lambda key: StreamingPipeline(OneShotSTL(PERIOD, shift_window=0)),
                initialization_length=INIT,
            )
        with pytest.raises(ValueError, match="spec-built"):
            engine.save(tmp_path / "nope.ckpt")


class TestSeriesStatusEnum:
    def test_string_valued_for_backward_compat(self):
        assert SeriesStatus.WARMING == "warming"
        assert SeriesStatus.LIVE == "live"
        assert SeriesStatus("warming") is SeriesStatus.WARMING

    def test_engine_reports_enum_statuses(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        record = engine.process("m", 1.0)
        assert record.status is SeriesStatus.WARMING
        assert isinstance(engine.series_stats("m").status, SeriesStatus)
