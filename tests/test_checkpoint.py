"""Durability tests for the engine's checkpoints and durable sessions.

Two contracts under test:

* the portable one-file checkpoint: ``save(path)`` writes everything
  needed -- format version, declarative engine spec, per-series state --
  so that ``MultiSeriesEngine.load(path)`` in a *fresh* context (nothing
  shared with the original engine) continues the stream bit-identically
  to the uninterrupted run;
* the durable session: ``MultiSeriesEngine.open(store, spec=...)`` +
  write-ahead log + incremental ``checkpoint()``.  The recovery oracle
  (``TestDurabilityOracle``) kills the engine at injected crash points
  around WAL appends, segment writes and the manifest swap, and asserts
  that reopening the store recovers a state bit-identical to a fresh
  engine fed exactly the surviving WAL prefix.

This is the interface the sharding router and the periodicity-drift
rebuild are specified against.
"""

import pickle

import numpy as np
import pytest

from repro.durability import (
    CorruptCheckpointError,
    DirectoryCheckpointStore,
)
from repro.specs import DecomposerSpec, EngineSpec, PipelineSpec
from repro.streaming import (
    CHECKPOINT_FORMAT_VERSION,
    MultiSeriesEngine,
    SeriesStatus,
    StreamingPipeline,
)
from repro.core import OneShotSTL

from tests.conftest import PathLikeWrapper, SimulatedCrash, make_seasonal_series

PERIOD = 24
INIT = 4 * PERIOD


def make_fleet_data(n_series, length=PERIOD * 8):
    return {
        f"host-{index}": make_seasonal_series(length, PERIOD, seed=300 + index)[
            "values"
        ]
        for index in range(n_series)
    }


def interleaved_batches(data):
    length = len(next(iter(data.values())))
    for position in range(length):
        yield [(key, values[position]) for key, values in data.items()]


def heterogeneous_spec():
    return EngineSpec(
        pipeline=PipelineSpec(
            DecomposerSpec("oneshotstl", {"period": PERIOD, "shift_window": 0})
        ),
        initialization_length=INIT,
        overrides={
            "host-1": PipelineSpec(DecomposerSpec("online_stl", {"period": PERIOD}))
        },
    )


class TestSaveLoadDurability:
    def test_fresh_engine_continues_bit_identically(self, tmp_path):
        """Save mid-stream, reload into a fresh engine, diff the two tails."""
        data = make_fleet_data(3)
        engine = MultiSeriesEngine.from_spec(heterogeneous_spec())
        batches = list(interleaved_batches(data))
        cut = PERIOD * 6
        for batch in batches[:cut]:
            engine.ingest(batch)

        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        uninterrupted = [engine.ingest(batch) for batch in batches[cut:]]
        restored_engine = MultiSeriesEngine.load(path)
        restored = [restored_engine.ingest(batch) for batch in batches[cut:]]

        for expected_batch, actual_batch in zip(uninterrupted, restored):
            assert [r.record for r in expected_batch] == [
                r.record for r in actual_batch
            ]
            assert [r.status for r in expected_batch] == [
                r.status for r in actual_batch
            ]

    def test_restored_engine_carries_spec_and_stats(self, tmp_path):
        data = make_fleet_data(2)
        spec = heterogeneous_spec()
        engine = MultiSeriesEngine.from_spec(spec)
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        assert restored.spec == spec
        original_stats = engine.fleet_stats()
        restored_stats = restored.fleet_stats()
        assert restored_stats.points_total == original_stats.points_total
        assert restored_stats.anomalies_total == original_stats.anomalies_total
        assert restored.keys() == engine.keys()
        # The override survived the round trip through plain data.
        assert (
            type(restored._series["host-1"].pipeline.decomposer).__name__
            == "OnlineSTL"
        )

    def test_restored_engine_accepts_new_keys(self, tmp_path):
        """The embedded spec must keep lazily creating series after load."""
        data = make_fleet_data(1, length=PERIOD * 6)
        engine = MultiSeriesEngine.from_spec(heterogeneous_spec())
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=41)["values"]
        statuses = [
            restored.process("brand-new", float(value)).status for value in values
        ]
        assert statuses[:INIT] == [SeriesStatus.WARMING] * INIT
        assert statuses[-1] == SeriesStatus.LIVE

    def test_warming_series_survive_the_round_trip(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=42)["values"]
        half_window = INIT // 2
        for value in values[:half_window]:
            engine.process("m", float(value))
        path = tmp_path / "warming.ckpt"
        engine.save(path)

        restored = MultiSeriesEngine.load(path)
        assert restored.series_stats("m").status == SeriesStatus.WARMING
        statuses = [
            restored.process("m", float(value)).status
            for value in values[half_window:]
        ]
        assert statuses[INIT - half_window - 1] == SeriesStatus.WARMING
        assert statuses[-1] == SeriesStatus.LIVE

    def test_save_is_isolated_from_later_ingest(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=43)["values"]
        for value in values:
            engine.process("m", float(value))
        path = tmp_path / "frozen.ckpt"
        engine.save(path)
        points_at_save = engine.series_stats("m").points
        engine.process("m", 1.0)

        restored = MultiSeriesEngine.load(path)
        assert restored.series_stats("m").points == points_at_save


class TestCheckpointValidation:
    def test_format_version_mismatch_rejected(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=44)["values"]
        for value in values:
            engine.process("m", float(value))
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        with open(path, "rb") as stream:
            payload = pickle.load(stream)
        payload["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        with open(path, "wb") as stream:
            pickle.dump(payload, stream)

        with pytest.raises(ValueError, match="format_version"):
            MultiSeriesEngine.load(path)

    def test_payload_without_version_rejected(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        with open(path, "wb") as stream:
            pickle.dump({"series": {}}, stream)
        with pytest.raises(ValueError, match="format_version"):
            MultiSeriesEngine.load(path)

    def test_malformed_series_section_rejected(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)
        with open(path, "rb") as stream:
            payload = pickle.load(stream)
        payload["series"] = {"m": "not-a-series-state"}
        with open(path, "wb") as stream:
            pickle.dump(payload, stream)
        with pytest.raises(ValueError, match="malformed"):
            MultiSeriesEngine.load(path)

    def test_factory_built_engine_cannot_save(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            engine = MultiSeriesEngine(
                lambda key: StreamingPipeline(OneShotSTL(PERIOD, shift_window=0)),
                initialization_length=INIT,
            )
        with pytest.raises(ValueError, match="spec-built"):
            engine.save(tmp_path / "nope.ckpt")


def uniform_spec():
    """One spec for every series, so the fleet kernel engages."""
    return EngineSpec(
        pipeline=PipelineSpec(DecomposerSpec("oneshotstl", {"period": PERIOD})),
        initialization_length=INIT,
    )


def _arm(store, point):
    """Make the next occurrence of kill-point ``point`` crash the store."""

    def hook(name):
        if name == point:
            store.fault_hook = None
            raise SimulatedCrash(point)

    store.fault_hook = hook


def _assert_continues_identically(recovered, oracle, batches):
    """Feed both engines the same tail and require bit-identical outputs."""
    assert recovered.fleet_stats().points_total == oracle.fleet_stats().points_total
    for batch in batches:
        expected = oracle.ingest(batch)
        actual = recovered.ingest(batch)
        assert [r.record for r in actual] == [r.record for r in expected]
        assert [r.status for r in actual] == [r.status for r in expected]


class TestDurableSession:
    def test_open_empty_store_requires_spec(self, tmp_path):
        with pytest.raises(ValueError, match="spec"):
            MultiSeriesEngine.open(tmp_path / "store")

    def test_crash_before_first_checkpoint_recovers_from_wal_alone(
        self, tmp_path
    ):
        """The WAL covers everything since open(): no checkpoint() needed."""
        data = make_fleet_data(10)
        batches = list(interleaved_batches(data))
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        cut = PERIOD * 6
        for batch in batches[:cut]:
            engine.ingest(batch)
        # Simulated crash: the engine is abandoned without close().
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches[:cut]:
            oracle.ingest(batch)
        _assert_continues_identically(recovered, oracle, batches[cut:])

    def test_checkpoint_plus_wal_tail_recovers_bit_identically(self, tmp_path):
        data = make_fleet_data(10)
        batches = list(interleaved_batches(data))
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        checkpoint_at, crash_at = PERIOD * 5, PERIOD * 6
        for batch in batches[:checkpoint_at]:
            engine.ingest(batch)
        engine.checkpoint()
        for batch in batches[checkpoint_at:crash_at]:
            engine.ingest(batch)

        recovered = MultiSeriesEngine.open(tmp_path / "store")
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches[:crash_at]:
            oracle.ingest(batch)
        _assert_continues_identically(recovered, oracle, batches[crash_at:])

    def test_columnar_grid_ingest_recovers_bit_identically(self, tmp_path):
        """Dict-grid batches are WAL-logged in columnar form and replayed."""
        data = make_fleet_data(10)
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        cut = PERIOD * 6
        engine.ingest({key: values[:cut] for key, values in data.items()})
        engine.checkpoint()
        engine.ingest(
            {key: values[cut : cut + 12] for key, values in data.items()}
        )
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        oracle.ingest({key: values[: cut + 12] for key, values in data.items()})
        tail = list(interleaved_batches(data))[cut + 12 :]
        _assert_continues_identically(recovered, oracle, tail)

    def test_single_key_process_is_journaled(self, tmp_path):
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=7)["values"]
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        for value in values[: PERIOD * 5]:
            engine.process("m", float(value))
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for value in values[: PERIOD * 5]:
            oracle.process("m", float(value))
        tail = [[("m", float(value))] for value in values[PERIOD * 5 :]]
        _assert_continues_identically(recovered, oracle, tail)

    def test_incremental_checkpoint_writes_only_dirty_cohorts(self, tmp_path):
        data = make_fleet_data(12, length=PERIOD * 6)
        batches = list(interleaved_batches(data))
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        engine.checkpoint_cohort_size = 4  # 12 series -> 3 cohorts
        for batch in batches:
            engine.ingest(batch)
        full = engine.checkpoint()
        assert full.cohorts_total == 3
        assert full.cohorts_written == 3
        assert full.series_written == 12

        idle = engine.checkpoint()
        assert idle.cohorts_written == 0
        assert idle.series_written == 0

        # Touch only the first cohort's series (first four keys seen).
        dirty_keys = list(data)[:4]
        for _ in range(3):
            engine.ingest([(key, 0.5) for key in dirty_keys])
        incremental = engine.checkpoint()
        assert incremental.cohorts_written == 1
        assert incremental.series_written == 4

        # The clean cohorts' segment files survive untouched (their names
        # still carry the full checkpoint's generation).
        store = DirectoryCheckpointStore(tmp_path / "store")
        manifest = store.read_manifest()
        generations = sorted(
            int(cohort["segment"].split("-")[1]) for cohort in manifest["cohorts"]
        )
        assert generations == [full.generation, full.generation,
                               incremental.generation]

        # And recovery from the mixed-generation manifest still continues
        # the stream bit-identically.
        recovered = MultiSeriesEngine.open(store)
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches:
            oracle.ingest(batch)
        for _ in range(3):
            oracle.ingest([(key, 0.5) for key in dirty_keys])
        _assert_continues_identically(
            recovered, oracle, [[(key, 1.0) for key in data] for _ in range(6)]
        )

    def test_marker_survives_failed_initialization_window(self, tmp_path):
        """A discarded first window must not let a marker alias later.

        When ``initialize()`` fails, the warmup window is discarded but
        the series' ``points`` counter keeps the discarded values, so the
        old index-based marker for kernel-absorbed series could collide
        with a stale points-based marker taken on the scalar path --
        making a dirty cohort look clean and silently truncating its WAL
        coverage.  The uniform points-basis marker cannot alias.
        """
        data = make_fleet_data(10, length=PERIOD * 16)
        batches = list(interleaved_batches(data))
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        engine.checkpoint_cohort_size = 1  # isolate the aliasing series
        engine.fleet_kernel_enabled = False  # scalar path first

        for batch in batches[: INIT - 1]:
            engine.ingest(batch)
        # Make the first key's batch initialization fail once: its window
        # is discarded, points keeps counting, _index restarts later.
        state = engine._series[list(data)[0]]
        original_initialize = state.pipeline.initialize
        state.pipeline.initialize = lambda window: (_ for _ in ()).throw(
            ValueError("injected bad window")
        )
        with pytest.raises(ValueError, match="bad window"):
            engine.ingest(batches[INIT - 1])
        state.pipeline.initialize = original_initialize

        cut = 2 * INIT + PERIOD  # everything live (first key re-warmed)
        for batch in batches[INIT:cut]:
            engine.ingest(batch)
        assert all(s.live for s in engine._series.values())
        engine.checkpoint()  # markers taken on the scalar path

        # Kernel path on: absorption switches the per-series representation,
        # then exactly INIT more rounds land on the old aliasing offset.
        engine.fleet_kernel_enabled = True
        for batch in batches[cut : cut + INIT]:
            engine.ingest(batch)
        summary = engine.checkpoint()
        assert summary.cohorts_written == summary.cohorts_total == 10

    def test_context_manager_checkpoints_on_clean_exit(self, tmp_path):
        data = make_fleet_data(3)
        batches = list(interleaved_batches(data))
        with MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec()) as engine:
            for batch in batches[: PERIOD * 5]:
                engine.ingest(batch)
        store = DirectoryCheckpointStore(tmp_path / "store")
        manifest = store.read_manifest()
        assert manifest["generation"] == 1
        # Clean close leaves an empty WAL chain: everything lives in
        # segments (the manifest's wal entry is the ordered chain).
        assert isinstance(manifest["wal"], list)
        for name in manifest["wal"]:
            assert list(store.wal_records(name)) == []
        recovered = MultiSeriesEngine.open(store)
        assert recovered.fleet_stats().points_total == PERIOD * 5 * 3

    def test_spec_mismatch_on_recovery_is_rejected(self, tmp_path):
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        engine.close()
        other = EngineSpec(
            pipeline=PipelineSpec(
                DecomposerSpec("oneshotstl", {"period": PERIOD + 1})
            ),
            initialization_length=INIT,
        )
        with pytest.raises(ValueError, match="different EngineSpec"):
            MultiSeriesEngine.open(tmp_path / "store", spec=other)
        # The matching spec (or none at all) is fine.
        MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec()).close()

    def test_attach_store_rejects_populated_store(self, tmp_path):
        MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec()).close()
        engine = MultiSeriesEngine.from_spec(uniform_spec())
        with pytest.raises(ValueError, match="already holds a session"):
            engine.attach_store(tmp_path / "store")

    def test_attach_store_persists_existing_series(self, tmp_path):
        """attach_store checkpoints pre-existing state by default."""
        data = make_fleet_data(3)
        engine = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        engine.attach_store(tmp_path / "store")
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        assert recovered.keys() == engine.keys()
        assert (
            recovered.fleet_stats().points_total
            == engine.fleet_stats().points_total
        )

    def test_reattach_to_fresh_store_writes_full_segments(self, tmp_path):
        """A second store must not inherit segment references from the first.

        Cohorts untouched since the first store's checkpoint are still
        "clean" by marker, but their segments live in the *old* store --
        re-attaching must rewrite everything into the new one.
        """
        data = make_fleet_data(3)
        engine = MultiSeriesEngine.open(tmp_path / "store-a", spec=uniform_spec())
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        engine.close()  # checkpoints into store-a

        engine.attach_store(tmp_path / "store-b")  # nothing ingested since
        engine.close()
        recovered = MultiSeriesEngine.open(tmp_path / "store-b")
        assert (
            recovered.fleet_stats().points_total
            == engine.fleet_stats().points_total
        )

    def test_second_crash_after_torn_append_loses_nothing_replayed(
        self, tmp_path
    ):
        """Recovery must truncate a torn WAL tail before appending.

        Otherwise records appended after the torn bytes sit beyond the
        readable prefix and a *second* crash silently drops them.
        """
        data = make_fleet_data(10)
        batches = list(interleaved_batches(data))
        store = DirectoryCheckpointStore(tmp_path / "store")
        engine = MultiSeriesEngine.open(store, spec=uniform_spec())
        kill_at = PERIOD * 5
        for batch in batches[:kill_at]:
            engine.ingest(batch)
        _arm(store, "wal.append.torn")
        with pytest.raises(SimulatedCrash):
            engine.ingest(batches[kill_at])

        survivor = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path / "store")
        )
        extra = PERIOD
        for batch in batches[kill_at + 1 : kill_at + 1 + extra]:
            survivor.ingest(batch)
        del survivor  # second crash, again without checkpoint or close

        recovered = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path / "store")
        )
        assert (
            recovered.fleet_stats().points_total == (kill_at + extra) * 10
        )

    def test_restore_raises_inside_a_durable_session(self, tmp_path):
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        checkpoint = engine.snapshot()
        with pytest.raises(RuntimeError, match="write-ahead log"):
            engine.restore(checkpoint)
        engine.close()
        engine.restore(checkpoint)  # fine once the session is closed

    def test_auto_checkpoint_interval(self, tmp_path):
        data = make_fleet_data(3)
        batches = list(interleaved_batches(data))
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        engine.checkpoint_interval = 5
        for batch in batches[:12]:
            engine.ingest(batch)
        # 12 WAL records with a 5-record interval: checkpointed at least twice,
        # without any explicit checkpoint() call.
        store = DirectoryCheckpointStore(tmp_path / "store")
        assert store.read_manifest()["generation"] >= 2

    def test_replay_does_not_fabricate_latency_stats(self, tmp_path):
        """WAL replay must not feed replay timings into the latency rings."""
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=9)["values"]
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        for value in values:
            engine.process("m", float(value))
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        assert recovered.series_stats("m").latency is None
        # Real post-recovery ingest records latencies again.
        recovered.process("m", float(values[0]))
        assert recovered.series_stats("m").latency is not None

    def test_open_accepts_pathlike(self, tmp_path):
        engine = MultiSeriesEngine.open(
            PathLikeWrapper(tmp_path / "store"), spec=uniform_spec()
        )
        engine.process("m", 1.0)
        engine.close()
        recovered = MultiSeriesEngine.open(PathLikeWrapper(tmp_path / "store"))
        assert recovered.keys() == ["m"]


class TestDurabilityOracle:
    """Kill-point injection: recovery equals replaying the surviving prefix.

    Each scenario kills the engine at one injected crash window (via the
    store's fault hook), reopens the store in a fresh context, and
    compares against an oracle engine fed exactly the batches that were
    durably recorded before the kill -- then streams both forward and
    requires bit-identical records throughout.
    """

    WAL_POINTS = ["wal.append.before", "wal.append.torn", "wal.append.after"]
    CHECKPOINT_POINTS = [
        "segment.write.before",
        "segment.write.tmp",
        "manifest.swap.before",
        "manifest.swap.tmp",
        "manifest.swap.after",
    ]

    def _scenario(self, tmp_path):
        data = make_fleet_data(10)
        batches = list(interleaved_batches(data))
        store = DirectoryCheckpointStore(tmp_path / "store")
        engine = MultiSeriesEngine.open(store, spec=uniform_spec())
        return store, engine, batches

    @pytest.mark.parametrize("point", WAL_POINTS)
    def test_kill_during_wal_append(self, tmp_path, point):
        store, engine, batches = self._scenario(tmp_path)
        checkpoint_at, kill_at = PERIOD * 5, PERIOD * 6
        for batch in batches[:checkpoint_at]:
            engine.ingest(batch)
        engine.checkpoint()
        for batch in batches[checkpoint_at:kill_at]:
            engine.ingest(batch)
        _arm(store, point)
        with pytest.raises(SimulatedCrash):
            engine.ingest(batches[kill_at])

        # A record is durable once fully appended: the batch survives the
        # crash only if the kill hit *after* the append completed.
        survived = kill_at + (1 if point == "wal.append.after" else 0)
        recovered = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path / "store")
        )
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches[:survived]:
            oracle.ingest(batch)
        _assert_continues_identically(recovered, oracle, batches[kill_at + 1 :])

    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_kill_during_checkpoint(self, tmp_path, point):
        store, engine, batches = self._scenario(tmp_path)
        first_checkpoint_at, kill_at = PERIOD * 5, PERIOD * 6
        for batch in batches[:first_checkpoint_at]:
            engine.ingest(batch)
        engine.checkpoint()
        for batch in batches[first_checkpoint_at:kill_at]:
            engine.ingest(batch)
        _arm(store, point)
        with pytest.raises(SimulatedCrash):
            engine.checkpoint()

        # Whether the interrupted checkpoint committed (manifest swapped)
        # or not (previous manifest + full WAL), the recovered state must
        # equal everything ingested before the kill.
        recovered = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path / "store")
        )
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches[:kill_at]:
            oracle.ingest(batch)
        _assert_continues_identically(recovered, oracle, batches[kill_at:])


class TestV1Migration:
    def test_v1_checkpoint_loads_and_continues_bit_identically(self, tmp_path):
        data = make_fleet_data(3)
        batches = list(interleaved_batches(data))
        engine = MultiSeriesEngine.from_spec(heterogeneous_spec())
        cut = PERIOD * 6
        for batch in batches[:cut]:
            engine.ingest(batch)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)

        # Rewrite the file as a version-1 checkpoint (the pre-durability
        # format had no generation field).
        with open(path, "rb") as stream:
            payload = pickle.load(stream)
        payload["format_version"] = 1
        payload.pop("generation")
        with open(path, "wb") as stream:
            pickle.dump(payload, stream)

        restored = MultiSeriesEngine.load(path)
        uninterrupted = [engine.ingest(batch) for batch in batches[cut:]]
        migrated = [restored.ingest(batch) for batch in batches[cut:]]
        for expected_batch, actual_batch in zip(uninterrupted, migrated):
            assert [r.record for r in expected_batch] == [
                r.record for r in actual_batch
            ]


class TestAtomicSaveAndErrors:
    def test_crashed_save_leaves_previous_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 6, PERIOD, seed=50)["values"]
        for value in values:
            engine.process("m", float(value))
        path = tmp_path / "fleet.ckpt"
        engine.save(path)
        points_at_save = engine.series_stats("m").points

        engine.process("m", 1.0)

        def exploding_replace(src, dst):
            raise SimulatedCrash("mid-save")

        import repro.durability.store as store_module

        monkeypatch.setattr(store_module.os, "replace", exploding_replace)
        with pytest.raises(SimulatedCrash):
            engine.save(path)
        monkeypatch.undo()

        restored = MultiSeriesEngine.load(path)
        assert restored.series_stats("m").points == points_at_save

    def test_version_mismatch_error_names_file_found_and_expected(
        self, tmp_path
    ):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        path = tmp_path / "fleet.ckpt"
        engine.save(path)
        with open(path, "rb") as stream:
            payload = pickle.load(stream)
        payload["format_version"] = CHECKPOINT_FORMAT_VERSION + 7
        with open(path, "wb") as stream:
            pickle.dump(payload, stream)
        with pytest.raises(ValueError) as error:
            MultiSeriesEngine.load(path)
        message = str(error.value)
        assert str(path) in message
        assert str(CHECKPOINT_FORMAT_VERSION + 7) in message
        assert str(CHECKPOINT_FORMAT_VERSION) in message

    def test_unreadable_checkpoint_names_the_file(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"certainly not a pickle")
        with pytest.raises(CorruptCheckpointError) as error:
            MultiSeriesEngine.load(path)
        assert str(path) in str(error.value)

    def test_save_and_load_accept_pathlike(self, tmp_path):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        values = make_seasonal_series(PERIOD * 5, PERIOD, seed=51)["values"]
        for value in values:
            engine.process("m", float(value))
        wrapped = PathLikeWrapper(tmp_path / "fleet.ckpt")
        engine.save(wrapped)
        restored = MultiSeriesEngine.load(wrapped)
        assert restored.series_stats("m").points == len(values)


class TestBatchedStateExport:
    """The cohort-granular kernel export equals the per-member path."""

    def test_sync_members_matches_sync_series(self):
        data = make_fleet_data(10, length=PERIOD * 6)
        batches = list(interleaved_batches(data))
        batched_engine = MultiSeriesEngine.from_spec(uniform_spec())
        member_engine = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches:
            batched_engine.ingest(batch)
            member_engine.ingest(batch)
        assert batched_engine._absorbed, "fleet kernel should have engaged"

        # One engine materializes via the batched export (snapshot uses
        # _sync_keys -> sync_members), the other via per-member syncs.
        for key, (group, column) in member_engine._absorbed.items():
            group.sync_series(column, member_engine._series[key])
        batched = batched_engine.snapshot()
        for key in member_engine.keys():
            expected = member_engine._series[key].pipeline
            actual = batched[key].pipeline
            assert actual._index == expected._index
            assert np.array_equal(
                actual.decomposer._seasonal_buffer,
                expected.decomposer._seasonal_buffer,
            )
            assert actual.decomposer._last_trend == expected.decomposer._last_trend
            assert actual.scorer._mean == expected.scorer._mean
            assert actual.scorer._m2 == expected.scorer._m2
            for mine, theirs in zip(
                actual.decomposer._iterations_state,
                expected.decomposer._iterations_state,
            ):
                assert mine.solver._m_trail == theirs.solver._m_trail
                assert mine.solver._bp_trail == theirs.solver._bp_trail
                assert mine.solver.size == theirs.solver.size
                assert mine.previous_trend == theirs.previous_trend


class TestSeriesStatusEnum:
    def test_string_valued_for_backward_compat(self):
        assert SeriesStatus.WARMING == "warming"
        assert SeriesStatus.LIVE == "live"
        assert SeriesStatus("warming") is SeriesStatus.WARMING

    def test_engine_reports_enum_statuses(self):
        engine = MultiSeriesEngine.for_oneshotstl(PERIOD, shift_window=0)
        record = engine.process("m", 1.0)
        assert record.status is SeriesStatus.WARMING
        assert isinstance(engine.series_stats("m").status, SeriesStatus)


class TestGroupCommitDurability:
    """ingest_many(): one group commit, crash windows lose only a suffix."""

    def _grid_batches(self, data, chunk):
        length = len(next(iter(data.values())))
        return [
            {key: values[start : start + chunk] for key, values in data.items()}
            for start in range(0, length, chunk)
        ]

    def test_ingest_many_matches_sequential_ingests(self, tmp_path):
        data = make_fleet_data(10)
        grids = self._grid_batches(data, 12)
        many = MultiSeriesEngine.open(tmp_path / "many", spec=uniform_spec())
        results = many.ingest_many(grids)
        assert len(results) == len(grids)
        loop = MultiSeriesEngine.open(tmp_path / "loop", spec=uniform_spec())
        for grid in grids:
            loop.ingest(grid)
        assert (
            many.fleet_stats().points_total == loop.fleet_stats().points_total
        )
        tail = list(interleaved_batches(make_fleet_data(10, length=PERIOD)))
        _assert_continues_identically(many, loop, tail)

    def test_ingest_many_recovers_bit_identically(self, tmp_path):
        data = make_fleet_data(10)
        grids = self._grid_batches(data, 12)
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        engine.ingest_many(grids)
        # Simulated crash: no close(), recovery replays the group commit.
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        oracle.ingest_many(grids)
        tail = list(interleaved_batches(make_fleet_data(10, length=PERIOD)))
        _assert_continues_identically(recovered, oracle, tail)

    @pytest.mark.parametrize(
        "point", ["wal.append.before", "wal.append.torn", "wal.append.after"]
    )
    def test_kill_during_group_commit(self, tmp_path, point):
        """Recovery equals an oracle fed exactly the surviving records."""
        data = make_fleet_data(10)
        grids = self._grid_batches(data, 12)
        cut = len(grids) // 2
        store = DirectoryCheckpointStore(tmp_path / "store")
        engine = MultiSeriesEngine.open(store, spec=uniform_spec())
        engine.ingest_many(grids[:cut])
        engine.checkpoint()

        def hook(name):
            if name == point:
                store.fault_hook = None
                raise SimulatedCrash(point)

        store.fault_hook = hook
        with pytest.raises(SimulatedCrash):
            engine.ingest_many(grids[cut:])

        # Count what actually survived into the log (the torn window loses
        # a mid-batch suffix; before loses all; after keeps the batch).
        fresh_store = DirectoryCheckpointStore(tmp_path / "store")
        manifest = fresh_store.read_manifest()
        survived = sum(
            1 for name in manifest["wal"] for _ in fresh_store.wal_records(name)
        )
        if point == "wal.append.before":
            assert survived == 0
        elif point == "wal.append.after":
            assert survived == len(grids) - cut
        else:
            assert survived < len(grids) - cut
        recovered = MultiSeriesEngine.open(fresh_store)
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        oracle.ingest_many(grids[:cut])
        if survived:
            oracle.ingest_many(grids[cut : cut + survived])
        tail = list(interleaved_batches(make_fleet_data(10, length=PERIOD)))
        _assert_continues_identically(recovered, oracle, tail)


class TestWalRotationRecovery:
    """Recovery replays the rotated segment chain; checkpoint prunes it."""

    def _rotating_session(self, tmp_path, **store_kwargs):
        store = DirectoryCheckpointStore(
            tmp_path / "store", wal_segment_bytes=4096, **store_kwargs
        )
        engine = MultiSeriesEngine.open(store, spec=uniform_spec())
        return store, engine

    def test_recovery_replays_the_whole_chain(self, tmp_path):
        data = make_fleet_data(10)
        store, engine = self._rotating_session(tmp_path)
        batches = list(interleaved_batches(data))
        for batch in batches:
            engine.ingest(batch)
        assert len(store.list_wals()) > 1, "rotation never triggered"
        recovered = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path / "store")
        )
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches:
            oracle.ingest(batch)
        tail = list(interleaved_batches(make_fleet_data(10, length=PERIOD)))
        _assert_continues_identically(recovered, oracle, tail)

    def test_checkpoint_prunes_sealed_segments(self, tmp_path):
        data = make_fleet_data(10)
        store, engine = self._rotating_session(tmp_path)
        for batch in interleaved_batches(data):
            engine.ingest(batch)
        assert len(store.list_wals()) > 1
        engine.checkpoint()
        # Everything lives in segments now: one fresh (empty) WAL remains.
        assert len(store.list_wals()) == 1
        recovered = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path / "store")
        )
        assert (
            recovered.fleet_stats().points_total
            == engine.fleet_stats().points_total
        )

    def test_v2_manifest_recovers(self, tmp_path):
        """A store written by a v2 build (single WAL name) still opens."""
        import json

        data = make_fleet_data(5)
        engine = MultiSeriesEngine.open(tmp_path / "store", spec=uniform_spec())
        batches = list(interleaved_batches(data))
        for batch in batches[: PERIOD * 6]:
            engine.ingest(batch)
        engine.checkpoint()
        engine.close(checkpoint=False)
        manifest_path = tmp_path / "store" / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        # Rewrite as a v2 manifest: version stamp + single WAL name.  The
        # v3 name shape differs, so point it at a legacy-shaped segment.
        (tmp_path / "store" / "wal" / "wal-00000001.log").write_bytes(b"")
        manifest["format_version"] = 2
        manifest["wal"] = "wal-00000001.log"
        manifest_path.write_text(json.dumps(manifest))
        recovered = MultiSeriesEngine.open(tmp_path / "store")
        oracle = MultiSeriesEngine.from_spec(uniform_spec())
        for batch in batches[: PERIOD * 6]:
            oracle.ingest(batch)
        _assert_continues_identically(recovered, oracle, batches[PERIOD * 6 :])
