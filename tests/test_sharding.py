"""Sharding-tier tests: hash ring, cluster spec, router, failover oracle.

Two tiers of evidence here:

* process-free unit tests of the routing math (:class:`ConsistentHashRing`
  determinism, balance, minimal remap) and the declarative cluster layer
  (:class:`ClusterSpec` round-trips and validation);
* cross-process integration tests that spawn real workers: the fan-out /
  fan-in path must be **bit-identical** to a single
  :class:`MultiSeriesEngine` fed the same batches, and the failover
  oracle SIGKILLs a worker (a real signal, at an injected durability
  boundary) and asserts the replacement recovers exactly the surviving
  WAL prefix -- ``batch_survived`` must match what the kill point implies.

Worker fleets are kept tiny (2-4 shards, dozens of series, period 8) so
the whole module stays in tier-1 time budgets.
"""

import json
import os

import numpy as np
import pytest

from repro.durability import DirectoryCheckpointStore, StoreLockedError
from repro.sharding import (
    ClusterSpec,
    ConsistentHashRing,
    ShardFailoverError,
    ShardRouter,
    ShardSpec,
    ShardingError,
    WorkerCrashError,
)
from repro.specs import EngineSpec
from repro.streaming import MultiSeriesEngine

from tests.conftest import make_seasonal_series

PERIOD = 8
INIT = 2 * PERIOD
LENGTH = PERIOD * 9

RESULT_FIELDS = (
    "index",
    "value",
    "trend",
    "seasonal",
    "residual",
    "anomaly_score",
    "is_anomaly",
    "detection_residual",
    "live",
)


def engine_spec() -> EngineSpec:
    return MultiSeriesEngine.for_oneshotstl(
        PERIOD, initialization_length=INIT, shift_window=0
    ).spec


def fleet_data(n_series: int, length: int = LENGTH) -> dict:
    return {
        f"series-{index:03d}": make_seasonal_series(
            length, PERIOD, seed=700 + index
        )["values"]
        for index in range(n_series)
    }


def slice_batch(data: dict, start: int, stop: int) -> dict:
    return {key: values[start:stop] for key, values in data.items()}


def assert_results_identical(actual, expected, context=""):
    for field in RESULT_FIELDS:
        ours, theirs = getattr(actual, field), getattr(expected, field)
        equal_nan = ours.dtype.kind == "f"  # warming rows carry NaN
        assert np.array_equal(
            ours, theirs, equal_nan=equal_nan
        ), f"{context}: field {field!r} diverged"


# --------------------------------------------------------------------------
# routing math (no processes)
# --------------------------------------------------------------------------


class TestConsistentHashRing:
    SHARDS = ["shard-000", "shard-001", "shard-002", "shard-003"]

    def test_deterministic_across_instances(self):
        """Same members, same routing -- regardless of insertion order."""
        forward = ConsistentHashRing(self.SHARDS)
        backward = ConsistentHashRing(reversed(self.SHARDS))
        keys = [f"key-{index}" for index in range(500)]
        assert [forward.shard_for(key) for key in keys] == [
            backward.shard_for(key) for key in keys
        ]

    def test_routes_into_membership(self):
        ring = ConsistentHashRing(self.SHARDS)
        assert len(ring) == 4
        for key in ("alpha", b"raw", 17, ("tuple", 1), None):
            assert ring.shard_for(key) in ring

    def test_load_is_roughly_balanced(self):
        ring = ConsistentHashRing(self.SHARDS)
        counts = {shard: 0 for shard in self.SHARDS}
        for index in range(4000):
            counts[ring.shard_for(f"metric-{index}")] += 1
        # 64 virtual nodes keep every shard within a loose factor of fair
        # share; the bound is intentionally slack -- this guards against
        # gross dispersion bugs, not statistical perfection.
        assert min(counts.values()) > 4000 / 4 / 3
        assert max(counts.values()) < 4000 / 4 * 3

    def test_add_shard_remaps_only_onto_the_new_shard(self):
        before = ConsistentHashRing(self.SHARDS)
        keys = [f"key-{index}" for index in range(1000)]
        owners = {key: before.shard_for(key) for key in keys}
        before.add_shard("shard-new")
        moved = 0
        for key in keys:
            owner = before.shard_for(key)
            if owner != owners[key]:
                assert owner == "shard-new"  # moves only land on the newcomer
                moved += 1
        assert 0 < moved < len(keys) / 2  # ~1/5 of the space, not a reshuffle

    def test_remove_shard_strands_no_keys_and_moves_only_its_own(self):
        ring = ConsistentHashRing(self.SHARDS)
        keys = [f"key-{index}" for index in range(1000)]
        owners = {key: ring.shard_for(key) for key in keys}
        ring.remove_shard("shard-001")
        for key in keys:
            owner = ring.shard_for(key)
            assert owner != "shard-001"
            if owners[key] != "shard-001":
                assert owner == owners[key]  # unaffected keys stay put

    def test_bool_and_int_keys_coincide(self):
        """``True == 1`` as dict keys, so they must share a shard."""
        ring = ConsistentHashRing(self.SHARDS)
        assert ring.shard_for(True) == ring.shard_for(1)
        assert ring.shard_for(False) == ring.shard_for(0)

    def test_assignments_partition_positions_in_order(self):
        ring = ConsistentHashRing(self.SHARDS)
        keys = [f"key-{index}" for index in range(100)]
        parts = ring.assignments(keys)
        seen = sorted(
            position for positions in parts.values() for position in positions
        )
        assert seen == list(range(100))
        for shard, positions in parts.items():
            assert positions == sorted(positions)  # input order preserved
            for position in positions:
                assert ring.shard_for(keys[position]) == shard

    def test_membership_validation(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add_shard("a")
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove_shard("b")
        with pytest.raises(ValueError, match="empty ring"):
            ConsistentHashRing([]).shard_for("x")
        with pytest.raises(ValueError, match="virtual_nodes"):
            ConsistentHashRing(["a"], virtual_nodes=0)


class TestClusterSpec:
    def test_for_root_lays_out_shards(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 4)
        assert [shard.shard_id for shard in cluster.shards] == [
            "shard-000",
            "shard-001",
            "shard-002",
            "shard-003",
        ]
        assert all(
            shard.store_path == str(tmp_path / shard.shard_id)
            for shard in cluster.shards
        )

    def test_json_round_trip(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2, virtual_nodes=16)
        clone = ClusterSpec.from_json(cluster.to_json())
        assert clone == cluster
        assert json.loads(cluster.to_json())["virtual_nodes"] == 16

    def test_duplicate_shard_ids_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate shard"):
            ClusterSpec(
                engine=engine_spec(),
                shards=(
                    ShardSpec("a", str(tmp_path / "one")),
                    ShardSpec("a", str(tmp_path / "two")),
                ),
            )

    def test_duplicate_store_paths_rejected(self, tmp_path):
        """Two workers on one store would fight over its ownership lock."""
        with pytest.raises(ValueError, match="store"):
            ClusterSpec(
                engine=engine_spec(),
                shards=(
                    ShardSpec("a", str(tmp_path / "same")),
                    ShardSpec("b", str(tmp_path / "same")),
                ),
            )

    def test_shard_lookup(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        assert cluster.shard("shard-001").store_path.endswith("shard-001")
        with pytest.raises(KeyError):
            cluster.shard("shard-042")


# --------------------------------------------------------------------------
# cross-process integration
# --------------------------------------------------------------------------


class TestShardRouterParity:
    """The sharded answer must equal the single-engine answer, bit for bit."""

    def test_columnar_ingest_matches_single_engine(self, tmp_path):
        data = fleet_data(24)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 4)
        with ShardRouter(cluster) as router:
            for start in range(0, LENGTH, PERIOD * 3):
                batch = slice_batch(data, start, start + PERIOD * 3)
                sharded = router.ingest(batch)
                expected = reference.ingest_columnar(batch)
                assert_results_identical(sharded, expected, f"batch@{start}")

            stats = router.stats()
            fleet = reference.fleet_stats()
            assert stats.series_total == fleet.series_total
            assert stats.series_live == fleet.series_live
            assert stats.points_total == fleet.points_total
            assert stats.anomalies_total == fleet.anomalies_total
            assert sorted(stats.shards) == router.shard_ids

            shard_keys = router.keys()
            union = sorted(key for keys in shard_keys.values() for key in keys)
            assert union == sorted(data)
            for shard_id, keys in shard_keys.items():
                assert all(router.shard_of(key) == shard_id for key in keys)

            for key in list(data)[:4]:
                assert np.array_equal(
                    router.forecast(key, PERIOD), reference.forecast(key, PERIOD)
                )

    def test_row_batches_and_process_match(self, tmp_path):
        data = fleet_data(8, length=PERIOD * 6)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            head = slice_batch(data, 0, PERIOD * 6 - 2)
            router.ingest(head)
            reference.ingest_columnar(head)

            keys = list(data)
            round_values = np.array([data[key][-2] for key in keys])
            sharded = router.ingest((keys, round_values))
            expected = reference.ingest_columnar((keys, round_values))
            assert_results_identical(sharded, expected, "parallel arrays")

            row_result = router.ingest(
                [(key, data[key][-1]) for key in keys]
            )
            row_expected = reference.ingest_columnar(
                [(key, data[key][-1]) for key in keys]
            )
            assert_results_identical(row_result, row_expected, "row iterable")

            probe = make_seasonal_series(1, PERIOD, seed=999)["values"][0]
            for key in keys[:4]:
                assert router.process(key, probe) == reference.process(key, probe)

    def test_restart_recovers_from_stores(self, tmp_path):
        data = fleet_data(12, length=PERIOD * 6)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        reference.ingest_columnar(data)
        with ShardRouter(cluster) as router:
            router.ingest(data)
        # A second router over the same cluster spec resumes the fleet.
        with ShardRouter(cluster) as router:
            stats = router.stats()
            assert stats.points_total == reference.fleet_stats().points_total
            for key in list(data)[:3]:
                assert np.array_equal(
                    router.forecast(key, PERIOD), reference.forecast(key, PERIOD)
                )

    def test_unknown_key_error_names_the_shard(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            with pytest.raises(KeyError, match="shard"):
                router.forecast("never-ingested", PERIOD)


class TestFailoverOracle:
    """SIGKILL a worker at a durability boundary; the replacement must
    recover exactly the surviving WAL prefix -- and the router's
    ``batch_survived`` verdict must match what the boundary implies."""

    WARM_BATCHES = 3

    @pytest.mark.parametrize(
        ("kill_point", "expect_survived"),
        [
            ("wal.append.before", False),  # death before the record exists
            ("wal.append.torn", False),  # partial record: truncated on replay
            ("wal.append.after", True),  # record durable before state moved
        ],
    )
    def test_kill_point_oracle(self, tmp_path, kill_point, expect_survived):
        data = fleet_data(24)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = ConsistentHashRing(
            [shard.shard_id for shard in cluster.shards]
        ).shard_for(next(iter(data)))
        router = ShardRouter(
            cluster,
            fault_injection={
                victim: {
                    "kill_point": kill_point,
                    "kill_after": self.WARM_BATCHES + 1,
                }
            },
        )
        try:
            step = PERIOD * 2
            for index in range(self.WARM_BATCHES):
                batch = slice_batch(data, index * step, (index + 1) * step)
                router.ingest(batch)
                reference.ingest_columnar(batch)

            tail = slice_batch(data, self.WARM_BATCHES * step, LENGTH)
            with pytest.raises(ShardFailoverError) as error:
                router.ingest(tail)
            assert error.value.shard_id == victim
            assert error.value.batch_survived is expect_survived

            # Surviving shards applied their slices; re-send only the dead
            # shard's keys when its slice missed the WAL.
            reference.ingest_columnar(tail)
            if not expect_survived:
                router.ingest(
                    {
                        key: values
                        for key, values in tail.items()
                        if router.shard_of(key) == victim
                    }
                )

            stats = router.stats()
            fleet = reference.fleet_stats()
            assert stats.points_total == fleet.points_total
            assert stats.anomalies_total == fleet.anomalies_total
            victim_key = next(
                key for key in data if router.shard_of(key) == victim
            )
            survivor_key = next(
                key for key in data if router.shard_of(key) != victim
            )
            for key in (victim_key, survivor_key):
                assert np.array_equal(
                    router.forecast(key, PERIOD), reference.forecast(key, PERIOD)
                ), f"{kill_point}: forecast diverged for {key!r}"
        finally:
            router.close(checkpoint=False)

    def test_kill_during_checkpoint_preserves_the_batch(self, tmp_path):
        """Death at the manifest swap: WAL already carries the batch."""
        data = fleet_data(16)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = cluster.shards[0].shard_id
        router = ShardRouter(
            cluster,
            checkpoint_interval=1,  # every batch checkpoints
            fault_injection={
                victim: {"kill_point": "manifest.swap.tmp", "kill_after": 3}
            },
        )
        try:
            reference = MultiSeriesEngine.from_spec(engine_spec())
            step = PERIOD * 2
            survived_verdicts = []
            for index in range(4):
                batch = slice_batch(data, index * step, (index + 1) * step)
                reference.ingest_columnar(batch)
                try:
                    router.ingest(batch)
                except ShardFailoverError as error:
                    survived_verdicts.append(error.batch_survived)
            assert survived_verdicts == [True]  # exactly one death, batch kept
            stats = router.stats()
            assert stats.points_total == reference.fleet_stats().points_total
        finally:
            router.close(checkpoint=False)

    def test_auto_recover_off_surfaces_the_crash(self, tmp_path):
        data = fleet_data(8, length=PERIOD * 4)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = cluster.shards[0].shard_id
        router = ShardRouter(
            cluster,
            auto_recover=False,
            fault_injection={
                victim: {"kill_point": "wal.append.before", "kill_after": 1}
            },
        )
        try:
            with pytest.raises(WorkerCrashError, match="auto_recover is off"):
                router.ingest(data)
            report = router.failover(victim)
            assert report.shard_id == victim
            assert report.recovered_points == 0
            # Surviving shards applied their slices before the crash
            # surfaced; only the dead shard's keys need re-sending.
            router.ingest(
                {
                    key: values
                    for key, values in data.items()
                    if router.shard_of(key) == victim
                }
            )
            assert router.stats().points_total == 8 * PERIOD * 4
        finally:
            router.close(checkpoint=False)

    def test_failover_refuses_a_live_worker(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            with pytest.raises(ShardingError, match="alive"):
                router.failover(cluster.shards[0].shard_id)


class TestElasticity:
    """Live membership changes: drain-and-adopt must not bend the stream."""

    def test_add_and_remove_shard_keep_bit_identity(self, tmp_path):
        data = fleet_data(24)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 3)
        cut = PERIOD * 6
        with ShardRouter(cluster) as router:
            head = slice_batch(data, 0, cut)
            router.ingest(head)
            reference.ingest_columnar(head)

            moved_in = router.add_shard(
                ShardSpec("shard-xyz", str(tmp_path / "xyz"))
            )
            assert moved_in > 0
            assert "shard-xyz" in router.shard_ids

            moved_out = router.remove_shard("shard-000")
            assert moved_out > 0
            assert "shard-000" not in router.shard_ids

            tail = slice_batch(data, cut, LENGTH)
            sharded = router.ingest(tail)
            expected = reference.ingest_columnar(tail)
            assert_results_identical(sharded, expected, "post-migration tail")

            stats = router.stats()
            assert stats.series_total == len(data)
            assert stats.points_total == reference.fleet_stats().points_total

    def test_remove_keeps_at_least_one_shard(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            router.remove_shard("shard-000")
            with pytest.raises(ShardingError, match="last"):
                router.remove_shard("shard-001")

    def test_add_duplicate_shard_rejected(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            with pytest.raises(ValueError):
                router.add_shard(
                    ShardSpec("shard-000", str(tmp_path / "elsewhere"))
                )


class TestStoreOwnership:
    """The exclusive lease is what makes checkpoint handoff safe."""

    def test_live_worker_store_is_locked_against_outsiders(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            store_path = cluster.shards[0].store_path
            with pytest.raises(StoreLockedError) as error:
                DirectoryCheckpointStore(store_path, exclusive=True)
            assert error.value.holder["pid"] != os.getpid()
            router.ingest(fleet_data(4, length=PERIOD * 2))  # still serving

    def test_second_router_on_same_stores_fails_to_start(self, tmp_path):
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster):
            with pytest.raises(WorkerCrashError):
                ShardRouter(cluster, spawn_timeout=30.0)

    def test_dead_worker_lease_is_taken_over_by_failover(self, tmp_path):
        data = fleet_data(8, length=PERIOD * 4)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = cluster.shards[0].shard_id
        router = ShardRouter(
            cluster,
            fault_injection={
                victim: {"kill_point": "wal.append.after", "kill_after": 2}
            },
        )
        try:
            router.ingest(slice_batch(data, 0, PERIOD * 2))
            with pytest.raises(ShardFailoverError):
                router.ingest(slice_batch(data, PERIOD * 2, PERIOD * 4))
            # The SIGKILLed worker never released its lease -- the
            # replacement must have claimed it (dead-pid staleness), and
            # the shard serves again.
            assert router.stats().points_total == 8 * PERIOD * 4
        finally:
            router.close(checkpoint=False)
