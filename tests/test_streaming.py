"""Tests for the streaming utilities (ring buffer, pipeline, latency harness)."""

import numpy as np
import pytest

from repro.core import OneShotSTL
from repro.decomposition import OnlineSTL
from repro.streaming import RingBuffer, StreamingPipeline, measure_update_latency

from tests.conftest import make_seasonal_series


class TestRingBuffer:
    def test_append_and_order(self):
        buffer = RingBuffer(3)
        buffer.extend([1.0, 2.0])
        np.testing.assert_allclose(buffer.to_array(), [1.0, 2.0])
        buffer.extend([3.0, 4.0])
        np.testing.assert_allclose(buffer.to_array(), [2.0, 3.0, 4.0])
        assert buffer.is_full
        assert buffer.latest() == 4.0
        assert len(buffer) == 3

    def test_clear(self):
        buffer = RingBuffer(2)
        buffer.append(1.0)
        buffer.clear()
        assert len(buffer) == 0
        with pytest.raises(ValueError):
            buffer.latest()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestStreamingPipeline:
    def test_pipeline_flags_injected_spike(self):
        data = make_seasonal_series(24 * 10, 24, seed=9, noise=0.05)
        values = data["values"].copy()
        spike_index = 24 * 8
        values[spike_index] += 10.0

        pipeline = StreamingPipeline(OneShotSTL(24, shift_window=0), anomaly_threshold=5.0)
        pipeline.initialize(values[: 24 * 6])
        records = pipeline.process_many(values[24 * 6 :])
        flagged = [record.index for record in records if record.is_anomaly]
        assert any(abs(index - spike_index) <= 1 for index in flagged)

    def test_pipeline_requires_initialization(self):
        pipeline = StreamingPipeline(OnlineSTL(24))
        with pytest.raises(RuntimeError):
            pipeline.process(0.0)

    def test_pipeline_forecast_delegation(self):
        data = make_seasonal_series(24 * 8, 24, seed=10)
        pipeline = StreamingPipeline(OneShotSTL(24, shift_window=0))
        pipeline.initialize(data["values"][: 24 * 6])
        pipeline.process_many(data["values"][24 * 6 :])
        assert pipeline.forecast(12).shape == (12,)

    def test_records_carry_reconstruction(self):
        data = make_seasonal_series(24 * 8, 24, seed=11)
        pipeline = StreamingPipeline(OnlineSTL(24))
        pipeline.initialize(data["values"][: 24 * 6])
        record = pipeline.process(float(data["values"][24 * 6]))
        assert record.value == pytest.approx(
            record.trend + record.seasonal + record.residual
        )


class TestLatencyHarness:
    def test_latency_report_fields(self):
        data = make_seasonal_series(24 * 8, 24, seed=12)
        report = measure_update_latency(
            OneShotSTL(24, shift_window=0, iterations=2),
            data["values"][: 24 * 5],
            data["values"][24 * 5 :],
            max_points=40,
        )
        assert report.points == 40
        assert report.mean_seconds > 0
        assert report.p99_seconds >= report.median_seconds
        row = report.as_row()
        assert set(row) == {"method", "points", "mean_us", "median_us", "p99_us", "total_s"}
        assert report.mean_microseconds == pytest.approx(report.mean_seconds * 1e6)
