"""Tests for the streaming utilities (ring buffer, pipeline, latency harness)."""

import numpy as np
import pytest

from repro.core import OneShotSTL
from repro.decomposition import OnlineSTL
from repro.decomposition.base import (
    DecompositionPoint,
    DecompositionResult,
    OnlineDecomposer,
)
from repro.streaming import (
    RingBuffer,
    StreamingPipeline,
    measure_update_latency,
    summarize_latencies,
)

from tests.conftest import make_seasonal_series


class _ShiftCorrectingStub(OnlineDecomposer):
    """Decomposer that 'explains away' every point as seasonality.

    It mimics the failure mode of a shift-correcting decomposer: the
    returned residual is always ~0 (the point was re-explained), while the
    pre-correction detection residual carries the true deviation.
    """

    period = 4

    def initialize(self, values) -> DecompositionResult:
        values = np.asarray(values, dtype=float)
        self.last_detection_residual = 0.0
        return DecompositionResult(
            observed=values,
            trend=values.copy(),
            seasonal=np.zeros_like(values),
            residual=np.zeros_like(values),
            period=self.period,
        )

    def update(self, value: float) -> DecompositionPoint:
        value = float(value)
        self.last_detection_residual = value
        return DecompositionPoint(
            value=value, trend=0.0, seasonal=value, residual=0.0
        )


class TestRingBuffer:
    def test_append_and_order(self):
        buffer = RingBuffer(3)
        buffer.extend([1.0, 2.0])
        np.testing.assert_allclose(buffer.to_array(), [1.0, 2.0])
        buffer.extend([3.0, 4.0])
        np.testing.assert_allclose(buffer.to_array(), [2.0, 3.0, 4.0])
        assert buffer.is_full
        assert buffer.latest() == 4.0
        assert len(buffer) == 3

    def test_clear(self):
        buffer = RingBuffer(2)
        buffer.append(1.0)
        buffer.clear()
        assert len(buffer) == 0
        with pytest.raises(ValueError):
            buffer.latest()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestStreamingPipeline:
    def test_pipeline_flags_injected_spike(self):
        data = make_seasonal_series(24 * 10, 24, seed=9, noise=0.05)
        values = data["values"].copy()
        spike_index = 24 * 8
        values[spike_index] += 10.0

        pipeline = StreamingPipeline(OneShotSTL(24, shift_window=0), anomaly_threshold=5.0)
        pipeline.initialize(values[: 24 * 6])
        records = pipeline.process_many(values[24 * 6 :])
        flagged = [record.index for record in records if record.is_anomaly]
        assert any(abs(index - spike_index) <= 1 for index in flagged)

    def test_pipeline_requires_initialization(self):
        pipeline = StreamingPipeline(OnlineSTL(24))
        with pytest.raises(RuntimeError):
            pipeline.process(0.0)

    def test_pipeline_forecast_delegation(self):
        data = make_seasonal_series(24 * 8, 24, seed=10)
        pipeline = StreamingPipeline(OneShotSTL(24, shift_window=0))
        pipeline.initialize(data["values"][: 24 * 6])
        pipeline.process_many(data["values"][24 * 6 :])
        assert pipeline.forecast(12).shape == (12,)

    def test_records_carry_reconstruction(self):
        data = make_seasonal_series(24 * 8, 24, seed=11)
        pipeline = StreamingPipeline(OnlineSTL(24))
        pipeline.initialize(data["values"][: 24 * 6])
        record = pipeline.process(float(data["values"][24 * 6]))
        assert record.value == pytest.approx(
            record.trend + record.seasonal + record.residual
        )

    def test_scores_detection_residual_when_exposed(self):
        """Regression: scoring point.residual let shift-corrected spikes pass.

        The stub zeroes every returned residual (as a shift search does for
        a point it re-explains) but exposes the true deviation through
        ``last_detection_residual``.  The pipeline must score the latter --
        with the old behaviour the spike below would be invisible.
        """
        pipeline = StreamingPipeline(_ShiftCorrectingStub(), anomaly_threshold=4.0)
        rng = np.random.default_rng(0)
        pipeline.initialize(np.zeros(8))
        for value in rng.normal(0.0, 1.0, size=200):
            pipeline.process(float(value))
        record = pipeline.process(50.0)
        assert record.detection_residual == pytest.approx(50.0)
        assert record.residual == 0.0
        assert record.is_anomaly
        assert record.anomaly_score > 4.0

    def test_detection_residual_defaults_to_point_residual(self):
        data = make_seasonal_series(24 * 8, 24, seed=14)
        pipeline = StreamingPipeline(OnlineSTL(24))  # no detection residual
        pipeline.initialize(data["values"][: 24 * 6])
        record = pipeline.process(float(data["values"][24 * 6]))
        assert record.detection_residual == record.residual

    def test_process_rejects_infinite_values(self):
        """Infinities must never reach the solver state."""
        data = make_seasonal_series(24 * 8, 24, seed=16)
        for decomposer in (OneShotSTL(24, shift_window=0), OnlineSTL(24)):
            pipeline = StreamingPipeline(decomposer)
            pipeline.initialize(data["values"][: 24 * 6])
            for bad in (float("inf"), float("-inf")):
                with pytest.raises(ValueError, match="non-finite"):
                    pipeline.process(bad)
            # The pipeline stays healthy after the rejection.
            record = pipeline.process(float(data["values"][24 * 6]))
            assert np.isfinite(record.residual)

    def test_process_rejects_nan_without_missing_support(self):
        """NaN is only a missing-value marker for decomposers that impute it.

        OnlineSTL has no imputation: a NaN would propagate into its seasonal
        buffer and trend window and silently poison every later point.
        """
        data = make_seasonal_series(24 * 8, 24, seed=17)
        pipeline = StreamingPipeline(OnlineSTL(24))
        pipeline.initialize(data["values"][: 24 * 6])
        assert not OnlineSTL(24).supports_missing
        with pytest.raises(ValueError, match="non-finite"):
            pipeline.process(float("nan"))

    def test_process_imputes_nan_with_missing_support(self):
        """OneShotSTL declares missing-value support, so NaN streams through."""
        data = make_seasonal_series(24 * 8, 24, seed=18)
        pipeline = StreamingPipeline(OneShotSTL(24, shift_window=0))
        pipeline.initialize(data["values"][: 24 * 6])
        assert OneShotSTL(24).supports_missing
        record = pipeline.process(float("nan"))
        assert np.isfinite(record.value)
        assert np.isfinite(record.residual)

    def test_pipeline_flags_spike_with_shift_search_enabled(self):
        """A genuine spike must be flagged even when the shift search runs."""
        data = make_seasonal_series(24 * 10, 24, seed=15, noise=0.05)
        values = data["values"].copy()
        spike_index = 24 * 8
        values[spike_index] += 10.0
        pipeline = StreamingPipeline(
            OneShotSTL(24, shift_window=20), anomaly_threshold=5.0
        )
        pipeline.initialize(values[: 24 * 6])
        records = pipeline.process_many(values[24 * 6 :])
        flagged = [record.index for record in records if record.is_anomaly]
        assert any(abs(index - spike_index) <= 1 for index in flagged)


class TestLatencyHarness:
    def test_latency_report_fields(self):
        data = make_seasonal_series(24 * 8, 24, seed=12)
        report = measure_update_latency(
            OneShotSTL(24, shift_window=0, iterations=2),
            data["values"][: 24 * 5],
            data["values"][24 * 5 :],
            max_points=40,
        )
        assert report.points == 40
        assert report.mean_seconds > 0
        assert report.p99_seconds >= report.median_seconds
        row = report.as_row()
        assert set(row) == {"method", "points", "mean_us", "median_us", "p99_us", "total_s"}
        assert report.mean_microseconds == pytest.approx(report.mean_seconds * 1e6)

    def test_summarize_latencies(self):
        durations = np.array([1e-4, 2e-4, 3e-4, 4e-4])
        report = summarize_latencies(durations, "probe")
        assert report.method == "probe"
        assert report.points == 4
        assert report.mean_seconds == pytest.approx(2.5e-4)
        assert report.total_seconds == pytest.approx(1e-3)
        assert report.p99_seconds <= 4e-4

    def test_summarize_latencies_empty_window_is_well_defined(self):
        report = summarize_latencies(np.array([]), "probe")
        assert report.points == 0
        assert report.mean_seconds == 0.0
        assert report.total_seconds == 0.0
