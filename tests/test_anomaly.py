"""Tests for the anomaly-detection subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anomaly import (
    AutoencoderDetector,
    DampDetector,
    NSigma,
    NSigmaDetector,
    NormaDetector,
    OneShotSTLDetector,
    OnlineSTLDetector,
    PrefilteredDampDetector,
    SandDetector,
    StompDetector,
    Stompi,
    damp_scores,
    kmeans,
    mass,
    matrix_profile,
    score_anomaly_series,
)
from repro.datasets import make_family
from repro.metrics import roc_auc


def make_anomalous_stream(period=50, cycles=12, spike_at=None, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    time = np.arange(period * cycles)
    values = (
        np.sin(2 * np.pi * time / period)
        + 0.3 * np.sin(4 * np.pi * time / period)
        + rng.normal(0, noise, time.size)
    )
    labels = np.zeros(time.size, dtype=int)
    if spike_at is not None:
        values[spike_at] += 6.0
        labels[spike_at] = 1
    return values, labels


class TestNSigma:
    def test_streaming_statistics_match_batch(self):
        rng = np.random.default_rng(0)
        values = rng.normal(3.0, 2.0, size=500)
        scorer = NSigma(threshold=3.0)
        for value in values:
            scorer.update(float(value))
        assert scorer.mean == pytest.approx(values.mean(), rel=1e-9)
        assert scorer.std == pytest.approx(values.std(), rel=1e-9)
        assert scorer.count == 500

    def test_flags_outlier(self):
        scorer = NSigma(threshold=4.0)
        for value in np.random.default_rng(1).normal(size=200):
            scorer.update(float(value))
        verdict = scorer.update(50.0)
        assert verdict.is_anomaly
        assert verdict.score > 4.0

    def test_first_value_is_not_anomalous(self):
        scorer = NSigma()
        verdict = scorer.update(100.0)
        assert not verdict.is_anomaly
        assert verdict.score == 0.0

    def test_copy_is_independent(self):
        scorer = NSigma()
        scorer.update(1.0)
        clone = scorer.copy()
        clone.update(100.0)
        assert scorer.count == 1
        assert clone.count == 2

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_property_scores_nonnegative(self, values):
        scorer = NSigma(threshold=3.0)
        for value in values:
            verdict = scorer.update(float(value))
            assert verdict.score >= 0.0
            assert np.isfinite(verdict.score)

    def test_large_offset_series_keeps_accurate_variance(self):
        """Regression: sum_sq/n - mean**2 catastrophically cancelled at ~1e8.

        For a series hovering around 1e8 with unit spread, the two terms of
        the textbook variance identity agree to ~16 significant digits, so
        their float64 difference was dominated by rounding (and could go
        negative).  Welford's update must recover the true spread to high
        relative accuracy regardless of the offset.
        """
        rng = np.random.default_rng(5)
        values = 1e8 + rng.normal(0.0, 1.0, size=2000)
        scorer = NSigma(threshold=5.0)
        for value in values:
            scorer.update(float(value))
        assert scorer.mean == pytest.approx(values.mean(), rel=1e-12)
        assert scorer.std == pytest.approx(values.std(), rel=1e-6)

    def test_flags_spike_on_large_offset_series(self):
        rng = np.random.default_rng(6)
        scorer = NSigma(threshold=5.0)
        for value in 1e8 + rng.normal(0.0, 1.0, size=500):
            scorer.update(float(value))
        verdict = scorer.score(1e8 + 10.0)
        assert verdict.is_anomaly
        assert verdict.score == pytest.approx(10.0, rel=0.2)

    def test_copy_preserves_welford_state(self):
        rng = np.random.default_rng(7)
        scorer = NSigma()
        for value in 1e8 + rng.normal(0.0, 1.0, size=100):
            scorer.update(float(value))
        clone = scorer.copy()
        assert clone.mean == scorer.mean
        assert clone.std == scorer.std
        assert clone.count == scorer.count


class TestNSigmaDetector:
    def test_detects_spike(self):
        values, labels = make_anomalous_stream(spike_at=500)
        detector = NSigmaDetector()
        scores = detector.detect(values[:300], values[300:])
        assert np.argmax(scores) == 500 - 300

    def test_scores_length_matches_test(self):
        values, _ = make_anomalous_stream()
        scores = NSigmaDetector().detect(values[:200], values[200:350])
        assert scores.shape == (150,)


class TestMatrixProfile:
    def test_mass_identifies_identical_subsequence(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=300)
        query = values[100:130]
        distances = mass(query, values)
        assert np.argmin(distances) == 100
        assert distances[100] == pytest.approx(0.0, abs=1e-6)

    def test_mass_constant_query(self):
        distances = mass(np.ones(10), np.random.default_rng(3).normal(size=100))
        assert np.all(np.isfinite(distances))

    def test_matrix_profile_discord_on_planted_anomaly(self):
        values, _ = make_anomalous_stream(spike_at=400)
        profile, indices = matrix_profile(values, window=32)
        discord = int(np.argmax(profile))
        assert 400 - 32 <= discord <= 400
        assert indices.shape == profile.shape

    def test_matrix_profile_of_periodic_signal_is_small(self):
        values, _ = make_anomalous_stream(noise=0.0)
        profile, _ = matrix_profile(values, window=25)
        assert np.median(profile) < 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            matrix_profile(np.arange(20.0), window=15)

    def test_stompi_matches_batch_on_extension(self):
        values, _ = make_anomalous_stream(cycles=8)
        split = 300
        streamer = Stompi(values[:split], window=25)
        for value in values[split:]:
            streamer.append(float(value))
        batch_profile, _ = matrix_profile(values, window=25)
        # The streaming left-profile upper-bounds the batch profile (which may
        # also use right neighbours); both must agree on where the series is
        # most self-similar.
        assert streamer.profile.shape[0] == batch_profile.shape[0]
        assert np.all(streamer.profile >= batch_profile - 1e-6)

    def test_stomp_detector_scores_spike(self):
        values, labels = make_anomalous_stream(spike_at=450)
        detector = StompDetector(window=25)
        scores = detector.detect(values[:300], values[300:])
        # Subsequence methods spread the anomaly over a full window, so the
        # point-wise AUC is below 1 even for a clear hit; the range-aware
        # metric should be close to perfect within the window tolerance.
        assert roc_auc(labels[300:], scores) > 0.85
        assert 150 <= int(np.argmax(scores)) < 150 + 25


class TestDamp:
    def test_damp_scores_spike_highest(self):
        values, _ = make_anomalous_stream(spike_at=420)
        scores = damp_scores(values, window=25, train_length=300)
        top = int(np.argmax(scores))
        assert 420 - 25 <= top <= 420

    def test_damp_detector_interface(self):
        values, labels = make_anomalous_stream(spike_at=420)
        detector = DampDetector(window=25)
        scores = detector.detect(values[:300], values[300:])
        assert scores.shape == (values.size - 300,)
        assert roc_auc(labels[300:], scores) > 0.9

    def test_requires_training_room(self):
        with pytest.raises(ValueError):
            damp_scores(np.arange(50.0), window=10, train_length=45)


class TestNormaAndSand:
    def test_kmeans_separates_two_blobs(self):
        rng = np.random.default_rng(4)
        blob_a = rng.normal(0, 0.1, size=(50, 3))
        blob_b = rng.normal(5, 0.1, size=(50, 3))
        centroids, assignments = kmeans(np.vstack([blob_a, blob_b]), 2, seed=1)
        assert centroids.shape == (2, 3)
        assert len(set(assignments[:50])) == 1
        assert assignments[0] != assignments[60]

    def test_norma_detects_spike(self):
        values, labels = make_anomalous_stream(spike_at=450)
        detector = NormaDetector(window=25, clusters=4)
        scores = detector.detect(values[:300], values[300:])
        assert roc_auc(labels[300:], scores) > 0.85

    def test_sand_detects_spike(self):
        values, labels = make_anomalous_stream(spike_at=450)
        detector = SandDetector(window=25, clusters=4, batch_size=100)
        scores = detector.detect(values[:300], values[300:])
        assert roc_auc(labels[300:], scores) > 0.85

    def test_sand_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            SandDetector(window=10, decay=1.5)


class TestSTDDetectors:
    @pytest.mark.parametrize("detector_class", [OneShotSTLDetector, OnlineSTLDetector])
    def test_detects_spike_on_seasonal_data(self, detector_class):
        values, labels = make_anomalous_stream(spike_at=450, seed=5)
        detector = detector_class(period=50)
        scores = detector.detect(values[:300], values[300:])
        assert roc_auc(labels[300:], scores) > 0.95

    def test_oneshotstl_beats_nsigma_on_seasonal_data(self):
        # A strongly seasonal signal with a spike placed in a seasonal trough:
        # after the spike the value is still well inside the series' global
        # range, so raw NSigma cannot see it, while the decomposition-based
        # detector finds it in the residual.
        rng = np.random.default_rng(6)
        period, cycles = 50, 14
        time = np.arange(period * cycles)
        values = 3.0 * np.sin(2 * np.pi * time / period) + rng.normal(0, 0.05, time.size)
        labels = np.zeros(time.size, dtype=int)
        spike_index = 587  # phase 37: near the seasonal minimum
        values[spike_index] += 1.5
        labels[spike_index] = 1
        train, test = values[:400], values[400:]
        std_auc = roc_auc(labels[400:], OneShotSTLDetector(period).detect(train, test))
        raw_auc = roc_auc(labels[400:], NSigmaDetector().detect(train, test))
        assert std_auc > 0.95
        assert std_auc > raw_auc + 0.1

    def test_score_anomaly_series_helper(self):
        series = make_family("IOPS", series_per_family=1, seed=3)[0]
        scores = score_anomaly_series(NSigmaDetector(), series)
        assert scores.shape == series.test_values.shape


class TestAutoencoderDetector:
    def test_detects_spike(self):
        values, labels = make_anomalous_stream(spike_at=450, seed=7)
        detector = AutoencoderDetector(window=25, epochs=30, seed=1)
        scores = detector.detect(values[:300], values[300:])
        assert roc_auc(labels[300:], scores) > 0.9

    def test_window_validation(self):
        with pytest.raises(ValueError):
            AutoencoderDetector(window=100).detect(np.arange(50.0), np.arange(20.0))


class TestPrefilteredDamp:
    def test_combo_keeps_spike_on_top(self):
        values, labels = make_anomalous_stream(spike_at=480, seed=8)
        combo = PrefilteredDampDetector(
            OneShotSTLDetector(period=50), window=25, top_fraction=0.02
        )
        scores = combo.detect(values[:300], values[300:])
        # The refined discord score may land on any point whose subsequence
        # covers the spike.
        top = int(np.argmax(scores))
        assert 480 - 300 <= top < 480 - 300 + 25
        assert scores[top] > 0
        assert combo.name == "OneShotSTL+DAMP"

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            PrefilteredDampDetector(NSigmaDetector(), window=10, top_fraction=0.0)
