"""Tests of the core contribution: JointSTL, the Algorithm-2 reference and OneShotSTL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContributionWorkspace,
    JointSTL,
    ModifiedJointSTL,
    OneShotSTL,
    point_contributions,
    select_lambda,
)
from repro.decomposition import STL

from tests.conftest import make_seasonal_series


class TestPointContributions:
    def test_first_point_has_no_difference_terms(self):
        updates, rhs = point_contributions(0, 2.0, 0.5, 1.0, 1.0, 1.0, 1.0)
        assert rhs == [2.0, 2.5]
        touched = {(row, column) for row, column, _ in updates}
        assert touched == {(0, 0), (1, 1), (1, 0)}

    def test_third_point_touches_trailing_band_only(self):
        updates, _ = point_contributions(2, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0)
        for row, column, _ in updates:
            assert row >= column
            assert row - column <= 4
            assert column >= 0

    def test_weights_scale_difference_terms(self):
        light, _ = point_contributions(2, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0)
        heavy, _ = point_contributions(2, 1.0, 0.0, 1.0, 1.0, 3.0, 5.0)
        light_total = sum(abs(v) for _, _, v in light)
        heavy_total = sum(abs(v) for _, _, v in heavy)
        assert heavy_total > light_total

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            point_contributions(-1, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0)


class TestContributionWorkspace:
    """The preallocated array form must agree with the reference function."""

    @pytest.mark.parametrize("point_index", [0, 1, 2, 3, 17])
    def test_matches_point_contributions(self, point_index):
        workspace = ContributionWorkspace(lambda1=2.0, lambda2=3.0)
        reference_updates, reference_rhs = point_contributions(
            point_index, 1.5, -0.25, 2.0, 3.0, 0.7, 1.9
        )
        (rows, columns, values), rhs = workspace.fill(
            point_index, 1.5, -0.25, 0.7, 1.9
        )
        assert [
            (int(row), int(column), float(value))
            for row, column, value in zip(rows, columns, values)
        ] == reference_updates
        np.testing.assert_allclose(rhs, reference_rhs)

    def test_steady_state_reuses_buffers(self):
        workspace = ContributionWorkspace(1.0, 1.0)
        (rows_a, _, values_a), _ = workspace.fill(5, 1.0, 0.0, 1.0, 1.0)
        (rows_b, _, values_b), _ = workspace.fill(6, 2.0, 0.5, 3.0, 4.0)
        assert rows_a is rows_b
        assert values_a is values_b


class TestJointSTL:
    def test_reconstruction_is_exact(self, small_seasonal):
        model = JointSTL(small_seasonal["period"], iterations=4)
        result = model.decompose(small_seasonal["values"])
        np.testing.assert_allclose(
            result.reconstruct(), small_seasonal["values"], atol=1e-8
        )

    def test_recovers_smooth_trend(self, small_seasonal):
        model = JointSTL(small_seasonal["period"], lambda1=1.0, lambda2=1.0, iterations=6)
        result = model.decompose(small_seasonal["values"])
        error = np.mean(np.abs(result.trend - small_seasonal["trend"]))
        baseline = np.mean(np.abs(small_seasonal["trend"] - small_seasonal["trend"].mean()))
        assert error < 0.25 * baseline

    def test_seasonal_component_is_periodic(self, small_seasonal):
        period = small_seasonal["period"]
        model = JointSTL(period, iterations=4)
        result = model.decompose(small_seasonal["values"])
        seasonal = result.seasonal
        drift = np.mean(np.abs(seasonal[period:] - seasonal[:-period]))
        assert drift < 0.2

    def test_handles_abrupt_trend_change(self):
        data = make_seasonal_series(400, 40, trend_break=200, trend_break_size=4.0, seed=5)
        model = JointSTL(40, lambda1=10.0, lambda2=10.0, iterations=8)
        result = model.decompose(data["values"])
        jump = result.trend[220:240].mean() - result.trend[160:180].mean()
        assert jump > 2.0

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            JointSTL(50).decompose(np.zeros(30) + np.arange(30))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            JointSTL(10, lambda1=-1.0)
        with pytest.raises(ValueError):
            JointSTL(1)
        with pytest.raises(ValueError):
            JointSTL(10, iterations=0)


class TestOneShotSTLMatchesReference:
    """OneShotSTL must equal the exact Algorithm-2 reference to machine precision."""

    @pytest.mark.parametrize("iterations", [1, 3, 8])
    def test_exact_match_with_reference(self, iterations):
        data = make_seasonal_series(24 * 7, 24, seed=7)
        values = data["values"]
        init_length = 24 * 4
        online = values[init_length:]

        reference = ModifiedJointSTL(24, lambda1=2.0, lambda2=3.0, iterations=iterations)
        fast = OneShotSTL(
            24, lambda1=2.0, lambda2=3.0, iterations=iterations, shift_window=0
        )
        reference.initialize(values[:init_length])
        fast.initialize(values[:init_length])

        for value in online:
            expected = reference.update(float(value))
            actual = fast.update(float(value))
            assert actual.trend == pytest.approx(expected.trend, abs=1e-7)
            assert actual.seasonal == pytest.approx(expected.seasonal, abs=1e-7)
            assert actual.residual == pytest.approx(expected.residual, abs=1e-7)

    def test_exact_match_with_shift_search_armed(self):
        """With the search enabled but never triggering, outputs stay exact.

        This exercises the lazy-snapshot hot path: every point runs through
        the solvers' one-level undo machinery with the search armed, and the
        stream must still equal the reference to machine precision.
        """
        data = make_seasonal_series(24 * 7, 24, seed=13, noise=0.05)
        values = data["values"]
        init_length = 24 * 4
        reference = ModifiedJointSTL(24, iterations=4)
        fast = OneShotSTL(24, iterations=4, shift_window=20, shift_threshold=50.0)
        reference.initialize(values[:init_length])
        fast.initialize(values[:init_length])
        for value in values[init_length:]:
            expected = reference.update(float(value))
            actual = fast.update(float(value))
            assert actual.trend == pytest.approx(expected.trend, abs=1e-7)
            assert actual.seasonal == pytest.approx(expected.seasonal, abs=1e-7)
            assert actual.residual == pytest.approx(expected.residual, abs=1e-7)
        assert fast.current_shift == 0

    @staticmethod
    def _eager_snapshot_update(model, value):
        """Reference semantics of OneShotSTL.update with *eager* snapshots.

        This replicates, on top of the model's own primitives, the original
        formulation of the shift search: deep-copy every iteration state
        before the point is processed, and evaluate candidate shifts against
        those copies.  The production update takes the snapshot lazily (via
        solver rollback) only when the search triggers; both formulations
        must emit bit-identical points, which is what the test below pins
        down -- including through triggers that commit a non-zero shift.
        """
        value = float(value)
        snapshot = [state.copy() for state in model._iterations_state]
        trend, seasonal = model._advance(model._iterations_state, value, 0)
        residual = value - trend - seasonal
        model._last_detection_residual = residual
        chosen_shift = 0
        if model.shift_window > 0 and model._residual_monitor.score(residual).is_anomaly:
            best = (abs(residual), model._iterations_state, trend, seasonal, 0)
            for candidate in range(-model.shift_window, model.shift_window + 1):
                if candidate == 0:
                    continue
                trial_states = [state.copy() for state in snapshot]
                trial_trend, trial_seasonal = model._advance(
                    trial_states, value, candidate
                )
                trial_residual = value - trial_trend - trial_seasonal
                if abs(trial_residual) < best[0]:
                    best = (
                        abs(trial_residual),
                        trial_states,
                        trial_trend,
                        trial_seasonal,
                        candidate,
                    )
            _, chosen_states, trend, seasonal, chosen_shift = best
            model._iterations_state = chosen_states
            residual = value - trend - seasonal
            if chosen_shift != 0:
                model._last_applied_shift = chosen_shift
        model._residual_monitor.update(model._last_detection_residual)
        position = (model._global_index + chosen_shift) % model.period
        model._seasonal_buffer[position] = seasonal
        model._global_index += 1
        model._points_processed += 1
        model._last_trend = trend
        return trend, seasonal, residual

    def test_lazy_snapshot_matches_eager_snapshot_through_triggers(self):
        """The rollback-based search must equal eager per-point snapshots.

        Runs a stream with a genuine seasonality shift (the search triggers
        and commits non-zero shifts) plus an additive spike (the search
        triggers and typically keeps shift 0) through the production update
        and through an eager-snapshot twin; every point must agree exactly.
        """
        period = 30
        cycles = 10
        time = np.arange(period * cycles)
        values = np.sin(2 * np.pi * time / period)
        shift_start = period * 7
        values[shift_start:] = np.sin(2 * np.pi * (time[shift_start:] + 8) / period)
        values[period * 6 + 11] += 4.0  # spike well before the phase shift
        init_length = period * 4

        production = OneShotSTL(period, iterations=3, shift_window=12, shift_threshold=3.0)
        eager = OneShotSTL(period, iterations=3, shift_window=12, shift_threshold=3.0)
        production.initialize(values[:init_length])
        eager.initialize(values[:init_length])

        for value in values[init_length:]:
            point = production.update(float(value))
            trend, seasonal, residual = self._eager_snapshot_update(eager, value)
            assert point.trend == trend
            assert point.seasonal == seasonal
            assert point.residual == residual
        # The scenario must actually have exercised the non-zero-shift path.
        assert production.current_shift != 0
        np.testing.assert_array_equal(
            production.seasonal_buffer, eager.seasonal_buffer
        )

    def test_match_with_trend_break(self):
        data = make_seasonal_series(
            30 * 6, 30, seed=11, trend_break=30 * 5, trend_break_size=5.0
        )
        values = data["values"]
        init_length = 30 * 4
        reference = ModifiedJointSTL(30, iterations=4)
        fast = OneShotSTL(30, iterations=4, shift_window=0)
        reference.initialize(values[:init_length])
        fast.initialize(values[:init_length])
        for value in values[init_length:]:
            expected = reference.update(float(value))
            actual = fast.update(float(value))
            assert actual.trend == pytest.approx(expected.trend, abs=1e-6)
            assert actual.seasonal == pytest.approx(expected.seasonal, abs=1e-6)


class TestOneShotSTL:
    def test_requires_initialization(self):
        model = OneShotSTL(24)
        with pytest.raises(RuntimeError):
            model.update(1.0)
        with pytest.raises(RuntimeError):
            model.forecast(5)

    def test_reconstruction_identity_per_point(self, small_seasonal):
        period = small_seasonal["period"]
        values = small_seasonal["values"]
        model = OneShotSTL(period, shift_window=0)
        model.initialize(values[: 4 * period])
        for value in values[4 * period : 6 * period]:
            point = model.update(float(value))
            assert point.reconstruct() == pytest.approx(point.value, abs=1e-9)

    def test_tracks_trend_level(self, small_seasonal):
        period = small_seasonal["period"]
        values = small_seasonal["values"]
        model = OneShotSTL(period, lambda1=10.0, lambda2=10.0, shift_window=0)
        model.initialize(values[: 4 * period])
        trends = [model.update(float(v)).trend for v in values[4 * period :]]
        expected = small_seasonal["trend"][4 * period :]
        assert np.mean(np.abs(np.asarray(trends) - expected)) < 0.3

    def test_decompose_convenience_covers_full_series(self, small_seasonal):
        period = small_seasonal["period"]
        model = OneShotSTL(period, shift_window=0)
        result = model.decompose(small_seasonal["values"], 4 * period)
        assert len(result) == small_seasonal["values"].size
        np.testing.assert_allclose(
            result.reconstruct(), small_seasonal["values"], atol=1e-8
        )

    def test_forecast_is_periodic_plus_trend(self, small_seasonal):
        period = small_seasonal["period"]
        values = small_seasonal["values"]
        model = OneShotSTL(period, shift_window=0)
        model.initialize(values[: 4 * period])
        for value in values[4 * period : 6 * period]:
            model.update(float(value))
        forecast = model.forecast(2 * period)
        assert forecast.shape == (2 * period,)
        # Forecast repeats with the period once the trend is flat-ish.
        np.testing.assert_allclose(forecast[:period], forecast[period:], atol=1e-9)
        expected = small_seasonal["trend"][6 * period] + small_seasonal["seasonal"][
            6 * period : 7 * period
        ]
        assert np.mean(np.abs(forecast[:period] - expected)) < 0.5

    def test_seasonality_shift_is_detected_and_applied(self):
        period = 50
        cycles = 14
        time = np.arange(period * cycles)
        seasonal = np.sin(2 * np.pi * time / period)
        values = seasonal.copy()
        shift_start = period * 9
        shift = 10
        values[shift_start:] = np.sin(2 * np.pi * (time[shift_start:] + shift) / period)

        init_length = period * 6
        with_shift = OneShotSTL(period, shift_window=15, shift_threshold=3.0)
        without_shift = OneShotSTL(period, shift_window=0)
        with_shift.initialize(values[:init_length])
        without_shift.initialize(values[:init_length])

        residual_with = []
        residual_without = []
        for value in values[init_length:]:
            residual_with.append(abs(with_shift.update(float(value)).residual))
            residual_without.append(abs(without_shift.update(float(value)).residual))
        # The benefit of the shift search shows in the transition window right
        # after the shift: the corrected decomposition keeps the residual
        # small while the uncorrected one takes a long time to re-adapt.
        transition = slice(shift_start - init_length, shift_start - init_length + period // 2)
        assert with_shift.current_shift != 0
        assert np.mean(residual_with[transition]) < 0.5 * np.mean(residual_without[transition])

    def test_shift_window_zero_never_shifts(self, small_seasonal):
        period = small_seasonal["period"]
        model = OneShotSTL(period, shift_window=0)
        model.initialize(small_seasonal["values"][: 4 * period])
        for value in small_seasonal["values"][4 * period : 5 * period]:
            model.update(float(value))
        assert model.current_shift == 0

    def test_seasonal_buffer_has_period_length(self, small_seasonal):
        period = small_seasonal["period"]
        model = OneShotSTL(period, shift_window=0)
        model.initialize(small_seasonal["values"][: 4 * period])
        assert model.seasonal_buffer.shape == (period,)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OneShotSTL(1)
        with pytest.raises(ValueError):
            OneShotSTL(10, iterations=0)
        with pytest.raises(ValueError):
            OneShotSTL(10, lambda1=0.0)
        with pytest.raises(ValueError):
            OneShotSTL(10, shift_window=-1)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_reconstruction_and_boundedness(self, seed):
        data = make_seasonal_series(24 * 6, 24, seed=seed, noise=0.1)
        values = data["values"]
        model = OneShotSTL(24, iterations=2, shift_window=0)
        model.initialize(values[: 24 * 4])
        for value in values[24 * 4 :]:
            point = model.update(float(value))
            assert np.isfinite(point.trend)
            assert np.isfinite(point.seasonal)
            assert point.reconstruct() == pytest.approx(point.value, abs=1e-8)


class TestLambdaSelection:
    def test_returns_candidate_from_grid(self, small_seasonal):
        chosen = select_lambda(
            small_seasonal["values"],
            small_seasonal["period"],
            candidates=(1.0, 100.0),
            iterations=2,
        )
        assert chosen in (1.0, 100.0)

    def test_jointstl_method(self, small_seasonal):
        chosen = select_lambda(
            small_seasonal["values"],
            small_seasonal["period"],
            candidates=(1.0, 1000.0),
            iterations=2,
            method="jointstl",
        )
        assert chosen in (1.0, 1000.0)

    def test_rejects_unknown_method(self, small_seasonal):
        with pytest.raises(ValueError):
            select_lambda(
                small_seasonal["values"],
                small_seasonal["period"],
                method="magic",
            )


class TestInitializerChoices:
    def test_jointstl_initializer(self, small_seasonal):
        period = small_seasonal["period"]
        model = OneShotSTL(
            period,
            shift_window=0,
            initializer=JointSTL(period, iterations=3),
        )
        result = model.initialize(small_seasonal["values"][: 4 * period])
        assert len(result) == 4 * period
        point = model.update(float(small_seasonal["values"][4 * period]))
        assert np.isfinite(point.trend)

    def test_stl_initializer_is_default(self, small_seasonal):
        period = small_seasonal["period"]
        model = OneShotSTL(period, shift_window=0)
        result = model.initialize(small_seasonal["values"][: 4 * period])
        reference = STL(period, seasonal_window="periodic").decompose(
            small_seasonal["values"][: 4 * period]
        )
        np.testing.assert_allclose(result.trend, reference.trend)
