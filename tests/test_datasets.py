"""Tests for the dataset generators and loaders."""

import numpy as np
import pytest

from repro.datasets import (
    TSB_UAD_FAMILIES,
    TSF_DATASETS,
    inject_level_shift,
    inject_spike,
    load_csv_column,
    load_kdd21_file,
    load_tsb_uad_file,
    make_benchmark,
    make_family,
    make_kdd21_like,
    make_real1_like,
    make_real2_like,
    make_seasonal,
    make_syn1,
    make_syn2,
    make_tsf_dataset,
    random_anomalies,
    repeat_series,
)
from repro.periodicity import find_length


class TestSyntheticComponents:
    def test_syn1_components_add_up(self):
        data = make_syn1(length=3500, period=250)
        np.testing.assert_allclose(
            data.values, data.trend + data.seasonal + data.residual
        )
        assert data.period == 250
        assert len(data) == 3500

    def test_syn1_has_abrupt_trend_change(self):
        data = make_syn1(length=4000, period=200)
        jumps = np.abs(np.diff(data.trend))
        assert jumps.max() > 0.5

    def test_syn2_contains_shifted_periods(self):
        data = make_syn2(length=2500, period=250, shift=10)
        # The shifted periods make the seasonal component deviate from a
        # strictly periodic extension of itself.
        drift = np.abs(data.seasonal[250:] - data.seasonal[:-250])
        assert drift.max() > 0.1

    def test_detected_period_matches_generated(self):
        data = make_syn1(length=4000, period=200)
        assert abs(find_length(data.values, max_period=600) - 200) <= 10

    def test_make_seasonal_shapes(self):
        for shape in ("sine", "mixed", "sharp"):
            seasonal = make_seasonal(300, 50, shape=shape)
            assert seasonal.shape == (300,)
        with pytest.raises(ValueError):
            make_seasonal(300, 50, shape="square")

    def test_repeat_series(self):
        repeated = repeat_series(np.arange(5.0), 12)
        assert repeated.shape == (12,)
        np.testing.assert_allclose(repeated[:5], repeated[5:10])

    def test_real_like_generators(self):
        real1 = make_real1_like(length=4000, period=500)
        real2 = make_real2_like(length=4000, period=500)
        for data in (real1, real2):
            np.testing.assert_allclose(
                data.values, data.trend + data.seasonal + data.residual
            )
        # Real1 has a visible trend break, Real2 mostly noise.
        assert np.abs(np.diff(real1.trend)).max() > 0.1
        assert np.std(real2.residual) > np.std(real2.seasonal)


class TestAnomalyInjection:
    def test_spike_is_labelled(self):
        values, labels = inject_spike(np.zeros(100) + np.sin(np.arange(100.0)), 50)
        assert labels[50] == 1
        assert labels.sum() == 1
        assert values[50] != pytest.approx(np.sin(50.0))

    def test_level_shift_changes_mean(self):
        base = np.random.default_rng(0).normal(size=300)
        values, labels = inject_level_shift(base, 150, magnitude=4.0)
        assert values[200:].mean() > base[200:].mean() + 2.0
        assert labels.sum() > 0

    def test_random_anomalies_respect_training_prefix(self):
        base = np.sin(np.arange(2000.0) * 2 * np.pi / 100)
        values, labels = random_anomalies(base, period=100, count=4, seed=3, start_at=800)
        assert labels[:800].sum() == 0
        assert labels.sum() > 0
        assert values.shape == base.shape

    def test_random_anomalies_zero_count(self):
        base = np.zeros(500)
        values, labels = random_anomalies(base, period=50, count=0)
        assert labels.sum() == 0
        np.testing.assert_allclose(values, base)


class TestTSADBenchmark:
    def test_family_profiles_cover_seventeen_datasets(self):
        assert len(TSB_UAD_FAMILIES) == 17

    def test_make_family_produces_valid_series(self):
        family = make_family("IOPS", series_per_family=2, seed=1)
        assert len(family) == 2
        for series in family:
            assert series.labels[: series.train_length].sum() == 0
            assert series.labels.sum() > 0
            assert 0 < series.train_length < len(series)
            assert series.anomaly_fraction < 0.2

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            make_family("NotADataset")

    def test_benchmark_subset(self):
        benchmark = make_benchmark(series_per_family=1, families=("ECG", "YAHOO"))
        assert set(benchmark) == {"ECG", "YAHOO"}


class TestKDD21Like:
    def test_each_series_has_one_anomaly_event_in_test_region(self):
        series_list = make_kdd21_like(count=10, seed=2)
        assert len(series_list) == 10
        for series in series_list:
            assert series.labels[: series.train_length].sum() == 0
            assert series.labels.sum() > 0
            # single contiguous event
            changes = np.diff(np.concatenate([[0], series.labels, [0]]))
            assert (changes == 1).sum() == 1

    def test_nonseasonal_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_kdd21_like(count=5, nonseasonal_fraction=1.5)


class TestTSFBenchmark:
    def test_profiles_cover_six_datasets(self):
        assert len(TSF_DATASETS) == 6

    def test_split_fractions(self):
        series = make_tsf_dataset("Traffic")
        assert len(series.train_values) > len(series.test_values) > 0
        assert len(series.train_values) + len(series.validation_values) + len(
            series.test_values
        ) == len(series)

    def test_illness_uses_short_horizons(self):
        series = make_tsf_dataset("Illness")
        assert series.horizons == (24, 36, 48, 60)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            make_tsf_dataset("M4")

    def test_exchange_is_weakly_seasonal(self):
        exchange = make_tsf_dataset("Exchange")
        traffic = make_tsf_dataset("Traffic")
        from repro.periodicity import autocorrelation

        # Differencing removes the level/random-walk component so the ACF at
        # the period lag isolates genuine seasonality.
        exchange_acf = autocorrelation(np.diff(exchange.values), exchange.period + 1)[
            exchange.period
        ]
        traffic_acf = autocorrelation(np.diff(traffic.values), traffic.period + 1)[
            traffic.period
        ]
        assert traffic_acf > exchange_acf + 0.2


class TestLoaders:
    def test_tsb_uad_loader(self, tmp_path):
        path = tmp_path / "demo.out"
        rng = np.random.default_rng(0)
        values = np.sin(np.arange(600.0) * 2 * np.pi / 50) + rng.normal(0, 0.1, 600)
        labels = np.zeros(600, dtype=int)
        labels[400:410] = 1
        with path.open("w") as handle:
            for value, label in zip(values, labels):
                handle.write(f"{value},{label}\n")
        series = load_tsb_uad_file(path, period=50)
        assert len(series) == 600
        assert series.labels.sum() == 10
        assert series.period == 50

    def test_kdd21_loader(self, tmp_path):
        path = tmp_path / "007_300_450_470.txt"
        values = np.sin(np.arange(800.0) * 2 * np.pi / 40)
        np.savetxt(path, values)
        series = load_kdd21_file(path, period=40)
        assert series.train_length == 300
        assert series.labels[450:471].all()
        assert series.labels.sum() == 21

    def test_kdd21_loader_requires_encoded_name(self, tmp_path):
        path = tmp_path / "badname.txt"
        np.savetxt(path, np.zeros(10))
        with pytest.raises(ValueError):
            load_kdd21_file(path)

    def test_csv_loader(self, tmp_path):
        path = tmp_path / "data.csv"
        with path.open("w") as handle:
            handle.write("date,OT\n")
            for index in range(300):
                handle.write(f"{index},{np.sin(index / 5):.4f}\n")
        series = load_csv_column(path, "OT", period=31)
        assert len(series) == 300
        with pytest.raises(KeyError):
            load_csv_column(path, "missing")
