"""Fault-injection, supervision and corruption-quarantine tests.

Three tiers of evidence:

* process-free units of the fault vocabulary itself --
  :class:`RetryPolicy` schedules and :class:`FaultPlan` counter windows
  must be deterministic, because every oracle below leans on "the same
  fault fires at the same operation every run";
* store-level corruption tests: ``store.verify()`` against
  hand-corrupted bytes, and ``MultiSeriesEngine.open`` under the
  ``strict | truncate | quarantine`` recovery policies -- quarantine
  must name exactly the cohort keys it dropped and serve the rest;
* cross-process supervision tests: a parametrized {boundary x injector}
  fault matrix against an uninterrupted twin engine (the survived
  verdict and the recovered stream must both match what the boundary
  implies), transient-error retry that never double-applies, the hang
  watchdog, the circuit breaker, and ``allow_partial`` degraded mode.

Fleets stay tiny (1-2 shards, periods of 8) so the module fits tier-1
time budgets; hang cases use a short ``request_timeout`` so the
watchdog, not the sleep, sets the pace.
"""

import json

import numpy as np
import pytest

from repro.durability import CorruptCheckpointError, DirectoryCheckpointStore
from repro.durability.scrub import decode_manifest_keys
from repro.faults import (
    WORKER_RECV,
    WORKER_REPLY,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.sharding import (
    ClusterSpec,
    ConsistentHashRing,
    DegradedResult,
    ShardDownError,
    ShardFailoverError,
    ShardRouter,
    ShardingError,
    WorkerCrashError,
)
from repro.specs import EngineSpec
from repro.streaming import MultiSeriesEngine

from tests.conftest import make_seasonal_series
from tests.test_sharding import assert_results_identical

PERIOD = 8
INIT = 2 * PERIOD
LENGTH = PERIOD * 9


def engine_spec() -> EngineSpec:
    return MultiSeriesEngine.for_oneshotstl(
        PERIOD, initialization_length=INIT, shift_window=0
    ).spec


def fleet_data(n_series: int, length: int = LENGTH) -> dict:
    return {
        f"series-{index:03d}": make_seasonal_series(
            length, PERIOD, seed=700 + index
        )["values"]
        for index in range(n_series)
    }


def slice_batch(data: dict, start: int, stop: int) -> dict:
    return {key: values[start:stop] for key, values in data.items()}


def victim_shard(cluster: ClusterSpec, data: dict) -> str:
    return ConsistentHashRing(
        [shard.shard_id for shard in cluster.shards]
    ).shard_for(next(iter(data)))


# --------------------------------------------------------------------------
# RetryPolicy (no processes)
# --------------------------------------------------------------------------


class TestRetryPolicy:
    def test_default_schedule(self):
        assert list(RetryPolicy().delays()) == [0.05, 0.2]

    def test_schedule_is_capped(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=10.0, max_delay=1.5
        )
        assert list(policy.delays()) == [0.1, 1.0, 1.5, 1.5]

    def test_call_succeeds_after_transient_failures(self):
        pauses: list = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "done"

        result = RetryPolicy().call(flaky, sleep=pauses.append)
        assert result == "done"
        assert calls["n"] == 3
        assert pauses == [0.05, 0.2]

    def test_call_exhausts_and_reraises(self):
        pauses: list = []

        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            RetryPolicy().call(always_fails, sleep=pauses.append)
        assert pauses == [0.05, 0.2]  # three attempts, two sleeps

    def test_non_transient_propagates_immediately(self):
        calls = {"n": 0}

        def wrong_value():
            calls["n"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            RetryPolicy().call(wrong_value, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)


# --------------------------------------------------------------------------
# FaultPlan (no processes)
# --------------------------------------------------------------------------


class TestFaultPlan:
    def test_counter_window_after_and_times(self):
        plan = FaultPlan(
            [FaultInjector(point="p", action="drop", after=2, times=2)]
        )
        assert [plan.fire("p") for _ in range(5)] == [
            None,
            "drop",
            "drop",
            None,
            None,
        ]

    def test_counters_are_per_point(self):
        plan = FaultPlan([FaultInjector(point="a", action="drop")])
        assert plan.fire("b") is None  # unrelated point, no effect
        assert plan.fire("a") == "drop"

    def test_times_zero_fires_forever(self):
        plan = FaultPlan(
            [FaultInjector(point="p", action="drop", after=1, times=0)]
        )
        assert all(plan.fire("p") == "drop" for _ in range(10))

    def test_raise_action_carries_errno(self):
        import errno

        plan = FaultPlan([FaultInjector(point="p", action="raise")])
        with pytest.raises(OSError) as error:
            plan.fire("p")
        assert error.value.errno == errno.ENOSPC

    def test_survivors_keeps_only_persistent_injectors(self):
        one_shot = FaultInjector(point="p", action="sigkill")
        sticky = FaultInjector(point="p", action="sigkill", persist=True)
        survivors = FaultPlan([one_shot, sticky]).survivors()
        assert survivors.injectors == (sticky,)
        assert not FaultPlan([one_shot]).survivors()

    def test_dict_round_trip_and_coerce(self):
        injector = FaultInjector(
            point="wal.append.before", action="hang", duration=1.5, after=3
        )
        plan = FaultPlan([injector])
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.injectors == plan.injectors
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce([injector]).injectors == (injector,)
        assert FaultPlan.coerce(plan.to_dict()).injectors == (injector,)

    def test_validation_rejects_unknowns(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultInjector(point="p", action="meteor")
        with pytest.raises(ValueError, match="after"):
            FaultInjector(point="p", action="drop", after=0)
        with pytest.raises(ValueError, match="unknown FaultInjector fields"):
            FaultInjector.from_dict({"point": "p", "action": "drop", "x": 1})
        with pytest.raises(ValueError, match="bit_flip target"):
            FaultInjector(point="p", action="bit_flip", target="ram")

    def test_bit_flip_flips_exactly_one_bit(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        payload = bytes(range(64))
        store.write_segment("seg-000", payload)
        plan = FaultPlan(
            [FaultInjector(point="p", action="bit_flip", target="segment")]
        )
        plan.install(store)
        plan.fire("p")
        flipped = store.read_segment("seg-000")
        deltas = [
            index
            for index, (a, b) in enumerate(zip(payload, flipped))
            if a != b
        ]
        assert deltas == [len(payload) // 2]
        assert payload[deltas[0]] ^ flipped[deltas[0]] == 0x01


# --------------------------------------------------------------------------
# store scrub + recovery policies (no processes)
# --------------------------------------------------------------------------


def populate_store(
    path,
    n_series: int = 8,
    cohort_size: int | None = None,
    wal_batches: int = 2,
    wal_segment_bytes: int | None = None,
) -> dict:
    """Build a store with a committed checkpoint plus a live WAL tail."""
    data = fleet_data(n_series)
    store_kwargs = {}
    if wal_segment_bytes is not None:
        store_kwargs["wal_segment_bytes"] = wal_segment_bytes
    store = DirectoryCheckpointStore(path, **store_kwargs)
    engine = MultiSeriesEngine.open(store, spec=engine_spec())
    if cohort_size is not None:
        engine.checkpoint_cohort_size = cohort_size
    cut = PERIOD * 5
    engine.ingest_columnar(slice_batch(data, 0, cut))
    engine.checkpoint()
    step = (LENGTH - cut) // wal_batches
    for index in range(wal_batches):
        engine.ingest_columnar(
            slice_batch(data, cut + index * step, cut + (index + 1) * step)
        )
    engine.close(checkpoint=False)
    return data


def read_manifest_json(path) -> dict:
    return json.loads((path / "MANIFEST.json").read_text())


def flip_byte(path, offset: int | None = None) -> None:
    raw = bytearray(path.read_bytes())
    position = len(raw) // 2 if offset is None else offset
    raw[position] ^= 0x01
    path.write_bytes(bytes(raw))


class TestStoreVerify:
    def test_clean_store_verifies_ok(self, tmp_path):
        populate_store(tmp_path)
        report = DirectoryCheckpointStore(tmp_path).verify()
        assert report.ok
        assert report.findings == ()
        assert report.segments_checked > 0
        assert report.wal_frames_checked > 0
        assert "ok" in str(report)

    def test_segment_bit_flip_is_a_fatal_crc_finding(self, tmp_path):
        populate_store(tmp_path)
        manifest = read_manifest_json(tmp_path)
        segment = manifest["cohorts"][0]["segment"]
        flip_byte(tmp_path / "segments" / segment)
        report = DirectoryCheckpointStore(tmp_path).verify()
        assert not report.ok
        problems = {
            finding.artifact: finding.problem for finding in report.findings
        }
        assert problems[segment] == "crc_mismatch"
        assert "CORRUPT" in str(report)

    def test_missing_segment_is_fatal(self, tmp_path):
        populate_store(tmp_path)
        segment = read_manifest_json(tmp_path)["cohorts"][0]["segment"]
        (tmp_path / "segments" / segment).unlink()
        report = DirectoryCheckpointStore(tmp_path).verify()
        assert not report.ok
        assert any(
            finding.problem == "missing" and finding.artifact == segment
            for finding in report.findings
        )

    def test_invalid_manifest_is_fatal(self, tmp_path):
        populate_store(tmp_path)
        (tmp_path / "MANIFEST.json").write_text("{this is not json")
        report = DirectoryCheckpointStore(tmp_path).verify()
        assert not report.ok
        assert report.findings[0].artifact == "manifest"

    def test_torn_wal_tail_is_a_nonfatal_note(self, tmp_path):
        populate_store(tmp_path)
        store = DirectoryCheckpointStore(tmp_path)
        last_wal = store.list_wals()[-1]
        with open(tmp_path / "wal" / last_wal, "ab") as handle:
            handle.write(b"\x07\x07\x07")  # a crash mid-append
        report = DirectoryCheckpointStore(tmp_path).verify()
        assert report.ok  # strict recovery would still succeed
        notes = [f for f in report.findings if not f.fatal]
        assert [note.problem for note in notes] == ["torn_tail"]
        assert notes[0].artifact == last_wal


class TestRecoveryPolicies:
    def test_open_rejects_unknown_policy(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="recovery"):
            MultiSeriesEngine.open(
                store, spec=engine_spec(), recovery="optimistic"
            )

    def test_strict_raises_on_a_corrupt_segment(self, tmp_path):
        populate_store(tmp_path)
        segment = read_manifest_json(tmp_path)["cohorts"][0]["segment"]
        flip_byte(tmp_path / "segments" / segment)
        with pytest.raises(CorruptCheckpointError):
            MultiSeriesEngine.open(
                DirectoryCheckpointStore(tmp_path),
                spec=engine_spec(),
                recovery="strict",
            )

    def test_quarantine_names_cohort_keys_and_serves_the_rest(self, tmp_path):
        data = populate_store(tmp_path, n_series=8, cohort_size=4)
        manifest = read_manifest_json(tmp_path)
        assert len(manifest["cohorts"]) == 2  # cohort_size split the fleet
        bad = manifest["cohorts"][0]
        bad_keys = decode_manifest_keys(bad["keys"])
        flip_byte(tmp_path / "segments" / bad["segment"])

        store = DirectoryCheckpointStore(tmp_path)
        engine = MultiSeriesEngine.open(
            store, spec=engine_spec(), recovery="quarantine"
        )
        report = engine.last_recovery
        assert report is not None and not report.clean
        assert len(report.quarantined_cohorts) == 1
        assert set(report.quarantined_cohorts[0].keys) == set(bad_keys)
        assert set(report.affected_keys) == set(bad_keys)

        survivors = set(data) - set(bad_keys)
        assert set(engine.keys()) == survivors
        # The WAL tail replayed for the survivors only -- each surviving
        # series carries its full history, bit-identically.
        reference = MultiSeriesEngine.from_spec(engine_spec())
        reference.ingest_columnar(data)
        assert engine.fleet_stats().points_total == len(survivors) * LENGTH
        probe = sorted(survivors)[0]
        assert np.array_equal(
            engine.forecast(probe, PERIOD), reference.forecast(probe, PERIOD)
        )
        # The evidence moved aside; the re-checkpointed store scrubs clean.
        assert bad["segment"] in store.list_quarantined()
        assert store.verify().ok
        # The round trip survives: a later strict open sees a clean store.
        engine.close(checkpoint=True)
        again = MultiSeriesEngine.open(
            DirectoryCheckpointStore(tmp_path),
            spec=engine_spec(),
            recovery="strict",
        )
        assert set(again.keys()) == survivors
        again.close(checkpoint=False)

    def test_quarantine_without_a_key_list_refuses(self, tmp_path):
        populate_store(tmp_path)
        manifest = read_manifest_json(tmp_path)
        segment = manifest["cohorts"][0]["segment"]
        del manifest["cohorts"][0]["keys"]
        (tmp_path / "MANIFEST.json").write_text(json.dumps(manifest))
        flip_byte(tmp_path / "segments" / segment)
        # Without the manifest's key list the WAL cannot be filtered, and
        # replaying it would fabricate partial series -- refuse loudly.
        with pytest.raises(CorruptCheckpointError, match="no key list"):
            MultiSeriesEngine.open(
                DirectoryCheckpointStore(tmp_path),
                spec=engine_spec(),
                recovery="quarantine",
            )

    def _corrupt_mid_chain(self, tmp_path):
        """Populate a multi-segment WAL chain and damage a middle segment.

        Returns ``(damaged_name, frames_by_segment)`` where the frame map
        was taken *before* the corruption.
        """
        populate_store(
            tmp_path, wal_batches=3, wal_segment_bytes=1
        )  # 1-byte cap: every append rotates -> one record per segment
        store = DirectoryCheckpointStore(tmp_path)
        frames = {
            name: list(store.wal_frames(name)) for name in store.list_wals()
        }
        chain = [name for name in sorted(frames) if frames[name]]
        assert len(chain) >= 3
        damaged = chain[1]
        first_end = frames[damaged][0][1]
        # Flip a payload byte of the segment's first frame: its CRC fails,
        # so the whole segment (and everything after it) is unreadable.
        flip_byte(tmp_path / "wal" / damaged, offset=first_end - 2)
        return damaged, frames, chain

    def test_quarantine_preserves_a_damaged_wal_suffix(self, tmp_path):
        damaged, frames, chain = self._corrupt_mid_chain(tmp_path)
        store = DirectoryCheckpointStore(tmp_path)
        engine = MultiSeriesEngine.open(
            store, spec=engine_spec(), recovery="quarantine"
        )
        report = engine.last_recovery
        assert report is not None
        before = sum(len(frames[name]) for name in chain[: chain.index(damaged)])
        after = sum(
            len(frames[name]) for name in chain[chain.index(damaged) + 1 :]
        )
        assert report.wal_records_replayed == before
        assert report.wal_records_lost >= after
        assert report.quarantined_wal[0].segment == damaged
        assert report.quarantined_wal[0].from_offset == 0
        # Damaged bytes and unreachable later segments are all preserved.
        quarantined = store.list_quarantined()
        assert any(name.startswith(damaged) for name in quarantined)
        for later in chain[chain.index(damaged) + 1 :]:
            assert later in quarantined
        assert store.verify().ok  # the recovery re-checkpointed
        engine.close(checkpoint=False)

    def test_truncate_drops_the_suffix_without_preserving(self, tmp_path):
        damaged, frames, chain = self._corrupt_mid_chain(tmp_path)
        store = DirectoryCheckpointStore(tmp_path)
        engine = MultiSeriesEngine.open(
            store, spec=engine_spec(), recovery="truncate"
        )
        report = engine.last_recovery
        assert report is not None
        assert report.quarantined_wal == ()
        assert any(
            finding.problem == "truncated" and finding.artifact == damaged
            for finding in report.findings
        )
        assert store.list_quarantined() == []
        assert store.verify().ok
        engine.close(checkpoint=False)


# --------------------------------------------------------------------------
# cross-process supervision
# --------------------------------------------------------------------------


class TestRouterSupervision:
    def test_health_on_a_healthy_cluster(self, tmp_path):
        data = fleet_data(8, length=PERIOD * 2)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            router.ingest(data)
            health = router.health()
            assert sorted(health) == router.shard_ids
            for shard in health.values():
                assert shard.state == "up"
                assert isinstance(shard.pid, int)
                assert shard.restarts == 0
                assert shard.consecutive_failures == 0
                assert shard.last_error is None
                assert shard.quarantined_keys == ()
            total = sum(s.points_confirmed for s in health.values())
            assert total == 8 * PERIOD * 2
            assert router.stats(allow_partial=True).down_shards == ()

    def test_transient_errors_retry_in_place(self, tmp_path):
        """Two injected ENOSPC replies, then success -- same worker, and
        the retried batch is bit-identical to the uninterrupted twin."""
        data = fleet_data(8, length=PERIOD * 4)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = victim_shard(cluster, data)
        router = ShardRouter(
            cluster,
            retry=RetryPolicy(attempts=3, base_delay=0.01),
            fault_plans={
                victim: [
                    FaultInjector(
                        point="wal.append.before",
                        action="raise",
                        after=2,
                        times=2,
                    )
                ]
            },
        )
        try:
            pid_before = router.health()[victim].pid
            first = slice_batch(data, 0, PERIOD * 2)
            second = slice_batch(data, PERIOD * 2, PERIOD * 4)
            assert_results_identical(
                router.ingest(first), reference.ingest_columnar(first), "warm"
            )
            # Appends 2 and 3 fail with ENOSPC; the second retry succeeds.
            assert_results_identical(
                router.ingest(second),
                reference.ingest_columnar(second),
                "retried batch",
            )
            health = router.health()[victim]
            assert health.pid == pid_before  # never died, never failed over
            assert health.restarts == 0
            assert health.state == "up"
            assert (
                router.stats().points_total
                == reference.fleet_stats().points_total
            )
        finally:
            router.close(checkpoint=False)

    def test_torn_append_retries_without_double_apply(self, tmp_path):
        """A torn WAL write is retried behind a checkpoint that discards
        the ambiguous half-frame -- totals stay exact."""
        data = fleet_data(8, length=PERIOD * 4)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = victim_shard(cluster, data)
        router = ShardRouter(
            cluster,
            retry=RetryPolicy(attempts=3, base_delay=0.01),
            fault_plans={
                victim: [
                    FaultInjector(
                        point="wal.append.torn", action="torn", after=2
                    )
                ]
            },
        )
        try:
            for start in range(0, PERIOD * 4, PERIOD * 2):
                batch = slice_batch(data, start, start + PERIOD * 2)
                assert_results_identical(
                    router.ingest(batch),
                    reference.ingest_columnar(batch),
                    f"batch@{start}",
                )
            assert router.health()[victim].restarts == 0
            assert (
                router.stats().points_total
                == reference.fleet_stats().points_total
            )
        finally:
            router.close(checkpoint=False)

    def test_retry_disabled_surfaces_the_transient_error(self, tmp_path):
        data = fleet_data(6, length=PERIOD * 2)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = victim_shard(cluster, data)
        router = ShardRouter(
            cluster,
            retry=None,
            fault_plans={
                victim: [
                    FaultInjector(point="wal.append.before", action="raise")
                ]
            },
        )
        try:
            with pytest.raises(ShardingError, match="retry disabled"):
                router.ingest(data)
        finally:
            router.close(checkpoint=False)

    WARM_BATCHES = 3

    @pytest.mark.parametrize(
        ("point", "action", "expect_survived", "expect_cause"),
        [
            ("wal.append.before", "sigkill", False, "crash"),
            ("wal.append.after", "sigkill", True, "crash"),
            (WORKER_RECV, "sigkill", False, "crash"),
            (WORKER_REPLY, "sigkill", True, "crash"),
            (WORKER_RECV, "hang", False, "hang"),
            (WORKER_REPLY, "hang", True, "hang"),
            (WORKER_RECV, "drop", False, "hang"),
            (WORKER_REPLY, "drop", True, "hang"),
        ],
    )
    def test_fault_matrix_against_uninterrupted_twin(
        self, tmp_path, point, action, expect_survived, expect_cause
    ):
        """{boundary x injector}: the survived verdict, the failure cause
        and the recovered stream must all match what the boundary implies.
        A drop (lost confirmation) and a hang both surface through the
        watchdog; state survival depends only on whether the boundary
        sits before or after the WAL append."""
        data = fleet_data(12)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = victim_shard(cluster, data)
        router = ShardRouter(
            cluster,
            request_timeout=2.0,  # the watchdog deadline for hang/drop
            fault_plans={
                victim: [
                    FaultInjector(
                        point=point,
                        action=action,
                        after=self.WARM_BATCHES + 1,
                        duration=45.0,
                    )
                ]
            },
        )
        try:
            step = PERIOD * 2
            for index in range(self.WARM_BATCHES):
                batch = slice_batch(data, index * step, (index + 1) * step)
                router.ingest(batch)
                reference.ingest_columnar(batch)

            tail = slice_batch(data, self.WARM_BATCHES * step, LENGTH)
            with pytest.raises(ShardFailoverError) as error:
                router.ingest(tail)
            assert error.value.shard_id == victim
            assert error.value.batch_survived is expect_survived
            assert error.value.cause == expect_cause

            reference.ingest_columnar(tail)
            if not expect_survived:
                router.ingest(
                    {
                        key: values
                        for key, values in tail.items()
                        if router.shard_of(key) == victim
                    }
                )
            health = router.health()[victim]
            assert health.restarts == 1
            assert health.last_failure_cause == expect_cause
            stats = router.stats()
            fleet = reference.fleet_stats()
            assert stats.points_total == fleet.points_total
            assert stats.anomalies_total == fleet.anomalies_total
            victim_key = next(
                key for key in data if router.shard_of(key) == victim
            )
            survivor_key = next(
                key for key in data if router.shard_of(key) != victim
            )
            for key in (victim_key, survivor_key):
                assert np.array_equal(
                    router.forecast(key, PERIOD),
                    reference.forecast(key, PERIOD),
                ), f"{point}/{action}: forecast diverged for {key!r}"
        finally:
            router.close(checkpoint=False)

    def test_allow_partial_reports_the_failed_shards_keys(self, tmp_path):
        """Degraded ingest: a mid-batch death does not raise; the result
        names exactly the victim's keys and whether their state survived."""
        data = fleet_data(12)
        reference = MultiSeriesEngine.from_spec(engine_spec())
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        victim = victim_shard(cluster, data)
        router = ShardRouter(
            cluster,
            fault_plans={
                victim: [
                    FaultInjector(point="wal.append.after", action="sigkill")
                ]
            },
        )
        try:
            degraded = router.ingest(data, allow_partial=True)
            assert isinstance(degraded, DegradedResult)
            assert not degraded.complete
            assert degraded.down_shards == ()
            assert degraded.failovers == {victim: True}
            assert set(degraded.skipped_keys) == {
                key for key in data if router.shard_of(key) == victim
            }
            # Surviving shards' slices are in the combined result.
            expected = reference.ingest_columnar(data)
            for key in data:
                if key in set(degraded.skipped_keys):
                    continue
                column = list(data).index(key)
                ours = degraded.result.value.reshape(LENGTH, len(data))
                theirs = expected.value.reshape(LENGTH, len(data))
                assert np.array_equal(
                    ours[:, column], theirs[:, column], equal_nan=True
                )
            # The victim's state survived into the WAL: no re-send, and
            # the fleet totals already agree with the twin.
            assert (
                router.stats().points_total
                == reference.fleet_stats().points_total
            )
        finally:
            router.close(checkpoint=False)

    def test_circuit_breaker_trips_and_manual_failover_resets(self, tmp_path):
        """A persistent crash loop exhausts the failover budget, marks the
        shard down, serves degraded -- and one operator failover (with the
        fault gone) brings everything back."""
        data = fleet_data(4, length=PERIOD * 2)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 1)
        (shard_id,) = [shard.shard_id for shard in cluster.shards]
        router = ShardRouter(
            cluster,
            circuit_threshold=2,
            fault_plans={
                shard_id: [
                    FaultInjector(
                        point="wal.append.before",
                        action="sigkill",
                        times=0,
                        persist=True,  # the replacement dies the same way
                    )
                ]
            },
        )
        try:
            with pytest.raises(ShardFailoverError) as first:
                router.ingest(data)
            assert first.value.batch_survived is False

            with pytest.raises(ShardDownError) as second:
                router.ingest(data)
            assert second.value.shard_id == shard_id
            assert set(second.value.skipped_keys) == set(data)

            health = router.health()[shard_id]
            assert health.state == "down"
            assert health.pid is None
            assert health.restarts == 1  # the one failover before the trip

            # Degraded mode serves around the hole and names it.
            degraded = router.ingest(data, allow_partial=True)
            assert isinstance(degraded, DegradedResult)
            assert degraded.down_shards == (shard_id,)
            assert set(degraded.skipped_keys) == set(data)
            partial = router.stats(allow_partial=True)
            assert partial.down_shards == (shard_id,)
            assert partial.series_total == 0
            assert router.keys(allow_partial=True)[shard_id] is None
            with pytest.raises(ShardDownError):
                router.stats()

            # Operator failover clears the breaker AND the armed fault.
            report = router.failover(shard_id)
            assert report.shard_id == shard_id
            health = router.health()[shard_id]
            assert health.state == "up"
            assert health.restarts == 2
            router.ingest(data)
            assert router.stats().points_total == 4 * PERIOD * 2
        finally:
            router.close(checkpoint=False)

    def test_unexpected_worker_error_is_a_reply_not_a_death(self, tmp_path):
        """Satellite fix: an unexpected exception inside the worker loop
        must reply ``error`` (kind, message, traceback) and keep serving,
        not kill the worker and burn a request timeout."""
        data = fleet_data(4, length=PERIOD * 2)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 1)
        (shard_id,) = [shard.shard_id for shard in cluster.shards]
        with ShardRouter(cluster) as router:
            worker = router._workers[shard_id]
            with pytest.raises(ValueError, match="unknown worker command"):
                router._request(worker, "definitely-not-a-command", None)
            # Same worker, still serving; the error cost no failover.
            router.ingest(data)
            health = router.health()[shard_id]
            assert health.restarts == 0
            assert health.consecutive_failures == 0
            assert router.stats().points_total == 4 * PERIOD * 2

    def test_router_surfaces_quarantined_keys_in_health(self, tmp_path):
        """A corrupted shard store comes up degraded under the router's
        default ``quarantine`` policy -- health names the lost keys --
        while ``recovery='strict'`` refuses to start at all."""
        data = fleet_data(8, length=PERIOD * 4)
        cluster = ClusterSpec.for_root(engine_spec(), tmp_path, 2)
        with ShardRouter(cluster) as router:
            router.ingest(data)
        # Corrupt one cohort segment of the first shard that holds any.
        victim_root = next(
            shard
            for shard in cluster.shards
            if read_manifest_json(tmp_path / shard.shard_id)["cohorts"]
        )
        manifest = read_manifest_json(tmp_path / victim_root.shard_id)
        bad = manifest["cohorts"][0]
        bad_keys = set(decode_manifest_keys(bad["keys"]))
        flip_byte(
            tmp_path / victim_root.shard_id / "segments" / bad["segment"]
        )

        with pytest.raises(WorkerCrashError):
            ShardRouter(cluster, recovery="strict", spawn_timeout=60.0)

        with ShardRouter(cluster) as router:  # default: quarantine
            health = router.health()[victim_root.shard_id]
            assert health.state == "degraded"
            assert set(health.quarantined_keys) == bad_keys
            stats = router.stats()
            assert stats.series_total == len(data) - len(bad_keys)
            surviving = {
                key
                for keys in router.keys().values()
                for key in keys
            }
            assert surviving == set(data) - bad_keys
