"""Tests for the shared validation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    as_float_array,
    check_period,
    check_positive,
    check_positive_int,
    check_probability,
    sliding_window_view,
)


class TestAsFloatArray:
    def test_converts_lists_and_copies(self):
        values = [1, 2, 3]
        array = as_float_array(values)
        assert array.dtype == float
        np.testing.assert_allclose(array, [1.0, 2.0, 3.0])

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError):
            as_float_array(np.zeros((3, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            as_float_array([1.0, np.nan])
        with pytest.raises(ValueError):
            as_float_array([1.0, np.inf])

    def test_enforces_min_length(self):
        with pytest.raises(ValueError):
            as_float_array([1.0], min_length=2)

    def test_error_message_uses_name(self):
        with pytest.raises(ValueError, match="my_series"):
            as_float_array([np.nan], name="my_series")


class TestScalarChecks:
    def test_check_positive(self):
        assert check_positive(2.5) == 2.5
        for bad in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(ValueError):
                check_positive(bad)

    def test_check_positive_int(self):
        assert check_positive_int(3) == 3
        assert check_positive_int(0, minimum=0) == 0
        with pytest.raises(ValueError):
            check_positive_int(2.5)
        with pytest.raises(ValueError):
            check_positive_int(0)

    def test_check_period(self):
        assert check_period(7) == 7
        with pytest.raises(ValueError):
            check_period(1)
        with pytest.raises(ValueError):
            check_period(10, series_length=10)

    def test_check_probability(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        for bad in (-0.1, 1.1, np.nan):
            with pytest.raises(ValueError):
                check_probability(bad)


class TestSlidingWindowView:
    def test_shapes_and_contents(self):
        windows = sliding_window_view(np.arange(6.0), 3)
        assert windows.shape == (4, 3)
        np.testing.assert_allclose(windows[0], [0, 1, 2])
        np.testing.assert_allclose(windows[-1], [3, 4, 5])

    def test_window_too_long_rejected(self):
        with pytest.raises(ValueError):
            sliding_window_view(np.arange(3.0), 5)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_property_window_count(self, n, window):
        values = np.arange(float(max(n, window)))
        windows = sliding_window_view(values, window)
        assert windows.shape == (values.size - window + 1, window)
