"""Columnar wire format for the serving layer: JSON header + raw float64.

A bulk-ingest request carries thousands of series in **one** HTTP body --
never per-point JSON.  The framing is deliberately trivial so any client
can speak it without a schema compiler:

.. code-block:: text

    +---------+----------------+---------------------+------------------+
    | "RCW1"  | header length  | header (UTF-8 JSON) | payload (arrays) |
    | 4 bytes | uint32, LE     | header-length bytes | rest of the body |
    +---------+----------------+---------------------+------------------+

The header is a small JSON object describing the payload; the payload is
the raw array data, little-endian, concatenated in the order the header's
``arrays`` field names.  For an **ingest request** the payload is one
round-major ``(rounds, n_keys)`` float64 grid -- column ``j`` holds
``rounds`` consecutive observations of ``keys[j]`` -- exactly the form
:meth:`repro.streaming.MultiSeriesEngine.ingest_grid` consumes, so a
request deserializes into the engine's fastest input path with a single
``np.frombuffer``.  The **ingest summary** reply is columnar too: per-key
``points`` / ``anomalies`` counts (int64) and the key's latest
``last_score`` (float64, NaN while warming), plus totals and the
degraded-mode ``skipped_keys`` in the header.

Control-plane endpoints (health, stats, anomaly listing) use plain JSON;
:func:`dump_json` / :func:`parse_json` pin the encoding.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "CONTENT_TYPE_COLUMNAR",
    "CONTENT_TYPE_JSON",
    "IngestSummary",
    "ProtocolError",
    "decode_grid",
    "decode_summary",
    "dump_json",
    "encode_grid",
    "encode_summary",
    "parse_json",
]

#: media type of the binary columnar frames (requests and summaries)
CONTENT_TYPE_COLUMNAR = "application/x-repro-columnar"
#: media type of the JSON control plane
CONTENT_TYPE_JSON = "application/json"

_MAGIC = b"RCW1"
_LENGTH = struct.Struct("<I")
#: ceiling on the header JSON (the grid itself rides in the payload)
_MAX_HEADER_BYTES = 8 * 1024 * 1024

_GRID_KIND = "ingest"
_SUMMARY_KIND = "ingest-summary"


class ProtocolError(ValueError):
    """A frame that does not parse as the columnar wire format."""


def _frame(header: dict, payload: bytes) -> bytes:
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join((_MAGIC, _LENGTH.pack(len(encoded)), encoded, payload))


def _unframe(body: bytes, expected_kind: str) -> tuple[dict, memoryview]:
    if len(body) < 8 or body[:4] != _MAGIC:
        raise ProtocolError(
            "not a columnar frame: expected the 4-byte magic "
            f"{_MAGIC!r} followed by a little-endian header length"
        )
    (header_length,) = _LENGTH.unpack_from(body, 4)
    if header_length > _MAX_HEADER_BYTES:
        raise ProtocolError(
            f"columnar frame header claims {header_length} bytes "
            f"(limit {_MAX_HEADER_BYTES})"
        )
    end = 8 + header_length
    if len(body) < end:
        raise ProtocolError(
            f"columnar frame truncated: header claims {header_length} "
            f"bytes but only {len(body) - 8} follow"
        )
    try:
        header = json.loads(body[8:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"columnar frame header is not JSON: {error}")
    if not isinstance(header, dict):
        raise ProtocolError("columnar frame header must be a JSON object")
    kind = header.get("kind")
    if kind != expected_kind:
        raise ProtocolError(
            f"columnar frame kind is {kind!r}, expected {expected_kind!r}"
        )
    return header, memoryview(body)[end:]


def _header_keys(header: dict) -> list[str]:
    keys = header.get("keys")
    if not isinstance(keys, list) or not all(
        isinstance(key, str) for key in keys
    ):
        raise ProtocolError(
            "columnar frame header field 'keys' must be a list of strings"
        )
    return keys


def encode_grid(keys: Sequence[str], grid: np.ndarray) -> bytes:
    """Encode a bulk-ingest request: ``keys`` plus a round-major grid.

    ``grid`` must be (coercible to) a 2-D float array of shape
    ``(rounds, len(keys))``; a 1-D array is accepted as a single row of
    one observation per key.
    """
    keys = [str(key) for key in keys]
    grid = np.asarray(grid, dtype="<f8")
    if grid.ndim == 1:
        grid = grid.reshape(1, -1)
    if grid.ndim != 2 or grid.shape[1] != len(keys):
        raise ProtocolError(
            "ingest grid must be round-major (rounds, n_keys); got shape "
            f"{grid.shape} for {len(keys)} keys"
        )
    header = {"kind": _GRID_KIND, "keys": keys, "rounds": int(grid.shape[0])}
    return _frame(header, np.ascontiguousarray(grid).tobytes())


def decode_grid(body: bytes) -> tuple[list[str], np.ndarray]:
    """Decode a bulk-ingest request into ``(keys, (rounds, n) grid)``."""
    header, payload = _unframe(body, _GRID_KIND)
    keys = _header_keys(header)
    if len(set(keys)) != len(keys):
        raise ProtocolError("ingest request keys must be unique")
    rounds = header.get("rounds")
    if not isinstance(rounds, int) or isinstance(rounds, bool) or rounds < 0:
        raise ProtocolError(
            "columnar frame header field 'rounds' must be an int >= 0"
        )
    expected = rounds * len(keys) * 8
    if len(payload) != expected:
        raise ProtocolError(
            f"ingest payload is {len(payload)} bytes; a {rounds} x "
            f"{len(keys)} float64 grid needs exactly {expected}"
        )
    grid = np.frombuffer(payload, dtype="<f8").reshape(rounds, len(keys))
    return keys, grid.astype(float, copy=False)


@dataclass(frozen=True, slots=True)
class IngestSummary:
    """Columnar outcome of one bulk ingest: per-key arrays plus totals.

    ``points[j]`` / ``anomalies[j]`` count the observations applied and
    anomalies flagged for ``keys[j]`` by this request; ``last_score[j]``
    is the key's most recent anomaly score (NaN while the series is still
    warming, or when the key was skipped).  ``skipped_keys`` names keys a
    degraded (``allow_partial``) ingest did **not** serve -- their
    ``points`` entries are zero and their values must be re-sent.
    """

    keys: tuple[str, ...]
    points: np.ndarray
    anomalies: np.ndarray
    last_score: np.ndarray
    rows: int
    anomalies_total: int
    skipped_keys: tuple[str, ...] = ()
    down_shards: tuple[str, ...] = field(default=())

    @property
    def complete(self) -> bool:
        """True when nothing was skipped: every key's slice was applied."""
        return not self.skipped_keys and not self.down_shards


def encode_summary(summary: IngestSummary) -> bytes:
    """Encode an :class:`IngestSummary` as a columnar frame."""
    points = np.ascontiguousarray(summary.points, dtype="<i8")
    anomalies = np.ascontiguousarray(summary.anomalies, dtype="<i8")
    last_score = np.ascontiguousarray(summary.last_score, dtype="<f8")
    n_keys = len(summary.keys)
    if not points.size == anomalies.size == last_score.size == n_keys:
        raise ProtocolError(
            "summary arrays must align with keys: "
            f"{points.size}/{anomalies.size}/{last_score.size} entries for "
            f"{n_keys} keys"
        )
    header = {
        "kind": _SUMMARY_KIND,
        "keys": list(summary.keys),
        "rows": int(summary.rows),
        "anomalies_total": int(summary.anomalies_total),
        "skipped_keys": list(summary.skipped_keys),
        "down_shards": list(summary.down_shards),
        "arrays": ["points:<i8", "anomalies:<i8", "last_score:<f8"],
    }
    payload = points.tobytes() + anomalies.tobytes() + last_score.tobytes()
    return _frame(header, payload)


def decode_summary(body: bytes) -> IngestSummary:
    """Decode a columnar ingest summary produced by :func:`encode_summary`."""
    header, payload = _unframe(body, _SUMMARY_KIND)
    keys = _header_keys(header)
    n_keys = len(keys)
    expected = n_keys * (8 + 8 + 8)
    if len(payload) != expected:
        raise ProtocolError(
            f"summary payload is {len(payload)} bytes; three arrays of "
            f"{n_keys} entries need exactly {expected}"
        )
    split_1, split_2 = n_keys * 8, n_keys * 16
    return IngestSummary(
        keys=tuple(keys),
        points=np.frombuffer(payload[:split_1], dtype="<i8").copy(),
        anomalies=np.frombuffer(
            payload[split_1:split_2], dtype="<i8"
        ).copy(),
        last_score=np.frombuffer(payload[split_2:], dtype="<f8").copy(),
        rows=int(header.get("rows", 0)),
        anomalies_total=int(header.get("anomalies_total", 0)),
        skipped_keys=tuple(header.get("skipped_keys") or ()),
        down_shards=tuple(header.get("down_shards") or ()),
    )


def dump_json(payload: object) -> bytes:
    """Encode a control-plane JSON body (compact, UTF-8)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def parse_json(body: bytes) -> object:
    """Decode a control-plane JSON body."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"body is not JSON: {error}")
