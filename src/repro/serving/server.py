"""Asyncio HTTP/1.1 front door for :class:`~repro.serving.app.ServingApp`.

Stdlib only: ``asyncio.start_server`` accepts connections, a small
HTTP/1.1 codec parses requests (keep-alive, ``Content-Length`` bodies,
bounded header/body sizes), and handlers run on a thread pool so the
event loop never blocks on engine work.  The loop stays free to accept
sockets and serve ``/health`` while a multi-second bulk ingest runs.

Graceful shutdown is the part worth reading closely.  On SIGTERM/SIGINT
(or :meth:`ServingServer.stop`) the ordering is strict:

1. **stop accepting** -- the listening socket closes first, so a load
   balancer's next connection attempt fails fast instead of queueing;
2. **drain** -- requests already being handled run to completion
   (requests parsed after this point get ``503 draining``); idle
   keep-alive connections are closed;
3. **checkpoint + close** -- the backend is closed *with* a final
   checkpoint, which flushes dirty state and releases the store lease;
4. **exit 0** -- a drained shutdown is a success, not a crash.

Because every applied ingest batch is WAL-journaled *before* the engine
mutates (the durability contract from the layers below), a SIGKILL or
power cut at any point in this sequence still recovers the surviving WAL
prefix exactly; the graceful path just avoids replay work and releases
the lease promptly.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import signal
import sys
import threading
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

from repro.serving.app import Request, Response, ServingApp

__all__ = ["ServingServer"]

#: request line + headers must fit in this many bytes
_MAX_HEADER_BYTES = 64 * 1024
#: default ceiling on a request body (a 1000-key x 4096-round grid is ~32 MB)
_MAX_BODY_BYTES = 256 * 1024 * 1024
#: idle keep-alive connections are dropped after this many seconds
_KEEPALIVE_IDLE_SECONDS = 120.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class _BadRequest(Exception):
    """A connection-level protocol violation: reply and close."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


def _render(response: Response, *, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    headers = dict(response.headers)
    headers.setdefault("Content-Type", response.content_type)
    headers["Content-Length"] = str(len(response.body))
    headers.setdefault(
        "Connection", "keep-alive" if keep_alive else "close"
    )
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


class ServingServer:
    """Serve a :class:`ServingApp` over HTTP/1.1 on one listening socket.

    Two ways to run it:

    * :meth:`run` -- blocking, installs SIGTERM/SIGINT handlers, returns
      the process exit code (0 after a drained shutdown).  This is what
      ``python -m repro.serving`` calls.
    * :meth:`start_in_thread` / :meth:`stop` -- for tests, examples, and
      benchmarks: the loop runs on a daemon thread, ``start_in_thread``
      returns once the socket is bound, ``stop`` performs the same
      drain-checkpoint shutdown and joins the thread.
    """

    def __init__(
        self,
        app: ServingApp,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 8,
        max_body_bytes: int = _MAX_BODY_BYTES,
        checkpoint_interval: float | None = None,
        ready_stream=None,
    ):
        self.app = app
        self.host = host
        self.port = int(port)  # 0 = ephemeral; real port set at bind time
        self.max_body_bytes = int(max_body_bytes)
        self.checkpoint_interval = checkpoint_interval
        self._ready_stream = ready_stream
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="repro-serving"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self._busy = 0  # requests currently being handled (loop-thread only)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._closed = False

    # ------------------------------------------------------------- codec

    async def _read_request(
        self, reader: asyncio.StreamReader, *, first: bool
    ) -> Request | None:
        """Parse one request; ``None`` on clean EOF / idle timeout."""
        try:
            timeout = None if first else _KEEPALIVE_IDLE_SECONDS
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=timeout
            )
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        except asyncio.TimeoutError:
            return None
        except asyncio.LimitOverrunError:
            raise _BadRequest(431, "request head exceeds the header limit")
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest(431, "request head exceeds the header limit")
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise _BadRequest(400, "request head is not latin-1")
        request_line, _, header_block = text.partition("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _BadRequest(400, f"malformed request line {request_line!r}")
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _BadRequest(505, f"unsupported HTTP version {version!r}")
        headers: dict = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _BadRequest(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise _BadRequest(400, "content-length is not an integer")
            if length < 0:
                raise _BadRequest(400, "content-length is negative")
            if length > self.max_body_bytes:
                raise _BadRequest(
                    413,
                    f"body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return None
        elif "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest(
                400, "chunked bodies are not supported; send Content-Length"
            )
        return Request(
            method=method.upper(),
            path=split.path,
            query=query,
            headers=headers,
            body=body,
        )

    # ------------------------------------------------------- connections

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        first = True
        try:
            while True:
                try:
                    request = await self._read_request(reader, first=first)
                except _BadRequest as error:
                    from repro.serving.protocol import dump_json

                    response = Response(
                        status=error.status,
                        body=dump_json(
                            {"error": "bad_request", "detail": error.detail}
                        ),
                    )
                    writer.write(_render(response, keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                first = False
                self._busy += 1
                try:
                    response = await loop.run_in_executor(
                        self._executor, self.app.handle, request
                    )
                finally:
                    self._busy -= 1
                keep_alive = (
                    not self.app.draining
                    and request.headers.get("connection", "").lower()
                    != "close"
                    and response.headers.get("Connection", "").lower()
                    != "close"
                )
                writer.write(_render(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            # CancelledError too: a drain-cancelled task re-raises on every
            # await, and this close must not surface as a loop error
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    def _track(
        self, handler: Callable[..., Awaitable[None]]
    ) -> Callable[..., Awaitable[None]]:
        async def tracked(reader, writer) -> None:
            task = asyncio.current_task()
            assert task is not None
            self._connections.add(task)
            try:
                await handler(reader, writer)
            finally:
                self._connections.discard(task)

        return tracked

    # --------------------------------------------------------- lifecycle

    async def _serve(self) -> None:
        """Bind, announce readiness, serve until stopped, then drain."""
        self._loop = asyncio.get_running_loop()
        if self._stop_event is None:  # run() pre-creates it for signals
            self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._track(self._handle_connection),
            self.host,
            self.port,
            limit=_MAX_HEADER_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        stream = self._ready_stream if self._ready_stream is not None else sys.stdout
        print(
            f"repro-serving ready on http://{self.host}:{self.port}",
            file=stream,
            flush=True,
        )
        self._ready.set()
        checkpointer: asyncio.Task | None = None
        if self.checkpoint_interval:
            checkpointer = asyncio.create_task(self._checkpoint_loop())
        try:
            await self._stop_event.wait()
        finally:
            # 1. stop accepting
            server.close()
            await server.wait_closed()
            if checkpointer is not None:
                checkpointer.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await checkpointer
            # 2. drain: in-flight requests finish; new ones get 503
            self.app.draining = True
            while self._busy:
                await asyncio.sleep(0.005)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            # 3. checkpoint + close: flush state, release the store lease
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self._close_backend
            )

    def _close_backend(self) -> None:
        if not self._closed:
            self._closed = True
            self.app.close(checkpoint=True)

    async def _checkpoint_loop(self) -> None:
        assert self.checkpoint_interval
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            await loop.run_in_executor(self._executor, self.app.checkpoint)

    def request_stop(self) -> None:
        """Begin the drain-checkpoint shutdown (thread-safe, idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def run(self) -> int:
        """Serve until SIGTERM/SIGINT; return the process exit code."""

        async def bootstrap() -> None:
            # _stop_event must exist before the signal handlers that set
            # it; _serve() would create it too late relative to a very
            # early signal, so stage the setup here.
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self._stop_event.set)
            await self._serve()

        try:
            asyncio.run(bootstrap())
        finally:
            self._executor.shutdown(wait=True)
        return 0

    # ------------------------------------------------------ thread-hosted

    def start_in_thread(self, timeout: float = 30.0) -> tuple[str, int]:
        """Run the server on a daemon thread; return ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("server already started")

        def thread_main() -> None:
            try:
                asyncio.run(self._serve())
            finally:
                self._ready.set()  # unblock a waiter even on bind failure

        self._thread = threading.Thread(
            target=thread_main, name="repro-serving-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not become ready in time")
        if self._loop is None:
            raise RuntimeError("server failed to start (bind error?)")
        return self.host, self.port

    def stop(self, timeout: float = 60.0) -> None:
        """Drain, checkpoint, release the lease, and join the loop thread."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not stop in time")
            self._thread = None
        self._executor.shutdown(wait=True)
