"""Network serving layer: the stack as a service, stdlib-only.

Everything below this package is a library -- durable engine sessions
(:mod:`repro.streaming.engine`), a sharded tier with failover
(:mod:`repro.sharding`).  This package is the network front door that
turns it into a service:

* :mod:`repro.serving.protocol` -- columnar binary wire format: one
  request body carries a ``(rounds, n_keys)`` float64 grid for
  thousands of series (never per-point JSON), and the reply is a
  columnar per-key summary;
* :mod:`repro.serving.app` -- framework-free request router with
  bulk ingest, per-key query, paginated anomaly listing, bounded
  in-flight backpressure (503 + ``Retry-After``), and degraded
  ``allow_partial`` responses naming skipped keys;
* :mod:`repro.serving.server` -- asyncio HTTP/1.1 server with
  keep-alive and a strict graceful shutdown (stop accepting -> drain ->
  checkpoint -> release the store lease -> exit 0), launchable via
  ``python -m repro.serving``;
* :mod:`repro.serving.client` -- thin blocking client shared by tests,
  examples, and the load benchmark.

Quick start::

    from repro.serving import (
        EngineBackend, ServingApp, ServingClient, ServingServer,
    )
    from repro.streaming.engine import MultiSeriesEngine

    engine = MultiSeriesEngine.open("/var/lib/fleet", spec=spec)
    server = ServingServer(ServingApp(EngineBackend(engine)))
    host, port = server.start_in_thread()
    with ServingClient(host, port) as client:
        client.ingest(keys, grid)        # one columnar request
        client.anomalies(limit=50)       # paginated ring of recent hits
    server.stop()                        # drains, checkpoints, releases
"""

from repro.serving.app import (
    AnomalyEvent,
    AnomalyRing,
    BackendUnavailableError,
    EngineBackend,
    Request,
    Response,
    RouterBackend,
    ServingApp,
)
from repro.serving.client import ServingClient, ServingError
from repro.serving.protocol import (
    CONTENT_TYPE_COLUMNAR,
    CONTENT_TYPE_JSON,
    IngestSummary,
    ProtocolError,
    decode_grid,
    decode_summary,
    encode_grid,
    encode_summary,
)
from repro.serving.server import ServingServer

__all__ = [
    "AnomalyEvent",
    "AnomalyRing",
    "BackendUnavailableError",
    "CONTENT_TYPE_COLUMNAR",
    "CONTENT_TYPE_JSON",
    "EngineBackend",
    "IngestSummary",
    "ProtocolError",
    "Request",
    "Response",
    "RouterBackend",
    "ServingApp",
    "ServingClient",
    "ServingError",
    "ServingServer",
    "decode_grid",
    "decode_summary",
    "encode_grid",
    "encode_summary",
]
