"""Thin blocking HTTP client for the serving layer.

One persistent (keep-alive) connection per :class:`ServingClient`, built
on :mod:`http.client` -- no third-party HTTP stack.  Tests, examples,
and the load benchmark all speak to the server through this class, so
the wire format has exactly one encoder/decoder pair on each side
(:mod:`repro.serving.protocol`).

Error contract: any non-2xx response raises :class:`ServingError`
carrying the HTTP status, the server's machine-readable ``error`` code,
and -- for 503 backpressure/draining responses -- the parsed
``Retry-After`` seconds, so callers can implement retry loops without
scraping message strings.
"""

from __future__ import annotations

import http.client
import socket
from typing import Any, Sequence
from urllib.parse import quote, urlencode

import numpy as np

from repro.serving.protocol import (
    CONTENT_TYPE_COLUMNAR,
    IngestSummary,
    decode_summary,
    encode_grid,
    parse_json,
)

__all__ = ["ServingClient", "ServingError"]


class ServingError(RuntimeError):
    """A non-2xx reply from the serving layer."""

    def __init__(
        self,
        status: int,
        code: str,
        detail: str,
        retry_after: float | None = None,
    ):
        super().__init__(f"HTTP {status} [{code}]: {detail}")
        self.status = status
        self.code = code
        self.detail = detail
        self.retry_after = retry_after

    @property
    def retriable(self) -> bool:
        """True for backpressure/draining rejections worth retrying."""
        return self.status == 503


class ServingClient:
    """Blocking client over one keep-alive connection.

    Not thread-safe (``http.client`` connections are not); concurrent
    load uses one client per thread, as ``benchmarks/bench_serving.py``
    does.  Usable as a context manager.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------ plumbing

    def _request(
        self,
        method: str,
        path: str,
        query: dict | None = None,
        body: bytes | None = None,
        content_type: str | None = None,
    ) -> tuple[int, dict, bytes]:
        if query:
            path = f"{path}?{urlencode(query)}"
        headers = {}
        if content_type is not None:
            headers["Content-Type"] = content_type
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            payload = response.read()
        except (
            http.client.HTTPException,
            ConnectionError,
            socket.timeout,
            OSError,
        ):
            # the connection is poisoned; reconnect on the next call
            self.close_connection()
            raise
        reply_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        if reply_headers.get("connection", "").lower() == "close":
            self.close_connection()
        return response.status, reply_headers, payload

    @staticmethod
    def _raise_for_status(
        status: int, headers: dict, payload: bytes
    ) -> None:
        if 200 <= status < 300:
            return
        code, detail = "unknown", payload.decode("utf-8", "replace")
        try:
            parsed = parse_json(payload)
            if isinstance(parsed, dict):
                code = str(parsed.get("error", code))
                detail = str(parsed.get("detail", detail))
        except ValueError:
            pass
        retry_after: float | None = None
        if "retry-after" in headers:
            try:
                retry_after = float(headers["retry-after"])
            except ValueError:
                pass
        raise ServingError(status, code, detail, retry_after)

    def _get_json(self, path: str, query: dict | None = None) -> Any:
        status, headers, payload = self._request("GET", path, query=query)
        self._raise_for_status(status, headers, payload)
        return parse_json(payload)

    # ------------------------------------------------------------ endpoints

    def health(self) -> dict:
        """``GET /health`` -- parsed body even when the reply is 503."""
        status, _, payload = self._request("GET", "/health")
        parsed = parse_json(payload)
        if not isinstance(parsed, dict):  # pragma: no cover - server bug
            raise ServingError(status, "bad_health", "non-object health body")
        parsed["http_status"] = status
        return parsed

    def ingest(
        self,
        keys: Sequence[str],
        grid: np.ndarray,
        *,
        allow_partial: bool = False,
    ) -> IngestSummary:
        """``POST /v1/ingest`` one columnar ``(rounds, n_keys)`` grid."""
        query = {"allow_partial": "1"} if allow_partial else None
        status, headers, payload = self._request(
            "POST",
            "/v1/ingest",
            query=query,
            body=encode_grid(keys, grid),
            content_type=CONTENT_TYPE_COLUMNAR,
        )
        self._raise_for_status(status, headers, payload)
        return decode_summary(payload)

    def keys(self) -> list[str]:
        body = self._get_json("/v1/keys")
        return list(body["keys"])

    def series_stats(self, key: str) -> dict:
        return self._get_json(f"/v1/series/{quote(str(key), safe='')}/stats")

    def forecast(self, key: str, horizon: int = 1) -> np.ndarray:
        body = self._get_json(
            f"/v1/series/{quote(str(key), safe='')}/forecast",
            query={"h": str(int(horizon))},
        )
        return np.asarray(body["forecast"], dtype=float)

    def anomalies(
        self,
        *,
        limit: int | None = None,
        offset: int | None = None,
        cursor: str | None = None,
        sort: str | None = None,
    ) -> dict:
        """``GET /v1/anomalies`` -- returns the ``{items, page}`` body."""
        query: dict = {}
        if limit is not None:
            query["limit"] = str(int(limit))
        if offset is not None:
            query["offset"] = str(int(offset))
        if cursor is not None:
            query["cursor"] = cursor
        if sort is not None:
            query["sort"] = sort
        return self._get_json("/v1/anomalies", query=query or None)

    # ------------------------------------------------------------ lifecycle

    def close_connection(self) -> None:
        """Drop the keep-alive connection (a new one opens on next use)."""
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def close(self) -> None:
        self.close_connection()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
