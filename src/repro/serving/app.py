"""Framework-free request router over an engine or sharded-tier backend.

:class:`ServingApp` is the serving layer's core: a plain callable mapping
a :class:`Request` to a :class:`Response`, with **no** dependency on a
web framework or on sockets.  The asyncio server
(:mod:`repro.serving.server`) drives it over HTTP/1.1; tests drive it
directly with in-memory requests, so every endpoint behavior -- routing,
wire-format round-trips, pagination, backpressure -- is checked without a
single socket.

Endpoints
---------

=======  ==============================  =======================================
method   path                            behavior
=======  ==============================  =======================================
GET      ``/health``                     liveness + backend health (always
                                         served: exempt from backpressure and
                                         draining)
POST     ``/v1/ingest``                  columnar bulk ingest (binary frame in,
                                         columnar summary out;
                                         ``?allow_partial=1`` for degraded mode)
GET      ``/v1/keys``                    every series key
GET      ``/v1/series/{key}/stats``      one series' counters
GET      ``/v1/series/{key}/forecast``   ``?h=`` values ahead for a live series
GET      ``/v1/anomalies``               recent anomalies: ``limit`` /
                                         ``offset``, keyset ``cursor``
                                         (``{index}|{key}``), ``sort``
=======  ==============================  =======================================

Two backends adapt the stack below the wire: :class:`EngineBackend`
wraps a single (optionally durable) :class:`~repro.streaming.engine.
MultiSeriesEngine` session, :class:`RouterBackend` wraps a
:class:`~repro.sharding.ShardRouter` -- surfacing down shards and
quarantined keys through ``/health`` and serving ``allow_partial``
degraded ingests that name every skipped key.

Concurrency contract: :meth:`ServingApp.handle` is thread-safe.  Backend
calls that touch engine state are serialized by an internal lock (the
engine is single-threaded by design); ``/health`` and ``/v1/anomalies``
deliberately bypass that lock so the service keeps answering both while
a large ingest is running.  Admission control is a bounded in-flight
gate: past ``max_in_flight`` concurrently handled requests, further ones
are rejected immediately with ``503`` and a ``Retry-After`` header
instead of queueing without bound.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable
from urllib.parse import unquote

import numpy as np

from repro.serving.protocol import (
    CONTENT_TYPE_COLUMNAR,
    CONTENT_TYPE_JSON,
    IngestSummary,
    ProtocolError,
    decode_grid,
    dump_json,
    encode_summary,
)
from repro.streaming.engine import IngestResult, MultiSeriesEngine

__all__ = [
    "AnomalyEvent",
    "AnomalyRing",
    "BackendUnavailableError",
    "EngineBackend",
    "Request",
    "Response",
    "RouterBackend",
    "ServingApp",
    "SORTS",
]

#: accepted ``sort`` values for ``/v1/anomalies``
SORTS = ("-index", "index", "-score", "score", "key", "-key")

#: ``sort`` values the keyset cursor composes with (a cursor encodes a
#: position in the ``(index, key)`` order, which score sorts do not share)
_CURSOR_SORTS = ("-index", "index")


class BackendUnavailableError(RuntimeError):
    """The backend cannot serve this request right now (maps to 503)."""


@dataclass(slots=True)
class Request:
    """One request, transport-independent (the in-process test surface)."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def get(cls, path: str, **query: str) -> "Request":
        return cls(method="GET", path=path, query=dict(query))

    @classmethod
    def post(
        cls,
        path: str,
        body: bytes,
        content_type: str = CONTENT_TYPE_COLUMNAR,
        **query: str,
    ) -> "Request":
        return cls(
            method="POST",
            path=path,
            query=dict(query),
            headers={"content-type": content_type},
            body=body,
        )


@dataclass(slots=True)
class Response:
    """One response: status, body, and transport headers."""

    status: int
    body: bytes = b""
    content_type: str = CONTENT_TYPE_JSON
    headers: dict = field(default_factory=dict)

    def json(self) -> Any:
        """Parse the body as JSON (test/client convenience)."""
        import json

        return json.loads(self.body.decode("utf-8"))


def _json_response(status: int, payload: object, **headers: str) -> Response:
    return Response(
        status=status,
        body=dump_json(payload),
        content_type=CONTENT_TYPE_JSON,
        headers=dict(headers),
    )


def _error(status: int, code: str, detail: str, **headers: str) -> Response:
    return _json_response(
        status, {"error": code, "detail": detail}, **headers
    )


@dataclass(frozen=True, slots=True)
class AnomalyEvent:
    """One flagged anomaly, as the in-app ring retains it."""

    seq: int
    key: str
    index: int
    value: float
    anomaly_score: float
    residual: float

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "key": self.key,
            "index": self.index,
            "value": self.value,
            "anomaly_score": self.anomaly_score,
            "residual": self.residual,
        }


class AnomalyRing:
    """Bounded ring of recent anomalies, fed from ingest result arrays.

    The engine's output otherwise evaporates unless the caller keeps it;
    the serving layer retains the last ``capacity`` flagged anomalies so
    ``/v1/anomalies`` can answer "what just happened?" queries without a
    history store.  Appends are batched straight off the
    :class:`~repro.streaming.engine.IngestResult` arrays (one
    ``flatnonzero`` per request, Python work only per *anomaly*, never
    per point), and a monotonically increasing ``seq`` stamps arrival
    order.  Thread-safe: ingest threads append while listing threads
    snapshot.
    """

    def __init__(self, capacity: int = 4096):
        if int(capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._entries: deque[AnomalyEvent] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._seq = 0
        self._total = 0

    @property
    def capacity(self) -> int:
        return int(self._entries.maxlen or 0)

    @property
    def total_seen(self) -> int:
        """Anomalies ever appended (including ones the ring evicted)."""
        return self._total

    def __len__(self) -> int:
        return len(self._entries)

    def extend_from_result(
        self, round_keys: list, result: IngestResult
    ) -> int:
        """Append every anomaly in ``result`` (a ``round_keys`` grid ingest).

        Returns the number of events appended.  ``result`` rows cycle
        through ``round_keys`` round by round, so the key of row ``p`` is
        ``round_keys[p % len(round_keys)]`` -- no materialization of the
        full key list.
        """
        flagged = np.flatnonzero(result.is_anomaly)
        if flagged.size == 0:
            return 0
        n_keys = len(round_keys)
        positions = flagged.tolist()
        indices = result.index[flagged].tolist()
        values = result.value[flagged].tolist()
        scores = result.anomaly_score[flagged].tolist()
        residuals = result.residual[flagged].tolist()
        with self._lock:
            seq = self._seq
            append = self._entries.append
            for position, index, value, score, residual in zip(
                positions, indices, values, scores, residuals
            ):
                append(
                    AnomalyEvent(
                        seq=seq,
                        key=str(round_keys[position % n_keys]),
                        index=int(index),
                        value=value,
                        anomaly_score=score,
                        residual=residual,
                    )
                )
                seq += 1
            self._seq = seq
            self._total += flagged.size
        return int(flagged.size)

    def snapshot(self) -> list[AnomalyEvent]:
        """A consistent copy of the ring's contents, oldest first."""
        with self._lock:
            return list(self._entries)


class _InFlightGate:
    """Bounded admission counter: acquire-or-reject, never queue."""

    __slots__ = ("limit", "_count", "_lock")

    def __init__(self, limit: int):
        if int(limit) < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {limit}")
        self.limit = int(limit)
        self._count = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self._count >= self.limit:
                return False
            self._count += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._count -= 1

    @property
    def in_flight(self) -> int:
        return self._count


# --------------------------------------------------------------- backends


def _stats_dict(stats: Any) -> dict:
    return {
        "key": str(stats.key),
        "status": str(stats.status),
        "points": int(stats.points),
        "anomalies": int(stats.anomalies),
    }


class EngineBackend:
    """Serve a single :class:`MultiSeriesEngine` (optionally durable)."""

    kind = "engine"

    def __init__(self, engine: MultiSeriesEngine):
        self.engine = engine

    def health(self) -> dict:
        last_recovery = self.engine.last_recovery
        quarantined: tuple = ()
        if last_recovery is not None and not last_recovery.clean:
            quarantined = tuple(
                str(key) for key in last_recovery.affected_keys
            )
        return {
            "backend": self.kind,
            "status": "degraded" if quarantined else "ok",
            "series": len(self.engine),
            "durable": getattr(self.engine, "_store", None) is not None,
            "down_shards": [],
            "quarantined_keys": list(quarantined),
        }

    def ingest(
        self, keys: list, grid: np.ndarray, allow_partial: bool
    ) -> tuple[IngestResult, tuple, tuple]:
        # A single engine has no partial mode: it either serves the whole
        # grid or raises.  ``allow_partial`` is accepted for endpoint
        # parity with the sharded backend.
        result = self.engine.ingest_grid(keys, grid)
        return result, (), ()

    def keys(self) -> list:
        return self.engine.keys()

    def series_stats(self, key: Hashable) -> dict:
        return _stats_dict(self.engine.series_stats(key))

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        return self.engine.forecast(key, horizon)

    def checkpoint(self) -> None:
        if getattr(self.engine, "_store", None) is not None:
            self.engine.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        self.engine.close(checkpoint=checkpoint)


class RouterBackend:
    """Serve a sharded tier through a :class:`~repro.sharding.ShardRouter`.

    Degraded-mode plumbing: ``allow_partial`` ingests return the served
    slice plus the skipped keys / down shards, and :meth:`health`
    surfaces every shard's supervision state -- including circuit-open
    (down) shards and series quarantined by corrupt-store recovery -- so
    ``/health`` tells the whole truth about a limping cluster.
    """

    kind = "cluster"

    def __init__(self, router: Any):
        self.router = router

    def health(self) -> dict:
        shards = {}
        down: list[str] = []
        quarantined: list[str] = []
        for shard_id, shard in self.router.health().items():
            shards[shard_id] = {
                "state": shard.state,
                "pid": shard.pid,
                "restarts": shard.restarts,
                "consecutive_failures": shard.consecutive_failures,
                "points_confirmed": shard.points_confirmed,
                "last_error": shard.last_error,
                "quarantined_keys": [
                    str(key) for key in shard.quarantined_keys
                ],
            }
            if shard.state == "down":
                down.append(shard_id)
            quarantined.extend(shards[shard_id]["quarantined_keys"])
        status = "ok"
        if down or quarantined or any(
            entry["state"] != "up" for entry in shards.values()
        ):
            status = "degraded"
        return {
            "backend": self.kind,
            "status": status,
            "series": None,  # would need worker IPC; see /v1/keys
            "durable": True,
            "shards": shards,
            "down_shards": down,
            "quarantined_keys": quarantined,
        }

    def _shielded(self, call: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run a router call, mapping sharding failures to 503 material.

        Keeps the app free of sharding-exception coupling: anything in
        the :class:`~repro.sharding.ShardingError` hierarchy (down
        shards, crash loops, failovers) becomes
        :class:`BackendUnavailableError`; engine-level errors the worker
        relayed (``KeyError`` for unknown keys, ``RuntimeError`` for a
        warming forecast) pass through untouched for the per-endpoint
        status mapping.
        """
        from repro.sharding import ShardingError

        try:
            return call(*args, **kwargs)
        except ShardingError as error:
            raise BackendUnavailableError(str(error)) from error

    def ingest(
        self, keys: list, grid: np.ndarray, allow_partial: bool
    ) -> tuple[IngestResult, tuple, tuple]:
        outcome = self._shielded(
            self.router.ingest_grid, keys, grid, allow_partial=allow_partial
        )
        if allow_partial:
            return (
                outcome.result,
                tuple(outcome.skipped_keys),
                tuple(outcome.down_shards),
            )
        return outcome, (), ()

    def keys(self) -> list:
        merged: list = []
        for shard_keys in self._shielded(self.router.keys).values():
            merged.extend(shard_keys)
        return merged

    def series_stats(self, key: Hashable) -> dict:
        return _stats_dict(self._shielded(self.router.series_stats, key))

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        return self._shielded(self.router.forecast, key, horizon)

    def checkpoint(self) -> None:
        self._shielded(self.router.checkpoint)

    def close(self, checkpoint: bool = True) -> None:
        self.router.close(checkpoint=checkpoint)


# -------------------------------------------------------------------- app


def _query_int(
    query: dict, name: str, default: int, minimum: int, maximum: int
) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ValueError(f"query parameter {name!r} must be an integer")
    if not minimum <= value <= maximum:
        raise ValueError(
            f"query parameter {name!r} must be in [{minimum}, {maximum}]"
        )
    return value


def _query_flag(query: dict, name: str) -> bool:
    raw = str(query.get(name, "")).lower()
    return raw in ("1", "true", "yes", "on")


def _parse_cursor(raw: str) -> tuple[int, str]:
    index_text, separator, key = raw.partition("|")
    if not separator:
        raise ValueError(
            "cursor must be '{index}|{key}' (the next_cursor value of a "
            "previous page)"
        )
    try:
        return int(index_text), key
    except ValueError:
        raise ValueError(f"cursor index {index_text!r} is not an integer")


def _order_events(
    events: list[AnomalyEvent], sort: str
) -> list[AnomalyEvent]:
    reverse = sort.startswith("-")
    field_name = sort.lstrip("-")
    if field_name == "index":
        key: Callable[[AnomalyEvent], tuple] = lambda e: (e.index, e.key)
    elif field_name == "score":
        key = lambda e: (e.anomaly_score, e.index, e.key)
    else:  # "key"
        key = lambda e: (e.key, e.index)
    return sorted(events, key=key, reverse=reverse)


class ServingApp:
    """Route requests over a backend; see the module docstring.

    Parameters
    ----------
    backend:
        An :class:`EngineBackend` or :class:`RouterBackend` (anything
        with their surface works -- the app only calls the backend
        protocol).
    max_in_flight:
        Admission-control bound: requests (other than ``/health``)
        handled concurrently beyond this are rejected with ``503`` and
        ``Retry-After`` instead of queueing.
    anomaly_capacity:
        Size of the recent-anomaly ring behind ``/v1/anomalies``.
    default_limit / max_limit:
        Page-size defaults and ceiling for ``/v1/anomalies``.
    """

    def __init__(
        self,
        backend: Any,
        *,
        max_in_flight: int = 32,
        anomaly_capacity: int = 4096,
        default_limit: int = 50,
        max_limit: int = 1000,
    ):
        self.backend = backend
        self.ring = AnomalyRing(anomaly_capacity)
        self.gate = _InFlightGate(max_in_flight)
        self.default_limit = int(default_limit)
        self.max_limit = int(max_limit)
        #: set by the server at shutdown: reject new work, keep /health
        self.draining = False
        self._backend_lock = threading.Lock()

    # ------------------------------------------------------------ dispatch

    def handle(self, request: Request) -> Response:
        """Map one request to a response (thread-safe, never raises)."""
        segments = [
            unquote(part) for part in request.path.split("/") if part
        ]
        if segments == ["health"]:
            if request.method != "GET":
                return _error(405, "method_not_allowed", "use GET /health")
            return self._handle_health()
        if self.draining:
            return _error(
                503,
                "draining",
                "server is shutting down; no new requests",
                **{"Retry-After": "1", "Connection": "close"},
            )
        if not self.gate.try_acquire():
            return _error(
                503,
                "overloaded",
                f"more than {self.gate.limit} requests in flight; retry",
                **{"Retry-After": "1"},
            )
        try:
            return self._dispatch(request, segments)
        except BackendUnavailableError as error:
            return _error(
                503, "backend_unavailable", str(error), **{"Retry-After": "1"}
            )
        except Exception as error:  # noqa: BLE001 -- the wire needs a reply
            return _error(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        finally:
            self.gate.release()

    def _dispatch(self, request: Request, segments: list[str]) -> Response:
        if not segments or segments[0] != "v1":
            return _error(404, "not_found", f"no route for {request.path!r}")
        rest = segments[1:]
        if rest == ["ingest"]:
            if request.method != "POST":
                return _error(
                    405, "method_not_allowed", "use POST /v1/ingest"
                )
            return self._handle_ingest(request)
        if request.method != "GET":
            return _error(
                405, "method_not_allowed", f"use GET {request.path}"
            )
        if rest == ["keys"]:
            return self._handle_keys()
        if rest == ["anomalies"]:
            return self._handle_anomalies(request.query)
        if len(rest) == 3 and rest[0] == "series":
            if rest[2] == "stats":
                return self._handle_series_stats(rest[1])
            if rest[2] == "forecast":
                return self._handle_forecast(rest[1], request.query)
        return _error(404, "not_found", f"no route for {request.path!r}")

    # ------------------------------------------------------------ handlers

    def _handle_health(self) -> Response:
        # Deliberately lock-free: health must answer while an ingest holds
        # the backend lock (the backend's health() reads local state only).
        payload = self.backend.health()
        payload.update(
            {
                "draining": self.draining,
                "in_flight": self.gate.in_flight,
                "anomalies_retained": len(self.ring),
                "anomalies_seen": self.ring.total_seen,
            }
        )
        status = 200 if not self.draining else 503
        return _json_response(status, payload)

    def _handle_ingest(self, request: Request) -> Response:
        content_type = str(
            request.headers.get("content-type", CONTENT_TYPE_COLUMNAR)
        )
        if content_type.split(";")[0].strip() != CONTENT_TYPE_COLUMNAR:
            return _error(
                415,
                "unsupported_media_type",
                f"POST /v1/ingest expects {CONTENT_TYPE_COLUMNAR}",
            )
        try:
            keys, grid = decode_grid(request.body)
        except ProtocolError as error:
            return _error(400, "bad_frame", str(error))
        allow_partial = _query_flag(request.query, "allow_partial")
        try:
            with self._backend_lock:
                result, skipped, down = self.backend.ingest(
                    keys, grid, allow_partial
                )
        except (ValueError, TypeError) as error:
            # The engine's batch contract: a rejected observation raises
            # with the preceding prefix applied; say so explicitly.
            return _error(
                422,
                "rejected",
                f"{type(error).__name__}: {error} (observations before "
                "the offending one are applied; re-send only the tail)",
            )
        self.ring.extend_from_result(keys, result)
        summary = self._summarize(keys, grid.shape[0], result, skipped, down)
        return Response(
            status=200,
            body=encode_summary(summary),
            content_type=CONTENT_TYPE_COLUMNAR,
        )

    @staticmethod
    def _summarize(
        keys: list,
        rounds: int,
        result: IngestResult,
        skipped: tuple,
        down: tuple,
    ) -> IngestSummary:
        n_keys = len(keys)
        if rounds * n_keys:
            per_key_anomalies = (
                result.is_anomaly.reshape(rounds, n_keys)
                .sum(axis=0)
                .astype(np.int64)
            )
            scores = result.anomaly_score.reshape(rounds, n_keys)
            live = result.live.reshape(rounds, n_keys)
            # last live score per key, NaN when never live in this batch
            last_score = np.full(n_keys, np.nan)
            any_live = live.any(axis=0)
            if any_live.any():
                last_live_round = (
                    live.shape[0] - 1 - np.argmax(live[::-1], axis=0)
                )
                columns = np.flatnonzero(any_live)
                last_score[columns] = scores[last_live_round[columns], columns]
        else:
            per_key_anomalies = np.zeros(n_keys, dtype=np.int64)
            last_score = np.full(n_keys, np.nan)
        points = np.full(n_keys, int(rounds), dtype=np.int64)
        if skipped:
            skipped_set = set(skipped)
            mask = np.fromiter(
                (key in skipped_set for key in keys), dtype=bool, count=n_keys
            )
            points[mask] = 0
            per_key_anomalies[mask] = 0
            last_score[mask] = np.nan
        return IngestSummary(
            keys=tuple(str(key) for key in keys),
            points=points,
            anomalies=per_key_anomalies,
            last_score=last_score,
            rows=int(points.sum()),
            anomalies_total=int(per_key_anomalies.sum()),
            skipped_keys=tuple(str(key) for key in skipped),
            down_shards=tuple(str(shard) for shard in down),
        )

    def _handle_keys(self) -> Response:
        with self._backend_lock:
            keys = [str(key) for key in self.backend.keys()]
        keys.sort()
        return _json_response(200, {"keys": keys, "count": len(keys)})

    def _handle_series_stats(self, key: str) -> Response:
        try:
            with self._backend_lock:
                stats = self.backend.series_stats(key)
        except KeyError:
            return _error(404, "unknown_key", f"no series {key!r}")
        return _json_response(200, stats)

    def _handle_forecast(self, key: str, query: dict) -> Response:
        try:
            horizon = _query_int(query, "h", default=1, minimum=1, maximum=100_000)
        except ValueError as error:
            return _error(400, "bad_query", str(error))
        try:
            with self._backend_lock:
                values = self.backend.forecast(key, horizon)
        except KeyError:
            return _error(404, "unknown_key", f"no series {key!r}")
        except BackendUnavailableError:
            raise  # a RuntimeError subclass, but it means 503, not 409
        except RuntimeError as error:
            # the engine's "still warming up" refusal
            return _error(409, "not_live", str(error))
        return _json_response(
            200,
            {
                "key": key,
                "horizon": horizon,
                "forecast": np.asarray(values, dtype=float).tolist(),
            },
        )

    def _handle_anomalies(self, query: dict) -> Response:
        try:
            limit = _query_int(
                query, "limit", self.default_limit, 1, self.max_limit
            )
            offset = _query_int(query, "offset", 0, 0, 10**9)
        except ValueError as error:
            return _error(400, "bad_query", str(error))
        sort = str(query.get("sort", "-index"))
        if sort not in SORTS:
            return _error(
                400,
                "bad_sort",
                f"sort must be one of {list(SORTS)}, got {sort!r}",
            )
        cursor_raw = query.get("cursor")
        cursor: tuple[int, str] | None = None
        if cursor_raw is not None:
            if sort not in _CURSOR_SORTS:
                return _error(
                    400,
                    "bad_cursor",
                    "cursor pagination requires an index sort "
                    f"({list(_CURSOR_SORTS)}); got sort={sort!r}",
                )
            try:
                cursor = _parse_cursor(str(cursor_raw))
            except ValueError as error:
                return _error(400, "bad_cursor", str(error))
        ordered = _order_events(self.ring.snapshot(), sort)
        total = len(ordered)
        if cursor is not None:
            if sort == "-index":
                ordered = [
                    event
                    for event in ordered
                    if (event.index, event.key) < cursor
                ]
            else:
                ordered = [
                    event
                    for event in ordered
                    if (event.index, event.key) > cursor
                ]
        page = ordered[offset : offset + limit]
        has_more = offset + limit < len(ordered)
        next_cursor = None
        if has_more and page and sort in _CURSOR_SORTS:
            last = page[-1]
            next_cursor = f"{last.index}|{last.key}"
        return _json_response(
            200,
            {
                "items": [event.to_dict() for event in page],
                "page": {
                    "total": total,
                    "limit": limit,
                    "offset": offset,
                    "next_cursor": next_cursor,
                    "has_more": has_more,
                },
            },
        )

    # ----------------------------------------------------------- lifecycle

    def checkpoint(self) -> None:
        """Checkpoint the backend (serialized with in-flight requests)."""
        with self._backend_lock:
            self.backend.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Close the backend (checkpointing first by default)."""
        with self._backend_lock:
            self.backend.close(checkpoint=checkpoint)
