"""``python -m repro.serving`` -- launch the HTTP serving layer.

Single-engine mode (one durable session on one store directory)::

    python -m repro.serving --store /var/lib/fleet --port 8080
    python -m repro.serving --store /var/lib/fresh --period 24 --port 8080
    python -m repro.serving --store /var/lib/fresh --spec engine_spec.json

Sharded mode (front a whole cluster; workers are spawned per the spec)::

    python -m repro.serving --cluster cluster_spec.json --port 8080

The process prints one ready line (``repro-serving ready on http://...``)
once the socket is bound, serves until SIGTERM/SIGINT, then drains
in-flight requests, checkpoints, releases the store lease, and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.serving.app import EngineBackend, RouterBackend, ServingApp
from repro.serving.server import ServingServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve a streaming decomposition engine over HTTP.",
    )
    backend = parser.add_mutually_exclusive_group(required=True)
    backend.add_argument(
        "--store",
        metavar="DIR",
        help="checkpoint-store directory for a single durable engine "
        "session (created/recovered; the server holds its lease)",
    )
    backend.add_argument(
        "--cluster",
        metavar="SPEC.json",
        help="ClusterSpec JSON file: serve a sharded tier instead",
    )
    parser.add_argument(
        "--spec",
        metavar="SPEC.json",
        help="EngineSpec JSON for a *fresh* --store (an existing store "
        "recovers from its manifest and must not pass one)",
    )
    parser.add_argument(
        "--period",
        type=int,
        metavar="N",
        help="shorthand for a fresh --store: a OneShotSTL engine with "
        "this period (mutually exclusive with --spec)",
    )
    parser.add_argument(
        "--recovery",
        default="strict",
        choices=("strict", "truncate", "quarantine"),
        help="recovery policy when opening an existing --store",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=32,
        help="requests handled concurrently before 503 backpressure",
    )
    parser.add_argument(
        "--anomaly-ring",
        type=int,
        default=4096,
        help="recent anomalies retained for GET /v1/anomalies",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also checkpoint periodically while serving",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="handler thread-pool size",
    )
    return parser


def _engine_backend(args: argparse.Namespace) -> EngineBackend:
    from repro.durability import DirectoryCheckpointStore
    from repro.streaming.engine import MultiSeriesEngine

    if args.spec and args.period:
        raise SystemExit("--spec and --period are mutually exclusive")
    store = DirectoryCheckpointStore(args.store, exclusive=True)
    spec = None
    if store.read_manifest() is None:
        if args.spec:
            from repro.specs import EngineSpec

            spec = EngineSpec.from_json(
                Path(args.spec).read_text(encoding="utf-8")
            )
        elif args.period:
            engine = MultiSeriesEngine.for_oneshotstl(int(args.period))
            engine.attach_store(store)
            return EngineBackend(engine)
        else:
            store.close()
            raise SystemExit(
                f"store {args.store!r} is empty: pass --spec SPEC.json or "
                "--period N to configure the fresh session"
            )
    elif args.spec or args.period:
        store.close()
        raise SystemExit(
            f"store {args.store!r} already holds a session; it recovers "
            "from its manifest (drop --spec/--period)"
        )
    engine = MultiSeriesEngine.open(store, spec=spec, recovery=args.recovery)
    return EngineBackend(engine)


def _router_backend(args: argparse.Namespace) -> RouterBackend:
    from repro.sharding import ClusterSpec, ShardRouter

    if args.spec or args.period:
        raise SystemExit("--spec/--period only apply to --store mode")
    cluster = ClusterSpec.from_json(
        Path(args.cluster).read_text(encoding="utf-8")
    )
    return RouterBackend(ShardRouter(cluster))


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.cluster:
        backend = _router_backend(args)
    else:
        backend = _engine_backend(args)
    app = ServingApp(
        backend,
        max_in_flight=args.max_in_flight,
        anomaly_capacity=args.anomaly_ring,
    )
    server = ServingServer(
        app,
        host=args.host,
        port=args.port,
        workers=args.workers,
        checkpoint_interval=args.checkpoint_interval,
    )
    return server.run()


if __name__ == "__main__":
    sys.exit(main())
