"""Fixed-capacity ring buffer used by the streaming components."""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive_int

__all__ = ["RingBuffer"]


class RingBuffer:
    """A fixed-capacity float ring buffer backed by a numpy array.

    Appending is O(1); :meth:`to_array` materializes the contents in
    insertion order (oldest first).
    """

    def __init__(self, capacity: int):
        self.capacity = check_positive_int(capacity, "capacity")
        self._storage = np.zeros(self.capacity)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count == self.capacity

    def append(self, value: float) -> None:
        self._storage[self._next] = float(value)
        self._next = (self._next + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def latest(self) -> float:
        if self._count == 0:
            raise ValueError("the buffer is empty")
        return float(self._storage[(self._next - 1) % self.capacity])

    def to_array(self) -> np.ndarray:
        if self._count < self.capacity:
            return self._storage[: self._count].copy()
        return np.concatenate(
            [self._storage[self._next :], self._storage[: self._next]]
        )

    def clear(self) -> None:
        self._next = 0
        self._count = 0
