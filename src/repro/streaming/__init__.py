"""Streaming execution utilities: pipelines, buffers and latency measurement."""

from repro.streaming.buffer import RingBuffer
from repro.streaming.latency import LatencyReport, measure_update_latency
from repro.streaming.pipeline import StreamingPipeline, StreamRecord

__all__ = [
    "LatencyReport",
    "RingBuffer",
    "StreamRecord",
    "StreamingPipeline",
    "measure_update_latency",
]
