"""Streaming execution utilities: pipelines, engines, buffers and latency."""

from repro.streaming.buffer import RingBuffer
from repro.streaming.engine import (
    CHECKPOINT_FORMAT_VERSION,
    EngineRecord,
    FleetStats,
    IngestResult,
    MultiSeriesEngine,
    SeriesStats,
    SeriesStatus,
)
from repro.streaming.latency import (
    LatencyReport,
    measure_update_latency,
    summarize_latencies,
)
from repro.streaming.pipeline import StreamingPipeline, StreamRecord

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "EngineRecord",
    "FleetStats",
    "IngestResult",
    "LatencyReport",
    "MultiSeriesEngine",
    "RingBuffer",
    "SeriesStats",
    "SeriesStatus",
    "StreamRecord",
    "StreamingPipeline",
    "measure_update_latency",
    "summarize_latencies",
]
