"""Streaming execution utilities: pipelines, engines, buffers and latency."""

from repro.streaming.buffer import RingBuffer
from repro.streaming.engine import (
    EngineRecord,
    FleetStats,
    MultiSeriesEngine,
    SeriesStats,
)
from repro.streaming.latency import (
    LatencyReport,
    measure_update_latency,
    summarize_latencies,
)
from repro.streaming.pipeline import StreamingPipeline, StreamRecord

__all__ = [
    "EngineRecord",
    "FleetStats",
    "LatencyReport",
    "MultiSeriesEngine",
    "RingBuffer",
    "SeriesStats",
    "StreamRecord",
    "StreamingPipeline",
    "measure_update_latency",
    "summarize_latencies",
]
