"""End-to-end streaming pipeline: decomposition -> scoring -> forecasting.

:class:`StreamingPipeline` wires an online decomposer to the downstream
consumers described in the paper's Section 4: a residual-based anomaly
scorer and the periodic-continuation forecaster.  It is the object a
downstream user would embed in a monitoring service, and it is what the
example applications use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomaly.nsigma import NSigma
from repro.decomposition.base import OnlineDecomposer
from repro.utils import as_float_array, check_positive_int

__all__ = ["StreamRecord", "StreamingPipeline"]


@dataclass(frozen=True)
class StreamRecord:
    """Everything the pipeline derives from one observation.

    ``residual`` is the residual of the returned decomposition (for
    OneShotSTL this is *after* any seasonality-shift correction), while
    ``detection_residual`` is the residual the anomaly scorer consumed --
    the pre-correction value when the decomposer exposes one, otherwise
    identical to ``residual``.
    """

    index: int
    value: float
    trend: float
    seasonal: float
    residual: float
    anomaly_score: float
    is_anomaly: bool
    detection_residual: float = 0.0


class StreamingPipeline:
    """Online decomposition with anomaly scoring and forecasting.

    Parameters
    ----------
    decomposer:
        Any online decomposer (OneShotSTL, OnlineSTL, a windowed batch
        method, ...).
    anomaly_threshold:
        NSigma threshold applied to the decomposed residual.
    """

    def __init__(self, decomposer: OnlineDecomposer, anomaly_threshold: float = 5.0):
        self.decomposer = decomposer
        self.scorer = NSigma(anomaly_threshold)
        self._index = 0
        self._initialized = False

    def initialize(self, values) -> None:
        """Run the decomposer's initialization phase and warm up the scorer."""
        values = as_float_array(values, "values", min_length=2)
        result = self.decomposer.initialize(values)
        for residual_value in result.residual:
            self.scorer.update(float(residual_value))
        self._index = values.size
        self._initialized = True

    def process(self, value: float) -> StreamRecord:
        """Consume one observation and return the derived record."""
        if not self._initialized:
            raise RuntimeError("initialize() must be called before process()")
        point = self.decomposer.update(float(value))
        # Score the decomposer's *detection* residual when it exposes one:
        # OneShotSTL's seasonality-shift search rewrites the residual of a
        # point it re-explains as a shift, so scoring the post-correction
        # residual would silently explain genuine spikes away (the model's
        # own docs warn about exactly this).
        detection_residual = getattr(self.decomposer, "last_detection_residual", None)
        if detection_residual is None:
            detection_residual = point.residual
        detection_residual = float(detection_residual)
        verdict = self.scorer.update(detection_residual)
        record = StreamRecord(
            index=self._index,
            value=point.value,
            trend=point.trend,
            seasonal=point.seasonal,
            residual=point.residual,
            anomaly_score=verdict.score,
            is_anomaly=verdict.is_anomaly,
            detection_residual=detection_residual,
        )
        self._index += 1
        return record

    def process_many(self, values) -> list[StreamRecord]:
        """Convenience wrapper around :meth:`process` for a chunk of values."""
        return [self.process(float(value)) for value in np.asarray(values, dtype=float)]

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast future values if the underlying decomposer supports it."""
        horizon = check_positive_int(horizon, "horizon")
        forecaster = getattr(self.decomposer, "forecast", None)
        if forecaster is None:
            raise AttributeError(
                f"{type(self.decomposer).__name__} does not implement forecasting"
            )
        return forecaster(horizon)
