"""End-to-end streaming pipeline: decomposition -> scoring -> forecasting.

:class:`StreamingPipeline` wires an online decomposer to the downstream
consumers described in the paper's Section 4: a residual-based anomaly
scorer and the periodic-continuation forecaster.  It is the object a
downstream user would embed in a monitoring service, and it is what the
example applications use.

Pipelines are **spec-native**: :meth:`StreamingPipeline.from_spec` builds
one from a declarative :class:`~repro.specs.PipelineSpec` (plain data,
JSON round-trippable), and :attr:`StreamingPipeline.spec` reports the spec
of a pipeline whose components are registered -- which is what lets the
multi-series engine persist its configuration inside a portable
checkpoint.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass

from repro.analysis import hotpath
from repro.anomaly.nsigma import NSigma
from repro.decomposition.base import OnlineDecomposer
from repro.utils import as_float_array, check_positive_int

__all__ = ["StreamRecord", "StreamingPipeline"]


@dataclass(frozen=True, slots=True)
class StreamRecord:
    """Everything the pipeline derives from one observation.

    ``residual`` is the residual of the returned decomposition (for
    OneShotSTL this is *after* any seasonality-shift correction), while
    ``detection_residual`` is the residual the anomaly scorer consumed --
    the pre-correction value when the decomposer exposes one, otherwise
    identical to ``residual``.

    Slotted (no per-instance ``__dict__``): records are built once per
    observation per series, so their construction cost and memory footprint
    sit directly on the engine's hot path -- and the columnar
    :class:`~repro.streaming.engine.IngestResult` materializes them lazily
    for exactly that reason.
    """

    index: int
    value: float
    trend: float
    seasonal: float
    residual: float
    anomaly_score: float
    is_anomaly: bool
    detection_residual: float = 0.0


class StreamingPipeline:
    """Online decomposition with anomaly scoring and forecasting.

    Parameters
    ----------
    decomposer:
        Any online decomposer (OneShotSTL, OnlineSTL, a windowed batch
        method, ...).
    anomaly_threshold:
        NSigma threshold applied to the decomposed residual (ignored when
        an explicit ``scorer`` is passed).
    scorer:
        Optional streaming scorer instance (``update(value) -> verdict``
        with ``score`` / ``is_anomaly`` fields); defaults to
        ``NSigma(anomaly_threshold)``.
    """

    def __init__(
        self,
        decomposer: OnlineDecomposer,
        anomaly_threshold: float = 5.0,
        scorer=None,
    ):
        self.decomposer = decomposer
        self.scorer = scorer if scorer is not None else NSigma(anomaly_threshold)
        self._index = 0
        self._initialized = False
        self._spec = None

    # -------------------------------------------------------- configuration

    @classmethod
    def from_spec(cls, spec) -> "StreamingPipeline":
        """Build a fresh pipeline from a :class:`~repro.specs.PipelineSpec`."""
        from repro.specs import PipelineSpec

        if not isinstance(spec, PipelineSpec):
            raise TypeError(
                f"from_spec() expects a PipelineSpec, got {type(spec).__name__}"
            )
        pipeline = cls(spec.decomposer.build(), scorer=spec.detector.build())
        pipeline._spec = spec
        return pipeline

    @property
    def spec(self):
        """The :class:`~repro.specs.PipelineSpec` describing this pipeline.

        For spec-built pipelines this is the spec that was used; for
        hand-constructed ones it is derived from the components' registry
        names and ``get_params()``.  ``None`` when the configuration cannot
        be expressed declaratively (unregistered component classes or
        non-primitive constructor arguments).
        """
        if self._spec is not None:
            return self._spec
        from repro.specs import DecomposerSpec, DetectorSpec, PipelineSpec, spec_of

        decomposer_spec = spec_of(self.decomposer, DecomposerSpec)
        detector_spec = spec_of(self.scorer, DetectorSpec)
        if decomposer_spec is None or detector_spec is None:
            return None
        return PipelineSpec(decomposer=decomposer_spec, detector=detector_spec)

    # ------------------------------------------------------------ streaming

    def initialize(self, values) -> None:
        """Run the decomposer's initialization phase and warm up the scorer."""
        values = as_float_array(values, "values", min_length=2)
        result = self.decomposer.initialize(values)
        for residual_value in result.residual:
            self.scorer.update(float(residual_value))
        self._index = values.size
        self._initialized = True

    @hotpath
    def process(self, value: float) -> StreamRecord:
        """Consume one observation and return the derived record.

        Non-finite inputs are rejected with ``ValueError`` before they can
        reach (and silently poison) the decomposer's solver state.  The one
        sanctioned exception is NaN fed to a decomposer that declares
        ``supports_missing`` (OneShotSTL): there NaN is the documented
        missing-value marker and is imputed by the model itself.
        """
        if not self._initialized:
            raise RuntimeError("initialize() must be called before process()")
        value = float(value)
        if not np.isfinite(value) and not (
            np.isnan(value) and getattr(self.decomposer, "supports_missing", False)
        ):
            raise ValueError(
                f"process() received a non-finite value ({value}); only "
                "decomposers with missing-value support accept NaN, and "
                "infinities are never valid observations"
            )
        point = self.decomposer.update(value)
        # Score the decomposer's *detection* residual when it exposes one:
        # OneShotSTL's seasonality-shift search rewrites the residual of a
        # point it re-explains as a shift, so scoring the post-correction
        # residual would silently explain genuine spikes away (the model's
        # own docs warn about exactly this).
        detection_residual = getattr(self.decomposer, "last_detection_residual", None)
        if detection_residual is None:
            detection_residual = point.residual
        detection_residual = float(detection_residual)
        verdict = self.scorer.update(detection_residual)
        record = StreamRecord(
            index=self._index,
            value=point.value,
            trend=point.trend,
            seasonal=point.seasonal,
            residual=point.residual,
            anomaly_score=verdict.score,
            is_anomaly=verdict.is_anomaly,
            detection_residual=detection_residual,
        )
        self._index += 1
        return record

    def process_many(self, values) -> list[StreamRecord]:
        """Convenience wrapper around :meth:`process` for a chunk of values."""
        return [self.process(float(value)) for value in np.asarray(values, dtype=float)]

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast future values if the underlying decomposer supports it."""
        horizon = check_positive_int(horizon, "horizon")
        forecaster = getattr(self.decomposer, "forecast", None)
        if forecaster is None:
            raise AttributeError(
                f"{type(self.decomposer).__name__} does not implement forecasting"
            )
        return forecaster(horizon)
