"""Multi-series streaming engine: one process, thousands of monitored metrics.

The paper's pitch is that an O(1) online decomposition is cheap enough to
run on *every* monitored metric.  :class:`MultiSeriesEngine` is the serving
layer that makes that concrete: it multiplexes any number of independent
keyed streams over the shared fast kernel, with

* **declarative configuration** -- the engine is built from an
  :class:`~repro.specs.EngineSpec` (:meth:`from_spec`, or the
  :meth:`for_oneshotstl` shorthand): plain JSON-able data naming the
  decomposer/scorer by registry name, with optional per-key
  :class:`~repro.specs.PipelineSpec` overrides so heterogeneous fleets
  (different periods or thresholds per metric class) live in one engine;
  :attr:`spec` reports the configuration in use;
* **batched ingest over a columnar fleet kernel** -- ``ingest`` accepts a
  row batch ``[(key, value), ...]``, a columnar batch ``{key: values}`` or
  parallel ``(keys, values)`` arrays, and routes same-configuration live
  series through a struct-of-arrays :class:`~repro.core.fleet.FleetKernel`
  that advances the whole group with a handful of NumPy array operations
  per point instead of a Python loop -- with outputs *exactly* equal to the
  per-series scalar path (series are grouped by their
  :class:`~repro.specs.PipelineSpec`; warming, incompatible or
  shift-diverging series fall back per series);
* **per-series lazy initialization** -- the first observation of an unseen
  key creates its pipeline; values are buffered until the configured
  initialization window is full, then the batch initialization phase runs
  and the series goes live;
* **portable versioned checkpoints** -- :meth:`save` writes
  ``{format_version, engine_spec, per-series state}`` to a file and
  :meth:`MultiSeriesEngine.load` rebuilds a fully equivalent engine from
  that file alone, in a different process if desired; the in-memory
  :meth:`snapshot` / :meth:`restore` pair remains for cheap same-process
  rewind;
* **fleet statistics** -- :meth:`fleet_stats` aggregates anomaly counts and
  per-key update-latency percentiles (via
  :func:`repro.streaming.latency.summarize_latencies`) across the fleet.

Every series is an ordinary :class:`~repro.streaming.pipeline.StreamingPipeline`,
so the engine's outputs are *identical* to running N independent pipelines
by hand -- the test suite asserts this -- while amortizing the per-call
overhead and centralizing bookkeeping.
"""

from __future__ import annotations

import copy
import enum
import pickle
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Iterable, Tuple

import numpy as np

from repro.core.fleet import ColumnarNSigma, FleetKernel
from repro.core.nsigma import NSigma
from repro.core.oneshotstl import OneShotSTL
from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec
from repro.streaming.buffer import RingBuffer
from repro.streaming.latency import LatencyReport, summarize_latencies
from repro.streaming.pipeline import StreamingPipeline, StreamRecord
from repro.utils import check_positive_int

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "EngineRecord",
    "FleetStats",
    "MultiSeriesEngine",
    "SeriesStatus",
    "SeriesStats",
]

#: version stamp written into (and required from) portable checkpoints
CHECKPOINT_FORMAT_VERSION = 1


class SeriesStatus(str, enum.Enum):
    """Lifecycle status of one keyed series.

    String-valued for backward compatibility: ``SeriesStatus.WARMING ==
    "warming"`` holds, and ``str()``/formatting yield the bare value, so
    code comparing against or logging the old strings keeps working.
    """

    WARMING = "warming"
    LIVE = "live"

    # Python 3.11+ makes plain str-mixin enums render as
    # "SeriesStatus.WARMING"; keep the pre-enum log/format output.
    __str__ = str.__str__
    __format__ = str.__format__


#: deprecated aliases kept for backward compatibility
WARMING = SeriesStatus.WARMING
LIVE = SeriesStatus.LIVE


@dataclass(frozen=True)
class EngineRecord:
    """Outcome of ingesting one observation for one key.

    ``record`` is ``None`` while the series is still warming (the value was
    buffered for the initialization window); once the series is live it
    carries the full per-point :class:`StreamRecord`.
    """

    key: Hashable
    status: SeriesStatus
    record: StreamRecord | None

    @property
    def is_anomaly(self) -> bool:
        return self.record is not None and self.record.is_anomaly


@dataclass(frozen=True)
class SeriesStats:
    """Aggregated statistics of a single keyed series."""

    key: Hashable
    status: SeriesStatus
    points: int
    anomalies: int
    latency: LatencyReport | None


@dataclass(frozen=True)
class FleetStats:
    """Aggregated statistics of the whole fleet."""

    series_total: int
    series_live: int
    series_warming: int
    points_total: int
    anomalies_total: int
    per_series: dict = field(default_factory=dict)


class _SeriesState:
    """Internal per-key record: pipeline, warmup buffer and counters."""

    __slots__ = ("pipeline", "warmup", "live", "points", "anomalies", "latencies")

    def __init__(self, pipeline: StreamingPipeline, latency_window: int):
        self.pipeline = pipeline
        self.warmup: list[float] = []
        self.live = False
        self.points = 0
        self.anomalies = 0
        self.latencies = RingBuffer(latency_window)


class _FleetGroup:
    """Columnar state of one same-spec cohort of live series.

    While a series is *absorbed* into a group, the columnar arrays (the
    :class:`FleetKernel`, the columnar pipeline scorer, the per-series
    record indices and the pending point/anomaly counters) are
    authoritative and the series' pipeline object is stale; the engine
    re-materializes the object state at every boundary that needs it
    (single-key ``process``/``forecast``, ``series_stats``,
    ``snapshot``/``save``).  ``_FleetGroup`` is engine-internal bookkeeping
    and is deliberately *not* part of the checkpoint format: checkpoints
    carry only the ordinary per-series state, so the on-disk format is
    identical whether or not the kernel path ever ran.
    """

    __slots__ = (
        "spec",
        "keys",
        "column_of",
        "kernel",
        "scorer",
        "indices",
        "points_pending",
        "anomalies_pending",
    )

    def __init__(self, spec: PipelineSpec):
        self.spec = spec
        self.keys: list = []
        self.column_of: dict = {}
        self.kernel: FleetKernel | None = None
        self.scorer: ColumnarNSigma | None = None
        self.indices = np.zeros(0, dtype=np.int64)
        self.points_pending = np.zeros(0, dtype=np.int64)
        self.anomalies_pending = np.zeros(0, dtype=np.int64)

    @property
    def n_series(self) -> int:
        return len(self.keys)

    def absorb(self, keys: list, states: list) -> None:
        """Append a cohort of live series to the columnar arrays at once.

        Batching the absorption matters: packing ``m`` new members costs
        one concatenation instead of ``m`` array growths, so a fleet that
        goes live in the same ingest round (the common case -- every series
        warmed on the same schedule) is absorbed in O(fleet) total.
        """
        new_kernel = FleetKernel.pack(
            [state.pipeline.decomposer for state in states]
        )
        new_scorer = ColumnarNSigma.pack(
            [state.pipeline.scorer for state in states]
        )
        if self.kernel is None:
            self.kernel = new_kernel
            self.scorer = new_scorer
        else:
            self.kernel.append(new_kernel)
            self.scorer.append(new_scorer)
        self.indices = np.concatenate(
            [
                self.indices,
                np.array(
                    [state.pipeline._index for state in states], dtype=np.int64
                ),
            ]
        )
        grown = len(states)
        self.points_pending = np.concatenate(
            [self.points_pending, np.zeros(grown, dtype=np.int64)]
        )
        self.anomalies_pending = np.concatenate(
            [self.anomalies_pending, np.zeros(grown, dtype=np.int64)]
        )
        for key in keys:
            self.column_of[key] = len(self.keys)
            self.keys.append(key)

    def sync_series(self, column: int, state: _SeriesState) -> None:
        """Write column ``column`` back into the series' object state."""
        pipeline = state.pipeline
        self.kernel.write_into(column, pipeline.decomposer)
        self.scorer.write_into(column, pipeline.scorer)
        pipeline._index = int(self.indices[column])
        self.flush_counters(column, state)

    def load_series(self, column: int, state: _SeriesState) -> None:
        """Refresh column ``column`` from the series' object state."""
        pipeline = state.pipeline
        self.kernel.load(column, pipeline.decomposer)
        self.scorer.load(column, pipeline.scorer)
        self.indices[column] = pipeline._index

    def flush_counters(self, column: int, state: _SeriesState) -> None:
        """Fold the column's pending counters into the series' counters."""
        state.points += int(self.points_pending[column])
        state.anomalies += int(self.anomalies_pending[column])
        self.points_pending[column] = 0
        self.anomalies_pending[column] = 0


class MultiSeriesEngine:
    """A keyed fleet of online decomposition pipelines behind one ingest API.

    The supported way to construct an engine is from a declarative
    :class:`~repro.specs.EngineSpec` -- :meth:`from_spec`, or
    :meth:`for_oneshotstl` for the common case -- because only spec-built
    engines can be persisted with :meth:`save`.  Passing a
    ``pipeline_factory`` callable directly is deprecated (it cannot be
    serialized, shipped to a worker, or rebuilt from a checkpoint) but
    still works for fully custom pipelines.

    Parameters
    ----------
    pipeline_factory:
        Deprecated.  Callable invoked with a series key the first time that
        key appears; must return a *fresh* :class:`StreamingPipeline` (or
        any object with the same ``initialize`` / ``process`` / ``forecast``
        interface).  Use an :class:`~repro.specs.EngineSpec` with per-key
        ``overrides`` instead.
    initialization_length:
        Number of leading observations buffered per series before its batch
        initialization phase runs.  Should cover at least two seasonal
        periods of the slowest configured decomposer (the paper uses about
        four).  Warmup values must be finite (non-finite samples are
        rejected with ``ValueError`` before they can poison the window);
        once live, NaN gaps are handled by the decomposer's own
        missing-value imputation.
    latency_window:
        Number of most recent per-point processing durations retained per
        series for the latency percentiles in :meth:`fleet_stats`.
    track_latency:
        Set to False to skip the two clock reads per point (marginally
        faster ingest, no latency percentiles in the stats).
    spec:
        Keyword-only.  An :class:`~repro.specs.EngineSpec` that fully
        configures the engine; mutually exclusive with the other
        parameters.  Prefer :meth:`from_spec`.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[Hashable], StreamingPipeline] | None = None,
        initialization_length: int | None = None,
        latency_window: int | None = None,
        track_latency: bool | None = None,
        *,
        spec: EngineSpec | None = None,
    ):
        if spec is not None:
            if (
                pipeline_factory is not None
                or initialization_length is not None
                or latency_window is not None
                or track_latency is not None
            ):
                raise ValueError(
                    "pass either spec= or (pipeline_factory, "
                    "initialization_length, latency_window, track_latency), "
                    "not both; a spec-built engine takes every setting from "
                    "the spec"
                )
            if not isinstance(spec, EngineSpec):
                raise TypeError(
                    f"spec must be an EngineSpec, got {type(spec).__name__}"
                )
            self.spec: EngineSpec | None = spec
            pipeline_factory = self._spec_factory(spec)
            initialization_length = spec.initialization_length
            latency_window = spec.latency_window
            track_latency = spec.track_latency
        else:
            if pipeline_factory is None or initialization_length is None:
                raise TypeError(
                    "MultiSeriesEngine requires either spec= or both "
                    "pipeline_factory and initialization_length"
                )
            warnings.warn(
                "constructing MultiSeriesEngine from a pipeline factory is "
                "deprecated: factory-built engines cannot be saved to a "
                "portable checkpoint.  Describe the fleet with an "
                "EngineSpec (repro.specs) and use MultiSeriesEngine."
                "from_spec(); per-key configuration goes in spec.overrides.",
                DeprecationWarning,
                stacklevel=2,
            )
            self.spec = None
        self.pipeline_factory = pipeline_factory
        self.initialization_length = check_positive_int(
            initialization_length, "initialization_length", minimum=2
        )
        self.latency_window = check_positive_int(
            1024 if latency_window is None else latency_window, "latency_window"
        )
        self.track_latency = True if track_latency is None else bool(track_latency)
        self._series: dict[Hashable, _SeriesState] = {}
        #: routes batched ingest of same-spec live series through the
        #: columnar fleet kernel; set to False to force the scalar path
        #: (outputs are identical either way -- the oracle tests rely on
        #: this toggle to compare the two paths).
        self.fleet_kernel_enabled = True
        #: smallest same-spec cohort worth advancing through the kernel: a
        #: NumPy array op on a handful of series costs more in dispatch
        #: overhead than the scalar loop it replaces, so tiny fleets (and
        #: single-key batches) stay on the scalar path.
        self.kernel_min_cohort = 8
        self._groups: dict[str, _FleetGroup] = {}
        self._absorbed: dict[Hashable, tuple[_FleetGroup, int]] = {}
        self._never_absorb: set = set()

    # --------------------------------------------------------- construction

    @staticmethod
    def _spec_factory(
        spec: EngineSpec,
    ) -> Callable[[Hashable], StreamingPipeline]:
        def factory(key: Hashable) -> StreamingPipeline:
            return StreamingPipeline.from_spec(spec.pipeline_for(key))

        return factory

    @classmethod
    def from_spec(cls, spec: EngineSpec) -> "MultiSeriesEngine":
        """Build an engine from a declarative :class:`EngineSpec`.

        The spec is plain data: it can come from a JSON file
        (``EngineSpec.from_json``), a checkpoint, or another process.  The
        engine keeps it available as :attr:`spec`.
        """
        return cls(spec=spec)

    @classmethod
    def for_oneshotstl(
        cls,
        period: int,
        initialization_length: int | None = None,
        anomaly_threshold: float = 5.0,
        latency_window: int = 1024,
        track_latency: bool = True,
        **oneshotstl_parameters,
    ) -> "MultiSeriesEngine":
        """Engine whose every series runs a OneShotSTL pipeline.

        ``initialization_length`` defaults to four periods, the paper's
        initialization window.  Extra keyword arguments are forwarded to
        :class:`repro.core.OneShotSTL` and must be primitive values (they
        are stored in the engine's :class:`EngineSpec`, so the resulting
        engine supports :meth:`save`).
        """
        if initialization_length is None:
            initialization_length = 4 * int(period)

        spec = EngineSpec(
            pipeline=PipelineSpec(
                decomposer=DecomposerSpec(
                    "oneshotstl", {"period": int(period), **oneshotstl_parameters}
                ),
                detector=DetectorSpec(
                    "nsigma", {"threshold": float(anomaly_threshold)}
                ),
            ),
            initialization_length=int(initialization_length),
            latency_window=latency_window,
            track_latency=track_latency,
        )
        return cls.from_spec(spec)

    # ------------------------------------------------------------ streaming

    def process(self, key: Hashable, value: float) -> EngineRecord:
        """Ingest one observation for one series.

        Unknown keys lazily create their pipeline; while the initialization
        window is filling the value is buffered and a ``warming`` record is
        returned.  The observation that completes the window triggers the
        batch initialization phase (still reported as ``warming``: its
        decomposition is part of the initialization result, not an online
        point).

        A key that batched ingest absorbed into the fleet kernel keeps its
        single-key semantics: the series' object state is materialized from
        the columnar arrays, processed through the ordinary scalar
        pipeline, and written back, so mixing ``process`` and ``ingest``
        freely is safe (and exactly equal to never batching at all).
        """
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            state = self._series[key]
            group.sync_series(column, state)
            record = self._process_live(key, state, float(value))
            group.load_series(column, state)
            return record
        state = self._series.get(key)
        if state is None:
            state = _SeriesState(self.pipeline_factory(key), self.latency_window)
            self._series[key] = state

        if not state.live:
            value = float(value)
            if not np.isfinite(value):
                # Online NaN gaps are imputed by the decomposer, but the
                # batch initialization phase needs finite values; reject the
                # sample up front (without buffering it) instead of letting
                # it poison the window and wedge the series.
                raise ValueError(
                    f"series {key!r} is still warming up and received a "
                    f"non-finite value ({value}); warmup values must be finite"
                )
            state.warmup.append(value)
            state.points += 1
            if len(state.warmup) >= self.initialization_length:
                window = np.asarray(state.warmup)
                # Discard the window if initialization fails so the series
                # starts a fresh one instead of retrying the same bad
                # window (and failing) on every subsequent observation.
                state.warmup = []
                state.pipeline.initialize(window)
                state.live = True
            return EngineRecord(key=key, status=SeriesStatus.WARMING, record=None)

        return self._process_live(key, state, value)

    def _process_live(
        self, key: Hashable, state: _SeriesState, value: float
    ) -> EngineRecord:
        """Scalar-path processing of one observation for a live series."""
        if self.track_latency:
            start = time.perf_counter()
            record = state.pipeline.process(value)
            state.latencies.append(time.perf_counter() - start)
        else:
            record = state.pipeline.process(value)
        state.points += 1
        if record.is_anomaly:
            state.anomalies += 1
        return EngineRecord(key=key, status=SeriesStatus.LIVE, record=record)

    def ingest(self, batch) -> list[EngineRecord]:
        """Ingest a batch of observations, batching same-spec series.

        ``batch`` may be

        * a **row iterable** of ``(key, value)`` pairs (the original form),
        * a **columnar batch** ``{key: values}`` mapping each key to a
          scalar or a 1-D array of per-key observations (all arrays must
          share one length ``L``; the batch is equivalent to the
          interleaved rows ``[(key, values[t]) for t in range(L) for key
          in batch]``), or
        * **parallel arrays** ``(keys, values)`` -- a sequence of keys plus
          an equal-length NumPy array of values -- which avoids building
          per-record Python tuples altogether.

        Records are returned in (the equivalent) input order; multiple
        values for one key are processed oldest first.  Live series that
        share a :class:`~repro.specs.PipelineSpec` are advanced together
        through the columnar fleet kernel -- one batched solver step per
        IRLS iteration for the whole cohort -- with results identical to
        processing every observation through :meth:`process`.

        Application is *not* transactional: a rejected observation (e.g. a
        non-finite value, during warmup or live) raises out of the batch
        with every earlier observation already applied and every later one
        unapplied (batches containing such values are processed strictly
        sequentially to keep that contract).  Callers that need to resume
        should sanitize values up front, or re-submit only the tail of the
        batch that follows the offending observation.
        """
        if isinstance(batch, dict):
            keys, values = self._columns_from_dict(batch)
        elif (
            isinstance(batch, tuple)
            and len(batch) == 2
            and isinstance(batch[1], np.ndarray)
        ):
            keys, values = batch
            values = np.asarray(values, dtype=float)
            if values.ndim != 1 or len(keys) != values.size:
                raise ValueError(
                    "parallel-array ingest expects (keys, values) of equal "
                    "length with a 1-D value array"
                )
            keys = list(keys)
        else:
            rows = list(batch)
            try:
                keys = [row[0] for row in rows]
                values = np.array([row[1] for row in rows], dtype=float)
            except (TypeError, ValueError, IndexError):
                # Malformed rows or unconvertible values: let the sequential
                # path raise (or not) with its per-record semantics.
                process = self.process
                return [process(key, value) for key, value in rows]
        return self._ingest_keys_values(keys, values)

    @staticmethod
    def _columns_from_dict(batch: dict) -> tuple[list, np.ndarray]:
        """Expand ``{key: values}`` into round-major parallel key/value arrays."""
        length = None
        columns = []
        for key, values in batch.items():
            values = np.atleast_1d(np.asarray(values, dtype=float))
            if values.ndim != 1:
                raise ValueError(
                    f"columnar ingest values for key {key!r} must be scalars "
                    "or 1-D arrays"
                )
            if length is None:
                length = values.size
            elif values.size != length:
                raise ValueError(
                    "columnar ingest requires equal-length value arrays; "
                    f"key {key!r} has {values.size} values, expected {length}"
                )
            columns.append(values)
        if not columns:
            return [], np.zeros(0)
        # Interleave to round-major order ((k0, t), (k1, t), ..., (k0, t+1),
        # ...) without materializing per-record tuples.
        keys = list(batch) * length
        values = np.stack(columns).T.ravel() if length else np.zeros(0)
        return keys, values

    def _ingest_keys_values(
        self, keys: list, values: np.ndarray
    ) -> list[EngineRecord]:
        if not keys:
            return []
        if not self.fleet_kernel_enabled or (
            len(keys) < self.kernel_min_cohort and not self._absorbed
        ):
            # Nothing is (or could become) kernel-batched at this batch
            # size: skip the round-building machinery entirely.
            process = self.process
            return [
                process(key, value) for key, value in zip(keys, values)
            ]
        bad = ~np.isfinite(values)
        if bad.any():
            # NaN aimed at an already-absorbed series is a missing point the
            # kernel imputes; anything else (infinities, NaN during warmup
            # or on a scalar-path series) must raise exactly where the
            # sequential path would, so the whole batch stays sequential.
            for position in np.flatnonzero(bad):
                if not (
                    np.isnan(values[position])
                    and keys[position] in self._absorbed
                ):
                    process = self.process
                    return [
                        process(key, value) for key, value in zip(keys, values)
                    ]

        # Split the batch into rounds holding at most one observation per
        # key (values for one key apply oldest first), then advance each
        # round's kernel cohorts with batched array ops and everything else
        # through the scalar path.
        records: list = [None] * len(keys)
        occurrence: dict = {}
        rounds: list[list] = []
        for position, key in enumerate(keys):
            seen = occurrence.get(key, 0)
            occurrence[key] = seen + 1
            if seen == len(rounds):
                rounds.append([])
            rounds[seen].append((key, position))
        for round_entries in rounds:
            self._process_round(round_entries, values, records)
        return records

    def _process_round(
        self, entries: list, values: np.ndarray, records: list
    ) -> None:
        """Process one round (unique keys) of a batched ingest."""
        # Absorb every newly eligible series first, cohort-at-a-time, so a
        # fleet that goes live together is packed with one concatenation.
        to_absorb: dict[str, list] = {}
        for key, _position in entries:
            if key in self._absorbed or key in self._never_absorb:
                continue
            state = self._series.get(key)
            if state is None or not state.live:
                continue
            spec = self._absorption_spec(key, state)
            if spec is not None:
                to_absorb.setdefault(spec.to_json(sort_keys=True), []).append(
                    (spec, key, state)
                )
        for spec_key, items in to_absorb.items():
            group = self._groups.get(spec_key)
            if group is None:
                if len(items) < self.kernel_min_cohort:
                    # Too small a cohort to pay off; the keys stay on the
                    # scalar path and are reconsidered on later rounds
                    # (e.g. once more series of this spec go live).
                    continue
                group = self._groups[spec_key] = _FleetGroup(items[0][0])
            group.absorb(
                [key for _spec, key, _state in items],
                [state for _spec, _key, state in items],
            )
            for _spec, key, _state in items:
                self._absorbed[key] = (group, group.column_of[key])

        # Partition the round into kernel cohorts and scalar leftovers.
        parts: dict[int, list] = {}
        groups: dict[int, _FleetGroup] = {}
        scalar_entries = []
        for key, position in entries:
            location = self._absorbed.get(key)
            if location is None:
                scalar_entries.append((key, position))
            else:
                group, column = location
                identity = id(group)
                groups[identity] = group
                parts.setdefault(identity, []).append((key, position, column))
        for identity, members in parts.items():
            self._advance_group(groups[identity], members, values, records)
        for key, position in scalar_entries:
            records[position] = self.process(key, float(values[position]))

    def _advance_group(
        self,
        group: _FleetGroup,
        members: list,
        values: np.ndarray,
        records: list,
    ) -> None:
        """Advance one kernel cohort by one observation per member."""
        if len(members) < min(self.kernel_min_cohort, group.n_series):
            # A round touching only a few members of a large group is
            # cheaper through the single-key path (which materializes and
            # writes back just those columns) than through a gathered
            # sub-kernel.
            for key, position, _column in members:
                records[position] = self.process(key, float(values[position]))
            return
        full = len(members) == group.kernel.n_series
        if full:
            # A whole-group round takes the in-place (no gather/scatter)
            # kernel path regardless of the caller's key order: records are
            # scattered back by position, so sorting members into column
            # order is free for the caller and keeps the fast path.
            members = sorted(members, key=lambda member: member[2])
        columns = np.array([column for _key, _position, column in members])
        batch_values = values[[position for _key, position, _column in members]]
        if self.track_latency:
            start = time.perf_counter()
        if full:
            out = group.kernel.update(batch_values)
            scores, flags = group.scorer.update(out.detection_residual)
        else:
            out = group.kernel.update(batch_values, columns=columns)
            scorer = group.scorer.select(columns)
            scores, flags = scorer.update(out.detection_residual)
            group.scorer.assign(columns, scorer)
        if self.track_latency:
            per_point = (time.perf_counter() - start) / columns.size
        indices = group.indices[columns]
        for j, (key, position, _column) in enumerate(members):
            record = StreamRecord(
                index=int(indices[j]),
                value=float(out.value[j]),
                trend=float(out.trend[j]),
                seasonal=float(out.seasonal[j]),
                residual=float(out.residual[j]),
                anomaly_score=float(scores[j]),
                is_anomaly=bool(flags[j]),
                detection_residual=float(out.detection_residual[j]),
            )
            records[position] = EngineRecord(
                key=key, status=SeriesStatus.LIVE, record=record
            )
        group.indices[columns] += 1
        group.points_pending[columns] += 1
        flagged = columns[flags]
        if flagged.size:
            group.anomalies_pending[flagged] += 1
        if self.track_latency:
            for key, _position, _column in members:
                self._series[key].latencies.append(per_point)

    def _absorption_spec(self, key: Hashable, state: _SeriesState):
        """Spec to group ``key`` under, or None (not yet / never packable)."""
        pipeline = state.pipeline
        if (
            type(pipeline) is not StreamingPipeline
            or type(pipeline.decomposer) is not OneShotSTL
            or type(pipeline.scorer) is not NSigma
        ):
            self._never_absorb.add(key)
            return None
        if not FleetKernel.eligible(pipeline.decomposer):
            if pipeline.decomposer._initializer is not None:
                self._never_absorb.add(key)
            # Otherwise the solvers are still in dense warm-up: retry on a
            # later round.
            return None
        spec = pipeline.spec
        if spec is None:
            self._never_absorb.add(key)
            return None
        return spec

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` values ahead for one live series."""
        state = self._series[key]
        if not state.live:
            raise RuntimeError(f"series {key!r} is still warming up")
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            group.sync_series(column, state)
        return state.pipeline.forecast(horizon)

    def _sync_all(self) -> None:
        """Materialize every absorbed series' object state from the kernel."""
        for key, (group, column) in self._absorbed.items():
            group.sync_series(column, self._series[key])

    def _reset_fleet_groups(self) -> None:
        """Drop all columnar bookkeeping (after replacing ``_series``)."""
        self._groups = {}
        self._absorbed = {}
        self._never_absorb = set()

    # ------------------------------------------------------------- fleet API

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._series

    def keys(self) -> list:
        """All known series keys, in first-seen order."""
        return list(self._series)

    def live_keys(self) -> list:
        """Keys of the series that completed initialization."""
        return [key for key, state in self._series.items() if state.live]

    def series_stats(self, key: Hashable) -> SeriesStats:
        """Statistics of a single series."""
        state = self._series[key]
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            group.flush_counters(column, state)
        latencies = state.latencies.to_array()
        return SeriesStats(
            key=key,
            status=SeriesStatus.LIVE if state.live else SeriesStatus.WARMING,
            points=state.points,
            anomalies=state.anomalies,
            latency=(
                summarize_latencies(latencies, method=f"series[{key!r}]")
                if latencies.size
                else None
            ),
        )

    def fleet_stats(self) -> FleetStats:
        """Aggregate statistics across every series in the fleet."""
        per_series = {key: self.series_stats(key) for key in self._series}
        live = sum(
            1 for stats in per_series.values() if stats.status == SeriesStatus.LIVE
        )
        return FleetStats(
            series_total=len(per_series),
            series_live=live,
            series_warming=len(per_series) - live,
            points_total=sum(stats.points for stats in per_series.values()),
            anomalies_total=sum(stats.anomalies for stats in per_series.values()),
            per_series=per_series,
        )

    # --------------------------------------------------------- checkpointing

    def snapshot(self):
        """Capture the engine state as an in-memory checkpoint.

        The checkpoint is an independent deep copy: later ingests do not
        mutate it, and it can be restored any number of times (or pickled
        to disk by the caller).  For a checkpoint that survives process
        boundaries and carries its own configuration, use :meth:`save`.

        Kernel-absorbed series are materialized first, so the checkpoint
        always holds plain per-series state -- the same shape whether or
        not batched ingest ever ran.
        """
        self._sync_all()
        return copy.deepcopy(self._series)

    def restore(self, checkpoint) -> None:
        """Rewind the engine to a checkpoint taken with :meth:`snapshot`.

        The checkpoint itself stays untouched (it is deep-copied in), so it
        can be restored again later.
        """
        if not isinstance(checkpoint, dict) or not all(
            isinstance(state, _SeriesState) for state in checkpoint.values()
        ):
            raise TypeError("checkpoint must come from MultiSeriesEngine.snapshot()")
        self._series = copy.deepcopy(checkpoint)
        # The columnar arrays described the replaced fleet; rebuild lazily.
        self._reset_fleet_groups()

    def save(self, path) -> None:
        """Write a portable versioned checkpoint to ``path``.

        The file carries ``{format_version, engine_spec, series}``: the
        declarative :class:`EngineSpec` (as a plain dict) plus the full
        per-series state, so :meth:`load` can rebuild an equivalent engine
        in a fresh process from the file alone and continue the stream
        bit-identically.  Only spec-built engines can be saved -- a factory
        callable has no portable representation.

        The container format is pickle (the numeric per-series state has no
        flat representation), so checkpoint files carry pickle's trust
        model: :meth:`load` must only be given files from trusted sources.
        """
        if self.spec is None:
            raise ValueError(
                "only spec-built engines can be saved: construct via "
                "MultiSeriesEngine.from_spec() (or for_oneshotstl()) "
                "instead of a pipeline factory"
            )
        self._sync_all()
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "engine_spec": self.spec.to_dict(),
            "series": self._series,
        }
        with open(Path(path), "wb") as stream:
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "MultiSeriesEngine":
        """Rebuild an engine from a checkpoint written by :meth:`save`.

        The engine is reconstructed from the embedded spec (via the
        component registry), then the per-series state is installed, so the
        restored engine continues the stream exactly where :meth:`save`
        left off.  A checkpoint whose ``format_version`` differs from this
        build's :data:`CHECKPOINT_FORMAT_VERSION` is rejected with
        ``ValueError``.

        .. warning:: Checkpoints are pickle files; unpickling runs before
           any validation can happen, so only load checkpoints you trust
           (i.e. that your own deployment saved).
        """
        with open(Path(path), "rb") as stream:
            payload = pickle.load(stream)
        if not isinstance(payload, dict) or "format_version" not in payload:
            raise ValueError(
                f"{path!s} is not a MultiSeriesEngine checkpoint "
                "(missing format_version)"
            )
        version = payload["format_version"]
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format_version {version!r} is not supported by "
                f"this build (expected {CHECKPOINT_FORMAT_VERSION}); "
                "re-save the checkpoint with a matching version"
            )
        try:
            spec_data = payload["engine_spec"]
            series = payload["series"]
        except KeyError as error:
            raise ValueError(
                f"checkpoint is missing required section {error.args[0]!r}"
            ) from None
        engine = cls.from_spec(EngineSpec.from_dict(spec_data))
        if not isinstance(series, dict) or not all(
            isinstance(state, _SeriesState) for state in series.values()
        ):
            raise ValueError("checkpoint per-series state is malformed")
        engine._series = series
        return engine
