"""Multi-series streaming engine: one process, thousands of monitored metrics.

The paper's pitch is that an O(1) online decomposition is cheap enough to
run on *every* monitored metric.  :class:`MultiSeriesEngine` is the serving
layer that makes that concrete: it multiplexes any number of independent
keyed streams over the shared fast kernel, with

* **declarative configuration** -- the engine is built from an
  :class:`~repro.specs.EngineSpec` (:meth:`from_spec`, or the
  :meth:`for_oneshotstl` shorthand): plain JSON-able data naming the
  decomposer/scorer by registry name, with optional per-key
  :class:`~repro.specs.PipelineSpec` overrides so heterogeneous fleets
  (different periods or thresholds per metric class) live in one engine;
  :attr:`spec` reports the configuration in use;
* **batched ingest** -- ``ingest([(key, value), ...])`` routes a mixed
  batch of observations to their per-key pipelines and returns the derived
  records in input order;
* **per-series lazy initialization** -- the first observation of an unseen
  key creates its pipeline; values are buffered until the configured
  initialization window is full, then the batch initialization phase runs
  and the series goes live;
* **portable versioned checkpoints** -- :meth:`save` writes
  ``{format_version, engine_spec, per-series state}`` to a file and
  :meth:`MultiSeriesEngine.load` rebuilds a fully equivalent engine from
  that file alone, in a different process if desired; the in-memory
  :meth:`snapshot` / :meth:`restore` pair remains for cheap same-process
  rewind;
* **fleet statistics** -- :meth:`fleet_stats` aggregates anomaly counts and
  per-key update-latency percentiles (via
  :func:`repro.streaming.latency.summarize_latencies`) across the fleet.

Every series is an ordinary :class:`~repro.streaming.pipeline.StreamingPipeline`,
so the engine's outputs are *identical* to running N independent pipelines
by hand -- the test suite asserts this -- while amortizing the per-call
overhead and centralizing bookkeeping.
"""

from __future__ import annotations

import copy
import enum
import pickle
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Iterable, Tuple

import numpy as np

from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec
from repro.streaming.buffer import RingBuffer
from repro.streaming.latency import LatencyReport, summarize_latencies
from repro.streaming.pipeline import StreamingPipeline, StreamRecord
from repro.utils import check_positive_int

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "EngineRecord",
    "FleetStats",
    "MultiSeriesEngine",
    "SeriesStatus",
    "SeriesStats",
]

#: version stamp written into (and required from) portable checkpoints
CHECKPOINT_FORMAT_VERSION = 1


class SeriesStatus(str, enum.Enum):
    """Lifecycle status of one keyed series.

    String-valued for backward compatibility: ``SeriesStatus.WARMING ==
    "warming"`` holds, and ``str()``/formatting yield the bare value, so
    code comparing against or logging the old strings keeps working.
    """

    WARMING = "warming"
    LIVE = "live"

    # Python 3.11+ makes plain str-mixin enums render as
    # "SeriesStatus.WARMING"; keep the pre-enum log/format output.
    __str__ = str.__str__
    __format__ = str.__format__


#: deprecated aliases kept for backward compatibility
WARMING = SeriesStatus.WARMING
LIVE = SeriesStatus.LIVE


@dataclass(frozen=True)
class EngineRecord:
    """Outcome of ingesting one observation for one key.

    ``record`` is ``None`` while the series is still warming (the value was
    buffered for the initialization window); once the series is live it
    carries the full per-point :class:`StreamRecord`.
    """

    key: Hashable
    status: SeriesStatus
    record: StreamRecord | None

    @property
    def is_anomaly(self) -> bool:
        return self.record is not None and self.record.is_anomaly


@dataclass(frozen=True)
class SeriesStats:
    """Aggregated statistics of a single keyed series."""

    key: Hashable
    status: SeriesStatus
    points: int
    anomalies: int
    latency: LatencyReport | None


@dataclass(frozen=True)
class FleetStats:
    """Aggregated statistics of the whole fleet."""

    series_total: int
    series_live: int
    series_warming: int
    points_total: int
    anomalies_total: int
    per_series: dict = field(default_factory=dict)


class _SeriesState:
    """Internal per-key record: pipeline, warmup buffer and counters."""

    __slots__ = ("pipeline", "warmup", "live", "points", "anomalies", "latencies")

    def __init__(self, pipeline: StreamingPipeline, latency_window: int):
        self.pipeline = pipeline
        self.warmup: list[float] = []
        self.live = False
        self.points = 0
        self.anomalies = 0
        self.latencies = RingBuffer(latency_window)


class MultiSeriesEngine:
    """A keyed fleet of online decomposition pipelines behind one ingest API.

    The supported way to construct an engine is from a declarative
    :class:`~repro.specs.EngineSpec` -- :meth:`from_spec`, or
    :meth:`for_oneshotstl` for the common case -- because only spec-built
    engines can be persisted with :meth:`save`.  Passing a
    ``pipeline_factory`` callable directly is deprecated (it cannot be
    serialized, shipped to a worker, or rebuilt from a checkpoint) but
    still works for fully custom pipelines.

    Parameters
    ----------
    pipeline_factory:
        Deprecated.  Callable invoked with a series key the first time that
        key appears; must return a *fresh* :class:`StreamingPipeline` (or
        any object with the same ``initialize`` / ``process`` / ``forecast``
        interface).  Use an :class:`~repro.specs.EngineSpec` with per-key
        ``overrides`` instead.
    initialization_length:
        Number of leading observations buffered per series before its batch
        initialization phase runs.  Should cover at least two seasonal
        periods of the slowest configured decomposer (the paper uses about
        four).  Warmup values must be finite (non-finite samples are
        rejected with ``ValueError`` before they can poison the window);
        once live, NaN gaps are handled by the decomposer's own
        missing-value imputation.
    latency_window:
        Number of most recent per-point processing durations retained per
        series for the latency percentiles in :meth:`fleet_stats`.
    track_latency:
        Set to False to skip the two clock reads per point (marginally
        faster ingest, no latency percentiles in the stats).
    spec:
        Keyword-only.  An :class:`~repro.specs.EngineSpec` that fully
        configures the engine; mutually exclusive with the other
        parameters.  Prefer :meth:`from_spec`.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[Hashable], StreamingPipeline] | None = None,
        initialization_length: int | None = None,
        latency_window: int | None = None,
        track_latency: bool | None = None,
        *,
        spec: EngineSpec | None = None,
    ):
        if spec is not None:
            if (
                pipeline_factory is not None
                or initialization_length is not None
                or latency_window is not None
                or track_latency is not None
            ):
                raise ValueError(
                    "pass either spec= or (pipeline_factory, "
                    "initialization_length, latency_window, track_latency), "
                    "not both; a spec-built engine takes every setting from "
                    "the spec"
                )
            if not isinstance(spec, EngineSpec):
                raise TypeError(
                    f"spec must be an EngineSpec, got {type(spec).__name__}"
                )
            self.spec: EngineSpec | None = spec
            pipeline_factory = self._spec_factory(spec)
            initialization_length = spec.initialization_length
            latency_window = spec.latency_window
            track_latency = spec.track_latency
        else:
            if pipeline_factory is None or initialization_length is None:
                raise TypeError(
                    "MultiSeriesEngine requires either spec= or both "
                    "pipeline_factory and initialization_length"
                )
            warnings.warn(
                "constructing MultiSeriesEngine from a pipeline factory is "
                "deprecated: factory-built engines cannot be saved to a "
                "portable checkpoint.  Describe the fleet with an "
                "EngineSpec (repro.specs) and use MultiSeriesEngine."
                "from_spec(); per-key configuration goes in spec.overrides.",
                DeprecationWarning,
                stacklevel=2,
            )
            self.spec = None
        self.pipeline_factory = pipeline_factory
        self.initialization_length = check_positive_int(
            initialization_length, "initialization_length", minimum=2
        )
        self.latency_window = check_positive_int(
            1024 if latency_window is None else latency_window, "latency_window"
        )
        self.track_latency = True if track_latency is None else bool(track_latency)
        self._series: dict[Hashable, _SeriesState] = {}

    # --------------------------------------------------------- construction

    @staticmethod
    def _spec_factory(
        spec: EngineSpec,
    ) -> Callable[[Hashable], StreamingPipeline]:
        def factory(key: Hashable) -> StreamingPipeline:
            return StreamingPipeline.from_spec(spec.pipeline_for(key))

        return factory

    @classmethod
    def from_spec(cls, spec: EngineSpec) -> "MultiSeriesEngine":
        """Build an engine from a declarative :class:`EngineSpec`.

        The spec is plain data: it can come from a JSON file
        (``EngineSpec.from_json``), a checkpoint, or another process.  The
        engine keeps it available as :attr:`spec`.
        """
        return cls(spec=spec)

    @classmethod
    def for_oneshotstl(
        cls,
        period: int,
        initialization_length: int | None = None,
        anomaly_threshold: float = 5.0,
        latency_window: int = 1024,
        track_latency: bool = True,
        **oneshotstl_parameters,
    ) -> "MultiSeriesEngine":
        """Engine whose every series runs a OneShotSTL pipeline.

        ``initialization_length`` defaults to four periods, the paper's
        initialization window.  Extra keyword arguments are forwarded to
        :class:`repro.core.OneShotSTL` and must be primitive values (they
        are stored in the engine's :class:`EngineSpec`, so the resulting
        engine supports :meth:`save`).
        """
        if initialization_length is None:
            initialization_length = 4 * int(period)

        spec = EngineSpec(
            pipeline=PipelineSpec(
                decomposer=DecomposerSpec(
                    "oneshotstl", {"period": int(period), **oneshotstl_parameters}
                ),
                detector=DetectorSpec(
                    "nsigma", {"threshold": float(anomaly_threshold)}
                ),
            ),
            initialization_length=int(initialization_length),
            latency_window=latency_window,
            track_latency=track_latency,
        )
        return cls.from_spec(spec)

    # ------------------------------------------------------------ streaming

    def process(self, key: Hashable, value: float) -> EngineRecord:
        """Ingest one observation for one series.

        Unknown keys lazily create their pipeline; while the initialization
        window is filling the value is buffered and a ``warming`` record is
        returned.  The observation that completes the window triggers the
        batch initialization phase (still reported as ``warming``: its
        decomposition is part of the initialization result, not an online
        point).
        """
        state = self._series.get(key)
        if state is None:
            state = _SeriesState(self.pipeline_factory(key), self.latency_window)
            self._series[key] = state

        if not state.live:
            value = float(value)
            if not np.isfinite(value):
                # Online NaN gaps are imputed by the decomposer, but the
                # batch initialization phase needs finite values; reject the
                # sample up front (without buffering it) instead of letting
                # it poison the window and wedge the series.
                raise ValueError(
                    f"series {key!r} is still warming up and received a "
                    f"non-finite value ({value}); warmup values must be finite"
                )
            state.warmup.append(value)
            state.points += 1
            if len(state.warmup) >= self.initialization_length:
                window = np.asarray(state.warmup)
                # Discard the window if initialization fails so the series
                # starts a fresh one instead of retrying the same bad
                # window (and failing) on every subsequent observation.
                state.warmup = []
                state.pipeline.initialize(window)
                state.live = True
            return EngineRecord(key=key, status=SeriesStatus.WARMING, record=None)

        if self.track_latency:
            start = time.perf_counter()
            record = state.pipeline.process(value)
            state.latencies.append(time.perf_counter() - start)
        else:
            record = state.pipeline.process(value)
        state.points += 1
        if record.is_anomaly:
            state.anomalies += 1
        return EngineRecord(key=key, status=SeriesStatus.LIVE, record=record)

    def ingest(
        self, batch: Iterable[Tuple[Hashable, float]]
    ) -> list[EngineRecord]:
        """Ingest a batch of ``(key, value)`` observations.

        Observations are applied in input order (so multiple values for the
        same key within one batch are processed oldest first) and the
        derived records are returned in the same order.

        Application is *not* transactional: a rejected observation (e.g. a
        non-finite value, during warmup or live) raises out of the batch
        with every earlier observation already applied and every later one
        unapplied.  Callers that need to resume should sanitize values up
        front, or re-submit only the tail of the batch that follows the
        offending observation.
        """
        process = self.process
        return [process(key, value) for key, value in batch]

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` values ahead for one live series."""
        state = self._series[key]
        if not state.live:
            raise RuntimeError(f"series {key!r} is still warming up")
        return state.pipeline.forecast(horizon)

    # ------------------------------------------------------------- fleet API

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._series

    def keys(self) -> list:
        """All known series keys, in first-seen order."""
        return list(self._series)

    def live_keys(self) -> list:
        """Keys of the series that completed initialization."""
        return [key for key, state in self._series.items() if state.live]

    def series_stats(self, key: Hashable) -> SeriesStats:
        """Statistics of a single series."""
        state = self._series[key]
        latencies = state.latencies.to_array()
        return SeriesStats(
            key=key,
            status=SeriesStatus.LIVE if state.live else SeriesStatus.WARMING,
            points=state.points,
            anomalies=state.anomalies,
            latency=(
                summarize_latencies(latencies, method=f"series[{key!r}]")
                if latencies.size
                else None
            ),
        )

    def fleet_stats(self) -> FleetStats:
        """Aggregate statistics across every series in the fleet."""
        per_series = {key: self.series_stats(key) for key in self._series}
        live = sum(
            1 for stats in per_series.values() if stats.status == SeriesStatus.LIVE
        )
        return FleetStats(
            series_total=len(per_series),
            series_live=live,
            series_warming=len(per_series) - live,
            points_total=sum(stats.points for stats in per_series.values()),
            anomalies_total=sum(stats.anomalies for stats in per_series.values()),
            per_series=per_series,
        )

    # --------------------------------------------------------- checkpointing

    def snapshot(self):
        """Capture the engine state as an in-memory checkpoint.

        The checkpoint is an independent deep copy: later ingests do not
        mutate it, and it can be restored any number of times (or pickled
        to disk by the caller).  For a checkpoint that survives process
        boundaries and carries its own configuration, use :meth:`save`.
        """
        return copy.deepcopy(self._series)

    def restore(self, checkpoint) -> None:
        """Rewind the engine to a checkpoint taken with :meth:`snapshot`.

        The checkpoint itself stays untouched (it is deep-copied in), so it
        can be restored again later.
        """
        if not isinstance(checkpoint, dict) or not all(
            isinstance(state, _SeriesState) for state in checkpoint.values()
        ):
            raise TypeError("checkpoint must come from MultiSeriesEngine.snapshot()")
        self._series = copy.deepcopy(checkpoint)

    def save(self, path) -> None:
        """Write a portable versioned checkpoint to ``path``.

        The file carries ``{format_version, engine_spec, series}``: the
        declarative :class:`EngineSpec` (as a plain dict) plus the full
        per-series state, so :meth:`load` can rebuild an equivalent engine
        in a fresh process from the file alone and continue the stream
        bit-identically.  Only spec-built engines can be saved -- a factory
        callable has no portable representation.

        The container format is pickle (the numeric per-series state has no
        flat representation), so checkpoint files carry pickle's trust
        model: :meth:`load` must only be given files from trusted sources.
        """
        if self.spec is None:
            raise ValueError(
                "only spec-built engines can be saved: construct via "
                "MultiSeriesEngine.from_spec() (or for_oneshotstl()) "
                "instead of a pipeline factory"
            )
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "engine_spec": self.spec.to_dict(),
            "series": self._series,
        }
        with open(Path(path), "wb") as stream:
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "MultiSeriesEngine":
        """Rebuild an engine from a checkpoint written by :meth:`save`.

        The engine is reconstructed from the embedded spec (via the
        component registry), then the per-series state is installed, so the
        restored engine continues the stream exactly where :meth:`save`
        left off.  A checkpoint whose ``format_version`` differs from this
        build's :data:`CHECKPOINT_FORMAT_VERSION` is rejected with
        ``ValueError``.

        .. warning:: Checkpoints are pickle files; unpickling runs before
           any validation can happen, so only load checkpoints you trust
           (i.e. that your own deployment saved).
        """
        with open(Path(path), "rb") as stream:
            payload = pickle.load(stream)
        if not isinstance(payload, dict) or "format_version" not in payload:
            raise ValueError(
                f"{path!s} is not a MultiSeriesEngine checkpoint "
                "(missing format_version)"
            )
        version = payload["format_version"]
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format_version {version!r} is not supported by "
                f"this build (expected {CHECKPOINT_FORMAT_VERSION}); "
                "re-save the checkpoint with a matching version"
            )
        try:
            spec_data = payload["engine_spec"]
            series = payload["series"]
        except KeyError as error:
            raise ValueError(
                f"checkpoint is missing required section {error.args[0]!r}"
            ) from None
        engine = cls.from_spec(EngineSpec.from_dict(spec_data))
        if not isinstance(series, dict) or not all(
            isinstance(state, _SeriesState) for state in series.values()
        ):
            raise ValueError("checkpoint per-series state is malformed")
        engine._series = series
        return engine
