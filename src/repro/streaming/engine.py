"""Multi-series streaming engine: one process, thousands of monitored metrics.

The paper's pitch is that an O(1) online decomposition is cheap enough to
run on *every* monitored metric.  :class:`MultiSeriesEngine` is the serving
layer that makes that concrete: it multiplexes any number of independent
keyed streams over the shared fast kernel, with

* **declarative configuration** -- the engine is built from an
  :class:`~repro.specs.EngineSpec` (:meth:`from_spec`, or the
  :meth:`for_oneshotstl` shorthand): plain JSON-able data naming the
  decomposer/scorer by registry name, with optional per-key
  :class:`~repro.specs.PipelineSpec` overrides so heterogeneous fleets
  (different periods or thresholds per metric class) live in one engine;
  :attr:`spec` reports the configuration in use;
* **batched ingest over a columnar fleet kernel** -- ``ingest`` accepts a
  row batch ``[(key, value), ...]``, a columnar batch ``{key: values}`` or
  parallel ``(keys, values)`` arrays, and routes same-configuration live
  series through a struct-of-arrays :class:`~repro.core.fleet.FleetKernel`
  that advances the whole group with a handful of NumPy array operations
  per point instead of a Python loop -- with outputs *exactly* equal to the
  per-series scalar path (series are grouped by their
  :class:`~repro.specs.PipelineSpec`; warming, incompatible or
  shift-diverging series fall back per series);
* **columnar results** -- :meth:`ingest_columnar` (or ``ingest(...,
  columnar_results=True)``) keeps the outputs in struct-of-arrays form as
  an :class:`IngestResult`: parallel ``index``/``value``/``trend``/
  ``seasonal``/``residual``/``anomaly_score``/``is_anomaly``/
  ``detection_residual``/``live`` arrays, with per-row
  :class:`EngineRecord` objects materialized lazily on access -- so the
  fleet kernel's array outputs never detour through per-row Python
  objects unless the caller actually asks for them;
* **per-series lazy initialization** -- the first observation of an unseen
  key creates its pipeline; values are buffered until the configured
  initialization window is full, then the batch initialization phase runs
  and the series goes live;
* **durable sessions** -- :meth:`open` binds the engine to a
  :class:`~repro.durability.CheckpointStore` (directory-backed by
  default): every ingested batch is appended to a write-ahead log in
  columnar form *before* state advances, :meth:`checkpoint` persists only
  the cohorts that changed since the last checkpoint (per-series progress
  markers make dirtiness detection O(fleet) array reads), and reopening
  the store after a crash recovers the latest consistent manifest and
  replays the surviving WAL prefix bit-identically -- the engine picks up
  the stream exactly where the surviving log ends;
* **portable versioned checkpoints** -- the legacy one-file form:
  :meth:`save` writes ``{format_version, engine_spec, per-series state}``
  atomically to a single file and :meth:`MultiSeriesEngine.load` rebuilds
  a fully equivalent engine from that file alone, in a different process
  if desired; the in-memory :meth:`snapshot` / :meth:`restore` pair
  remains for cheap same-process rewind;
* **fleet statistics** -- :meth:`fleet_stats` aggregates anomaly counts and
  per-key update-latency percentiles (via
  :func:`repro.streaming.latency.summarize_latencies`) across the fleet.

Every series is an ordinary :class:`~repro.streaming.pipeline.StreamingPipeline`,
so the engine's outputs are *identical* to running N independent pipelines
by hand -- the test suite asserts this -- while amortizing the per-call
overhead and centralizing bookkeeping.
"""

from __future__ import annotations

import copy
import enum
import gc
import os
import time
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.analysis import hotpath
from repro.core.fleet import ColumnarNSigma, FleetKernel
from repro.core.nsigma import NSigma
from repro.core.oneshotstl import OneShotSTL
from repro.durability import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    CheckpointSummary,
    CorruptCheckpointError,
    DirectoryCheckpointStore,
    SingleSnapshotStore,
    migrate_snapshot_payload,
)
from repro.durability.scrub import (
    RECOVERY_POLICIES,
    QuarantinedCohort,
    QuarantinedWalSuffix,
    RecoveryReport,
    ScrubFinding,
    decode_manifest_keys,
    encode_manifest_keys,
)
from repro.durability.format import (
    build_manifest,
    decode_segment,
    decode_wal_record,
    encode_segment,
    encode_wal_record,
    next_wal_name,
    segment_name,
    validate_manifest,
    wal_name,
)
from repro.specs import DecomposerSpec, DetectorSpec, EngineSpec, PipelineSpec
from repro.streaming.buffer import RingBuffer
from repro.streaming.latency import LatencyReport, summarize_latencies
from repro.streaming.pipeline import StreamingPipeline, StreamRecord
from repro.utils import amortized_append, check_positive_int

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "EngineRecord",
    "FleetStats",
    "IngestResult",
    "MultiSeriesEngine",
    "SeriesStatus",
    "SeriesStats",
]


class SeriesStatus(str, enum.Enum):
    """Lifecycle status of one keyed series.

    String-valued for backward compatibility: ``SeriesStatus.WARMING ==
    "warming"`` holds, and ``str()``/formatting yield the bare value, so
    code comparing against or logging the old strings keeps working.
    """

    WARMING = "warming"
    LIVE = "live"

    # Python 3.11+ makes plain str-mixin enums render as
    # "SeriesStatus.WARMING"; keep the pre-enum log/format output.
    __str__ = str.__str__
    __format__ = str.__format__


#: deprecated aliases kept for backward compatibility
WARMING = SeriesStatus.WARMING
LIVE = SeriesStatus.LIVE


@dataclass(frozen=True, slots=True)
class EngineRecord:
    """Outcome of ingesting one observation for one key.

    ``record`` is ``None`` while the series is still warming (the value was
    buffered for the initialization window); once the series is live it
    carries the full per-point :class:`StreamRecord`.
    """

    key: Hashable
    status: SeriesStatus
    record: StreamRecord | None

    @property
    def is_anomaly(self) -> bool:
        return self.record is not None and self.record.is_anomaly


class IngestResult:
    """Struct-of-arrays view of one batched ingest: arrays out, records on demand.

    The engine's hot path produces its outputs as parallel NumPy arrays --
    one entry per ingested observation, in (the equivalent) input order --
    and this class hands them to the caller *without* first exploding them
    into per-row :class:`EngineRecord`/:class:`StreamRecord` objects, which
    would otherwise dominate large-fleet ingest cost.

    Columnar fields (all aligned, length ``len(result)``):

    ``index``, ``value``, ``trend``, ``seasonal``, ``residual``,
    ``anomaly_score``, ``is_anomaly``, ``detection_residual``
        The per-point :class:`StreamRecord` fields.  Rows whose series was
        still warming carry NaN (``0``/``False`` for the integer/boolean
        fields) -- check ``live``.
    ``live``
        Boolean mask: ``True`` where the series was live and the row
        carries a real decomposition (the array analogue of
        ``record is not None``).
    ``status``
        Object array of :class:`SeriesStatus` values (derived lazily from
        ``live``).
    ``keys``
        The row keys, as a list.

    Per-row records are materialized *on demand* and are bit-identical to
    the eager records the list-returning ``ingest`` produces:
    ``result[i]`` builds the i-th :class:`EngineRecord`, iteration and
    :meth:`records` materialize them all, so existing record-oriented
    consumers keep working against a columnar result.
    """

    __slots__ = (
        "_keys_cycle",
        "_rounds",
        "index",
        "value",
        "trend",
        "seasonal",
        "residual",
        "anomaly_score",
        "is_anomaly",
        "detection_residual",
        "live",
        "_eager",
        "_keys",
        "_status",
    )

    def __init__(self, keys_cycle: list, rounds: int):
        size = len(keys_cycle) * rounds
        self._keys_cycle = list(keys_cycle)
        self._rounds = int(rounds)
        self.index = np.zeros(size, dtype=np.int64)
        self.value = np.full(size, np.nan)
        self.trend = np.full(size, np.nan)
        self.seasonal = np.full(size, np.nan)
        self.residual = np.full(size, np.nan)
        self.anomaly_score = np.full(size, np.nan)
        self.is_anomaly = np.zeros(size, dtype=bool)
        self.detection_residual = np.full(size, np.nan)
        self.live = np.zeros(size, dtype=bool)
        #: sparse {position: EngineRecord} for rows that were produced by
        #: the scalar path (warming rows, custom pipelines): those records
        #: are returned verbatim instead of being rebuilt from the arrays.
        self._eager: dict | None = None
        self._keys: list | None = None
        self._status: np.ndarray | None = None

    @classmethod
    def from_records(cls, keys: list, records: list) -> "IngestResult":
        """Wrap eagerly built records (the engine's sequential fallback)."""
        result = cls(list(keys), 1 if keys else 0)
        for position, record in enumerate(records):
            result._set_eager(position, record)
        return result

    # ------------------------------------------------------- columnar views

    @property
    def keys(self) -> list[Hashable]:
        """Row keys, aligned with the arrays (read-only by convention)."""
        if self._keys is None:
            if self._rounds <= 1:
                self._keys = list(self._keys_cycle)
            else:
                self._keys = self._keys_cycle * self._rounds
        return self._keys

    @property
    def status(self) -> np.ndarray:
        """Object array of per-row :class:`SeriesStatus` values."""
        if self._status is None:
            status = np.empty(len(self), dtype=object)
            status[:] = SeriesStatus.WARMING
            status[self.live] = SeriesStatus.LIVE
            self._status = status
        return self._status

    # -------------------------------------------------- records on demand

    def _set_eager(self, position: int, engine_record: EngineRecord) -> None:
        """Install a scalar-path record, mirroring its fields into the arrays."""
        if self._eager is None:
            self._eager = {}
        self._eager[position] = engine_record
        record = engine_record.record
        if record is None:
            return
        try:
            fields = (
                int(record.index),
                float(record.value),
                float(record.trend),
                float(record.seasonal),
                float(record.residual),
                float(record.anomaly_score),
                bool(record.is_anomaly),
                float(record.detection_residual),
            )
        except (AttributeError, TypeError, ValueError):
            # A custom (factory-built) pipeline may emit record objects
            # without the standard numeric fields; they are still returned
            # verbatim by __getitem__, only the columnar mirror (including
            # ``live``) stays unset -- never a torn half-written row.
            return
        (
            self.index[position],
            self.value[position],
            self.trend[position],
            self.seasonal[position],
            self.residual[position],
            self.anomaly_score[position],
            self.is_anomaly[position],
            self.detection_residual[position],
        ) = fields
        self.live[position] = True

    def __len__(self) -> int:
        return self.index.shape[0]

    def __getitem__(self, position: int | slice) -> "EngineRecord | list[EngineRecord]":
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(len(self)))]
        position = int(position)
        size = len(self)
        if position < 0:
            position += size
        if not 0 <= position < size:
            raise IndexError("ingest result position out of range")
        if self._eager is not None:
            eager = self._eager.get(position)
            if eager is not None:
                return eager
        key = self._keys_cycle[position % len(self._keys_cycle)]
        if not self.live[position]:
            return EngineRecord(key=key, status=SeriesStatus.WARMING, record=None)
        record = StreamRecord(
            index=int(self.index[position]),
            value=float(self.value[position]),
            trend=float(self.trend[position]),
            seasonal=float(self.seasonal[position]),
            residual=float(self.residual[position]),
            anomaly_score=float(self.anomaly_score[position]),
            is_anomaly=bool(self.is_anomaly[position]),
            detection_residual=float(self.detection_residual[position]),
        )
        return EngineRecord(key=key, status=SeriesStatus.LIVE, record=record)

    def __iter__(self) -> Iterator[EngineRecord]:
        return iter(self.records())

    def records(self) -> "list[EngineRecord]":
        """Materialize every row as an eager :class:`EngineRecord`.

        Bulk-converts the arrays to Python scalars first (``ndarray.tolist``
        yields exact Python floats, so the materialized records are
        bit-identical to eagerly built ones) -- substantially faster than
        per-row array indexing.  For large results the cyclic garbage
        collector is suspended around the loop: the records are acyclic
        (plain frozen dataclasses of scalars), but allocating tens of
        thousands of young objects into one long-lived list otherwise
        triggers repeated generational scans that can double the cost.
        """
        size = len(self)
        if size == 0:
            return []
        if size >= 4096 and gc.isenabled():
            gc.disable()
            try:
                return self._materialize()
            finally:
                gc.enable()
        return self._materialize()

    def _materialize(self) -> "list[EngineRecord]":
        size = len(self)
        eager = self._eager
        keys_cycle = self._keys_cycle
        n_keys = len(keys_cycle)
        index = self.index.tolist()
        value = self.value.tolist()
        trend = self.trend.tolist()
        seasonal = self.seasonal.tolist()
        residual = self.residual.tolist()
        anomaly_score = self.anomaly_score.tolist()
        is_anomaly = self.is_anomaly.tolist()
        detection_residual = self.detection_residual.tolist()
        live = self.live.tolist()
        warming = SeriesStatus.WARMING
        live_status = SeriesStatus.LIVE
        records = []
        append = records.append
        for position in range(size):
            if eager is not None:
                record = eager.get(position)
                if record is not None:
                    append(record)
                    continue
            key = keys_cycle[position % n_keys]
            if not live[position]:
                append(EngineRecord(key=key, status=warming, record=None))
                continue
            append(
                EngineRecord(
                    key=key,
                    status=live_status,
                    record=StreamRecord(
                        index=index[position],
                        value=value[position],
                        trend=trend[position],
                        seasonal=seasonal[position],
                        residual=residual[position],
                        anomaly_score=anomaly_score[position],
                        is_anomaly=is_anomaly[position],
                        detection_residual=detection_residual[position],
                    ),
                )
            )
        return records

    def __repr__(self) -> str:
        return (
            f"IngestResult(rows={len(self)}, live={int(self.live.sum())}, "
            f"anomalies={int(self.is_anomaly.sum())})"
        )


@dataclass(frozen=True, slots=True)
class SeriesStats:
    """Aggregated statistics of a single keyed series."""

    key: Hashable
    status: SeriesStatus
    points: int
    anomalies: int
    latency: LatencyReport | None


@dataclass(frozen=True, slots=True)
class FleetStats:
    """Aggregated statistics of the whole fleet."""

    series_total: int
    series_live: int
    series_warming: int
    points_total: int
    anomalies_total: int
    per_series: dict = field(default_factory=dict)


class _SeriesState:
    """Internal per-key record: pipeline, warmup buffer and counters."""

    __slots__ = ("pipeline", "warmup", "live", "points", "anomalies", "latencies")

    def __init__(self, pipeline: StreamingPipeline, latency_window: int):
        self.pipeline = pipeline
        self.warmup: list[float] = []
        self.live = False
        self.points = 0
        self.anomalies = 0
        self.latencies = RingBuffer(latency_window)


class _FleetGroup:
    """Columnar state of one same-spec cohort of live series.

    While a series is *absorbed* into a group, the columnar arrays (the
    :class:`FleetKernel`, the columnar pipeline scorer, the per-series
    record indices and the pending point/anomaly counters) are
    authoritative and the series' pipeline object is stale; the engine
    re-materializes the object state at every boundary that needs it
    (single-key ``process``/``forecast``, ``series_stats``,
    ``snapshot``/``save``).  ``_FleetGroup`` is engine-internal bookkeeping
    and is deliberately *not* part of the checkpoint format: checkpoints
    carry only the ordinary per-series state, so the on-disk format is
    identical whether or not the kernel path ever ran.
    """

    __slots__ = (
        "spec",
        "keys",
        "column_of",
        "kernel",
        "scorer",
        "indices",
        "points_pending",
        "anomalies_pending",
        "latency_window",
        "track_latency",
        "latency_values",
        "latency_counts",
        "_all_columns",
    )

    def __init__(self, spec: PipelineSpec, latency_window: int, track_latency: bool):
        self.spec = spec
        self.keys: list = []
        self.column_of: dict = {}
        self.kernel: FleetKernel | None = None
        self.scorer: ColumnarNSigma | None = None
        self.indices = np.zeros(0, dtype=np.int64)
        self.points_pending = np.zeros(0, dtype=np.int64)
        self.anomalies_pending = np.zeros(0, dtype=np.int64)
        self.latency_window = int(latency_window)
        self.track_latency = bool(track_latency)
        #: pending per-column latency ring (one row per column, one slot
        #: per retained duration): a whole cohort round records its shared
        #: per-point duration with a few array writes instead of a Python
        #: append per key; the ring is folded into the per-series
        #: RingBuffers only at materialization boundaries.
        self.latency_values = (
            np.zeros((0, self.latency_window)) if self.track_latency else None
        )
        self.latency_counts = np.zeros(0, dtype=np.int64)
        #: cached arange over the group's columns (regrown on absorb)
        self._all_columns = np.zeros(0, dtype=np.intp)

    @property
    def n_series(self) -> int:
        """Live (non-vacated) members of the group."""
        return len(self.column_of)

    @property
    def occupancy(self) -> float:
        """Fraction of columns holding a live member (1.0 = no vacancies)."""
        return len(self.column_of) / len(self.keys) if self.keys else 1.0

    def vacate(self, column: int, key: Hashable) -> None:
        """Mark ``column`` dead after its series leaves the engine.

        The column's kernel state stays in place but nothing routes to it
        anymore (it is out of ``column_of``), so it is never advanced,
        synced or exported again.  Dead columns cost array width -- full
        in-place rounds become gathered sub-kernel rounds -- until the
        engine re-homes the survivors (see
        ``MultiSeriesEngine._rebalance_groups``).
        """
        self.column_of.pop(key, None)
        self.keys[column] = None

    def absorb(self, keys: list, states: list) -> None:
        """Append a cohort of live series to the columnar arrays at once.

        Cohort absorption is amortized O(cohort): members are packed with
        one array write per state array into the hidden spare capacity the
        columnar arrays carry (capacity doubling, see
        :func:`repro.utils.amortized_append` and the solver's buffer pair),
        so even an adversarial arrival pattern -- one late series joining a
        large group per round -- costs O(total members), not one full-group
        copy per cohort.
        """
        new_kernel = FleetKernel.pack(
            [state.pipeline.decomposer for state in states]
        )
        new_scorer = ColumnarNSigma.pack(
            [state.pipeline.scorer for state in states]
        )
        if self.kernel is None:
            self.kernel = new_kernel
            self.scorer = new_scorer
        else:
            self.kernel.append(new_kernel)
            self.scorer.append(new_scorer)
        self.indices = amortized_append(
            self.indices,
            np.array([state.pipeline._index for state in states], dtype=np.int64),
        )
        grown = np.zeros(len(states), dtype=np.int64)
        self.points_pending = amortized_append(self.points_pending, grown)
        self.anomalies_pending = amortized_append(self.anomalies_pending, grown)
        if self.track_latency:
            self.latency_counts = amortized_append(self.latency_counts, grown)
            self.latency_values = amortized_append(
                self.latency_values,
                np.empty((len(states), self.latency_window)),
            )
        for key in keys:
            self.column_of[key] = len(self.keys)
            self.keys.append(key)
        self._all_columns = np.arange(len(self.keys), dtype=np.intp)

    def record_latency(self, columns: np.ndarray | None, per_point: float) -> None:
        """Record one cohort round's shared per-point duration (O(1) Python).

        ``columns=None`` means the round advanced every column.
        """
        counts = self.latency_counts
        if columns is None:
            slots = counts % self.latency_window
            self.latency_values[self._all_columns, slots] = per_point
            counts += 1
        else:
            slots = counts[columns] % self.latency_window
            self.latency_values[columns, slots] = per_point
            counts[columns] += 1

    def record_latency_block(
        self, columns: np.ndarray | None, per_point: float, rounds: int
    ) -> None:
        """Record a whole time-block's shared per-point duration.

        A block advances ``rounds`` rounds in one kernel invocation, so
        every round in it gets the same amortized per-point duration:
        ``rounds`` consecutive ring slots per column are written at once.
        """
        counts = self.latency_counts
        offsets = np.arange(rounds)
        if columns is None:
            slots = (counts[:, None] + offsets[None, :]) % self.latency_window
            self.latency_values[self._all_columns[:, None], slots] = per_point
            counts += rounds
        else:
            slots = (
                counts[columns][:, None] + offsets[None, :]
            ) % self.latency_window
            self.latency_values[columns[:, None], slots] = per_point
            counts[columns] += rounds

    def sync_series(self, column: int, state: _SeriesState) -> None:
        """Write column ``column`` back into the series' object state."""
        pipeline = state.pipeline
        self.kernel.write_into(column, pipeline.decomposer)
        self.scorer.write_into(column, pipeline.scorer)
        pipeline._index = int(self.indices[column])
        self.flush_counters(column, state)
        self.flush_latency(column, state)

    def sync_members(self, columns: np.ndarray, states: list) -> None:
        """Batched :meth:`sync_series` over a cohort of columns.

        One gathered export per state array (see
        :meth:`FleetKernel.write_members`) instead of per-member array
        indexing -- this is what makes exporting a dirty cohort for an
        incremental checkpoint cheap even when the cohort lives inside a
        much larger kernel group.  State written is identical to calling
        :meth:`sync_series` per member.
        """
        columns = np.asarray(columns, dtype=np.intp)
        pipelines = [state.pipeline for state in states]
        self.kernel.write_members(
            columns, [pipeline.decomposer for pipeline in pipelines]
        )
        self.scorer.write_many(
            columns, [pipeline.scorer for pipeline in pipelines]
        )
        indices = self.indices[columns].tolist()
        for position, (column, state) in enumerate(zip(columns.tolist(), states)):
            pipelines[position]._index = indices[position]
            self.flush_counters(column, state)
            self.flush_latency(column, state)

    def load_series(self, column: int, state: _SeriesState) -> None:
        """Refresh column ``column`` from the series' object state."""
        pipeline = state.pipeline
        self.kernel.load(column, pipeline.decomposer)
        self.scorer.load(column, pipeline.scorer)
        self.indices[column] = pipeline._index

    def flush_counters(self, column: int, state: _SeriesState) -> None:
        """Fold the column's pending counters into the series' counters."""
        state.points += int(self.points_pending[column])
        state.anomalies += int(self.anomalies_pending[column])
        self.points_pending[column] = 0
        self.anomalies_pending[column] = 0

    def flush_latency(self, column: int, state: _SeriesState) -> None:
        """Fold the column's pending latency ring into the series' buffer."""
        if not self.track_latency:
            return
        count = int(self.latency_counts[column])
        if count == 0:
            return
        take = min(count, self.latency_window)
        slots = np.arange(count - take, count) % self.latency_window
        state.latencies.extend(self.latency_values[column, slots])
        self.latency_counts[column] = 0


class MultiSeriesEngine:
    """A keyed fleet of online decomposition pipelines behind one ingest API.

    The supported way to construct an engine is from a declarative
    :class:`~repro.specs.EngineSpec` -- :meth:`from_spec`, or
    :meth:`for_oneshotstl` for the common case -- because only spec-built
    engines can be persisted with :meth:`save`.  Passing a
    ``pipeline_factory`` callable directly is deprecated (it cannot be
    serialized, shipped to a worker, or rebuilt from a checkpoint) but
    still works for fully custom pipelines.

    Parameters
    ----------
    pipeline_factory:
        Deprecated.  Callable invoked with a series key the first time that
        key appears; must return a *fresh* :class:`StreamingPipeline` (or
        any object with the same ``initialize`` / ``process`` / ``forecast``
        interface).  Use an :class:`~repro.specs.EngineSpec` with per-key
        ``overrides`` instead.
    initialization_length:
        Number of leading observations buffered per series before its batch
        initialization phase runs.  Should cover at least two seasonal
        periods of the slowest configured decomposer (the paper uses about
        four).  Warmup values must be finite (non-finite samples are
        rejected with ``ValueError`` before they can poison the window);
        once live, NaN gaps are handled by the decomposer's own
        missing-value imputation.
    latency_window:
        Number of most recent per-point processing durations retained per
        series for the latency percentiles in :meth:`fleet_stats`.
    track_latency:
        Set to False to skip the two clock reads per point (marginally
        faster ingest, no latency percentiles in the stats).
    spec:
        Keyword-only.  An :class:`~repro.specs.EngineSpec` that fully
        configures the engine; mutually exclusive with the other
        parameters.  Prefer :meth:`from_spec`.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[Hashable], StreamingPipeline] | None = None,
        initialization_length: int | None = None,
        latency_window: int | None = None,
        track_latency: bool | None = None,
        *,
        spec: EngineSpec | None = None,
    ):
        if spec is not None:
            if (
                pipeline_factory is not None
                or initialization_length is not None
                or latency_window is not None
                or track_latency is not None
            ):
                raise ValueError(
                    "pass either spec= or (pipeline_factory, "
                    "initialization_length, latency_window, track_latency), "
                    "not both; a spec-built engine takes every setting from "
                    "the spec"
                )
            if not isinstance(spec, EngineSpec):
                raise TypeError(
                    f"spec must be an EngineSpec, got {type(spec).__name__}"
                )
            self.spec: EngineSpec | None = spec
            pipeline_factory = self._spec_factory(spec)
            initialization_length = spec.initialization_length
            latency_window = spec.latency_window
            track_latency = spec.track_latency
        else:
            if pipeline_factory is None or initialization_length is None:
                raise TypeError(
                    "MultiSeriesEngine requires either spec= or both "
                    "pipeline_factory and initialization_length"
                )
            warnings.warn(
                "constructing MultiSeriesEngine from a pipeline factory is "
                "deprecated: factory-built engines cannot be saved to a "
                "portable checkpoint.  Describe the fleet with an "
                "EngineSpec (repro.specs) and use MultiSeriesEngine."
                "from_spec(); per-key configuration goes in spec.overrides.",
                DeprecationWarning,
                stacklevel=2,
            )
            self.spec = None
        self.pipeline_factory = pipeline_factory
        self.initialization_length = check_positive_int(
            initialization_length, "initialization_length", minimum=2
        )
        self.latency_window = check_positive_int(
            1024 if latency_window is None else latency_window, "latency_window"
        )
        self.track_latency = True if track_latency is None else bool(track_latency)
        self._series: dict[Hashable, _SeriesState] = {}
        #: routes batched ingest of same-spec live series through the
        #: columnar fleet kernel; set to False to force the scalar path
        #: (outputs are identical either way -- the oracle tests rely on
        #: this toggle to compare the two paths).
        self.fleet_kernel_enabled = True
        #: smallest same-spec cohort worth advancing through the kernel: a
        #: NumPy array op on a handful of series costs more in dispatch
        #: overhead than the scalar loop it replaces, so tiny fleets (and
        #: single-key batches) stay on the scalar path.
        self.kernel_min_cohort = 8
        #: rounds advanced per kernel invocation on the grid fast path:
        #: ``None`` (default) drives every planned round of a batch as one
        #: time-block (the kernel splits internally on NaN rounds and
        #: shift-search triggers); ``1`` forces the legacy round-at-a-time
        #: path -- the oracle tests and the bench baseline use it to
        #: compare the two bit-identical paths.
        self.time_block_rounds: int | None = None
        #: smallest live-member fraction a kernel group may fall to before
        #: its survivors are re-homed: extraction (shard migration) leaves
        #: dead columns behind, and a sparse group pays full-width array
        #: ops for a shrinking cohort.  Survivors released below this
        #: occupancy re-absorb into a fresh dense group on the next
        #: batched ingest, bit-identically.
        self.group_min_occupancy = 0.5
        self._groups: dict[str, _FleetGroup] = {}
        self._absorbed: dict[Hashable, tuple[_FleetGroup, int]] = {}
        self._never_absorb: set = set()
        # ----- durable-session state (inert until open()/attach_store()) --
        #: series per durable checkpoint cohort: an incremental checkpoint
        #: re-serializes state one cohort at a time, so this bounds both
        #: the write amplification of a single dirty series (one cohort)
        #: and the segment count of a full fleet (n_series / size files).
        self.checkpoint_cohort_size = 64
        #: auto-checkpoint after this many WAL records (None: manual only);
        #: checked after each completed ingest/process call, never mid-batch.
        self.checkpoint_interval: int | None = None
        self._store: CheckpointStore | None = None
        self._generation = 0
        self._replaying = False
        self._wal_suppressed = False
        self._wal_records_pending = 0
        self._cohort_of: dict[Hashable, int] = {}
        self._cohort_members: dict[int, list] = {}
        self._cohort_segments: dict[int, str] = {}
        self._cohort_markers: dict[int, dict] = {}
        #: CRC32 of each clean cohort's segment payload, carried into the
        #: manifest so store.verify() can check segments it cannot decode
        self._cohort_crcs: dict[int, int] = {}
        self._next_cohort_id = 0
        #: what the last open()/recovery actually did (None before any
        #: recovery; a clean report on undamaged stores)
        self.last_recovery: RecoveryReport | None = None

    # --------------------------------------------------------- construction

    @staticmethod
    def _spec_factory(
        spec: EngineSpec,
    ) -> Callable[[Hashable], StreamingPipeline]:
        def factory(key: Hashable) -> StreamingPipeline:
            return StreamingPipeline.from_spec(spec.pipeline_for(key))

        return factory

    @classmethod
    def from_spec(cls, spec: EngineSpec) -> "MultiSeriesEngine":
        """Build an engine from a declarative :class:`EngineSpec`.

        The spec is plain data: it can come from a JSON file
        (``EngineSpec.from_json``), a checkpoint, or another process.  The
        engine keeps it available as :attr:`spec`.
        """
        return cls(spec=spec)

    @classmethod
    def for_oneshotstl(
        cls,
        period: int,
        initialization_length: int | None = None,
        anomaly_threshold: float = 5.0,
        latency_window: int = 1024,
        track_latency: bool = True,
        **oneshotstl_parameters,
    ) -> "MultiSeriesEngine":
        """Engine whose every series runs a OneShotSTL pipeline.

        ``initialization_length`` defaults to four periods, the paper's
        initialization window.  Extra keyword arguments are forwarded to
        :class:`repro.core.OneShotSTL` and must be primitive values (they
        are stored in the engine's :class:`EngineSpec`, so the resulting
        engine supports :meth:`save`).
        """
        if initialization_length is None:
            initialization_length = 4 * int(period)

        spec = EngineSpec(
            pipeline=PipelineSpec(
                decomposer=DecomposerSpec(
                    "oneshotstl", {"period": int(period), **oneshotstl_parameters}
                ),
                detector=DetectorSpec(
                    "nsigma", {"threshold": float(anomaly_threshold)}
                ),
            ),
            initialization_length=int(initialization_length),
            latency_window=latency_window,
            track_latency=track_latency,
        )
        return cls.from_spec(spec)

    # ------------------------------------------------------------ streaming

    def process(self, key: Hashable, value: float) -> EngineRecord:
        """Ingest one observation for one series.

        Unknown keys lazily create their pipeline; while the initialization
        window is filling the value is buffered and a ``warming`` record is
        returned.  The observation that completes the window triggers the
        batch initialization phase (still reported as ``warming``: its
        decomposition is part of the initialization result, not an online
        point).

        A key that batched ingest absorbed into the fleet kernel keeps its
        single-key semantics: the series' object state is materialized from
        the columnar arrays, processed through the ordinary scalar
        pipeline, and written back, so mixing ``process`` and ``ingest``
        freely is safe (and exactly equal to never batching at all).

        In a durable session the observation is WAL-appended *before*
        validation runs (logging must precede any chance of a state
        change).  A rejected observation therefore still leaves a record
        behind; replay re-rejects it identically, so recovery is
        unaffected -- but callers retry-looping a rejected value will
        grow the WAL by one dead record per attempt.
        """
        self._wal_append("point", key, value)
        record = self._process_unlogged(key, value)
        self._maybe_auto_checkpoint()
        return record

    def _process_unlogged(self, key: Hashable, value: float) -> EngineRecord:
        """The body of :meth:`process`, without WAL logging (replay path)."""
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            state = self._series[key]
            group.sync_series(column, state)
            record = self._process_live(key, state, float(value))
            group.load_series(column, state)
            return record
        state = self._series.get(key)
        if state is None:
            state = _SeriesState(self.pipeline_factory(key), self.latency_window)
            self._series[key] = state

        if not state.live:
            value = float(value)
            if not np.isfinite(value):
                # Online NaN gaps are imputed by the decomposer, but the
                # batch initialization phase needs finite values; reject the
                # sample up front (without buffering it) instead of letting
                # it poison the window and wedge the series.
                raise ValueError(
                    f"series {key!r} is still warming up and received a "
                    f"non-finite value ({value}); warmup values must be finite"
                )
            state.warmup.append(value)
            state.points += 1
            if len(state.warmup) >= self.initialization_length:
                window = np.asarray(state.warmup)
                # Discard the window if initialization fails so the series
                # starts a fresh one instead of retrying the same bad
                # window (and failing) on every subsequent observation.
                state.warmup = []
                state.pipeline.initialize(window)
                state.live = True
            return EngineRecord(key=key, status=SeriesStatus.WARMING, record=None)

        return self._process_live(key, state, value)

    def _track_latency_now(self) -> bool:
        """Whether this observation's duration should be recorded.

        WAL replay is excluded: replay-speed timings are not ingest
        latencies and would corrupt the post-recovery percentiles.
        """
        return self.track_latency and not self._replaying

    @hotpath
    def _process_live(
        self, key: Hashable, state: _SeriesState, value: float
    ) -> EngineRecord:
        """Scalar-path processing of one observation for a live series."""
        if self._track_latency_now():
            start = time.perf_counter()
            record = state.pipeline.process(value)
            state.latencies.append(time.perf_counter() - start)
        else:
            record = state.pipeline.process(value)
        state.points += 1
        if record.is_anomaly:
            state.anomalies += 1
        return EngineRecord(key=key, status=SeriesStatus.LIVE, record=record)

    def ingest(
        self, batch: dict | tuple | Sequence, *, columnar_results: bool = False
    ) -> "IngestResult | list[EngineRecord]":
        """Ingest a batch of observations, batching same-spec series.

        ``batch`` may be

        * a **row iterable** of ``(key, value)`` pairs (the original form),
        * a **columnar batch** ``{key: values}`` mapping each key to a
          scalar or a 1-D array of per-key observations (all arrays must
          share one length ``L``; the batch is equivalent to the
          interleaved rows ``[(key, values[t]) for t in range(L) for key
          in batch]``) -- the fastest input form: it is advanced round by
          round directly from the value grid, without building per-record
          Python tuples or re-deriving the round structure, or
        * **parallel arrays** ``(keys, values)`` -- a sequence of keys plus
          an equal-length NumPy array of values -- which also avoids
          per-record Python tuples on the way in.

        Results come back in (the equivalent) input order; multiple values
        for one key are processed oldest first.  By default a list of
        :class:`EngineRecord` is returned; with ``columnar_results=True``
        (or via :meth:`ingest_columnar`) the outcomes stay in
        struct-of-arrays form as an :class:`IngestResult` -- parallel
        NumPy arrays plus records materialized lazily on access -- which
        skips the dominant per-row record construction cost on large
        fleets.  Live series that share a
        :class:`~repro.specs.PipelineSpec` are advanced together through
        the columnar fleet kernel -- one batched solver step per IRLS
        iteration for the whole cohort -- with results identical to
        processing every observation through :meth:`process`.

        Application is *not* transactional: a rejected observation (e.g. a
        non-finite value, during warmup or live) raises out of the batch
        with every earlier observation already applied and every later one
        unapplied (batches containing such values are processed strictly
        sequentially to keep that contract).  Callers that need to resume
        should sanitize values up front, or re-submit only the tail of the
        batch that follows the offending observation.

        In a durable session (:meth:`open`) the *normalized* batch is
        appended to the write-ahead log -- in columnar form, one record
        per call -- before any state advances, so replaying the log
        reproduces the batch (including a mid-batch rejection) exactly.
        """
        if isinstance(batch, dict):
            round_keys, grid = self._grid_from_dict(batch)
            self._wal_append("grid", round_keys, grid)
            result = self._with_wal_suppressed(
                self._ingest_grid, round_keys, grid, columnar_results
            )
            self._maybe_auto_checkpoint()
            return result
        if (
            isinstance(batch, tuple)
            and len(batch) == 2
            and isinstance(batch[1], np.ndarray)
        ):
            keys, values = batch
            values = np.asarray(values, dtype=float)
            if values.ndim != 1 or len(keys) != values.size:
                raise ValueError(
                    "parallel-array ingest expects (keys, values) of equal "
                    "length with a 1-D value array"
                )
            keys = list(keys)
        else:
            rows = list(batch)
            try:
                keys = [row[0] for row in rows]
                values = np.array([row[1] for row in rows], dtype=float)
            except (TypeError, ValueError, IndexError):
                # Malformed rows or unconvertible values: let the sequential
                # path raise (or not) with its per-record semantics.
                self._wal_append("raw_rows", rows)
                result = self._with_wal_suppressed(
                    self._ingest_raw_rows, rows, columnar_results
                )
                self._maybe_auto_checkpoint()
                return result
        self._wal_append("rows", keys, values)
        result = self._with_wal_suppressed(
            self._ingest_keys_values, keys, values, columnar_results
        )
        self._maybe_auto_checkpoint()
        return result

    def _ingest_raw_rows(self, rows: list, columnar_results: bool):
        """Per-record processing of rows that resisted columnar conversion."""
        process = self._process_unlogged
        records = [process(key, value) for key, value in rows]
        if columnar_results:
            return IngestResult.from_records(
                [record.key for record in records], records
            )
        return records

    def ingest_columnar(self, batch: dict | tuple | Sequence) -> IngestResult:
        """Ingest a batch and keep the results columnar (arrays out).

        Equivalent to ``ingest(batch, columnar_results=True)``: the
        returned :class:`IngestResult` exposes the per-point outputs as
        parallel NumPy arrays and materializes :class:`EngineRecord` rows
        only on demand, which roughly halves steady-state large-fleet
        ingest cost versus the eager record list.
        """
        return self.ingest(batch, columnar_results=True)

    def ingest_grid(
        self,
        round_keys: Sequence[Hashable],
        grid: np.ndarray,
        *,
        columnar_results: bool = True,
    ) -> "IngestResult | list[EngineRecord]":
        """Ingest a pre-normalized round-major ``(L, n)`` value grid.

        Equivalent to ``ingest({key: grid[:, j] for j, key in
        enumerate(round_keys)})`` without rebuilding (and re-validating,
        re-stacking) the dict: column ``j`` holds ``L`` consecutive
        observations of ``round_keys[j]``, applied round by round.  This
        is the shard-transport entry point -- a
        :class:`~repro.sharding.ShardRouter` ships each worker its slice
        of a batch as a ``(keys, grid)`` pair, and the worker feeds it
        straight to the engine's columnar fast path.  Results default to
        columnar (:class:`IngestResult`), the form that fans back in as
        arrays.

        WAL and auto-checkpoint semantics match :meth:`ingest` exactly:
        in a durable session the grid is logged in one record before any
        state advances.
        """
        round_keys = list(round_keys)
        grid = np.asarray(grid, dtype=float)
        if grid.ndim != 2 or grid.shape[1] != len(round_keys):
            raise ValueError(
                "ingest_grid() expects a round-major (L, n) grid with one "
                f"column per key; got shape {grid.shape} for "
                f"{len(round_keys)} keys"
            )
        if len(set(round_keys)) != len(round_keys):
            raise ValueError("ingest_grid() keys must be unique")
        self._wal_append("grid", round_keys, grid)
        result = self._with_wal_suppressed(
            self._ingest_grid, round_keys, grid, columnar_results
        )
        self._maybe_auto_checkpoint()
        return result

    def ingest_many(
        self,
        batches: Sequence,
        *,
        columnar_results: bool = True,
    ) -> list:
        """Ingest several batches with one WAL group commit.

        Each element of ``batches`` is a columnar batch accepted by
        :meth:`ingest` -- a ``{key: values}`` dict or a pre-normalized
        ``(round_keys, grid)`` pair as in :meth:`ingest_grid`.  State
        advances exactly as the equivalent sequence of :meth:`ingest`
        calls would, and one :class:`IngestResult` (or record list) is
        returned per batch, in order.

        The difference is durability cadence: in a durable session every
        batch is normalized and encoded up front, the whole group of WAL
        records is appended with *one* flush (one ``fsync`` when the
        store syncs) via ``CheckpointStore.wal_append_many``, and only
        then does any state advance.  A crash mid-commit loses at most a
        suffix of the group -- each surviving record is complete -- and
        replay applies the surviving prefix exactly as if those batches
        alone had been ingested.
        """
        normalized = []
        for batch in batches:
            if isinstance(batch, dict):
                round_keys, grid = self._grid_from_dict(batch)
            elif isinstance(batch, tuple) and len(batch) == 2:
                round_keys = list(batch[0])
                grid = np.asarray(batch[1], dtype=float)
                if grid.ndim != 2 or grid.shape[1] != len(round_keys):
                    raise ValueError(
                        "ingest_many() grid batches must be round-major "
                        f"(L, n) with one column per key; got shape "
                        f"{grid.shape} for {len(round_keys)} keys"
                    )
                if len(set(round_keys)) != len(round_keys):
                    raise ValueError("ingest_many() keys must be unique")
            else:
                raise TypeError(
                    "ingest_many() accepts {key: values} dicts or "
                    "(round_keys, grid) pairs; got "
                    f"{type(batch).__name__}"
                )
            normalized.append((round_keys, grid))
        self._wal_append_many(
            [("grid", round_keys, grid) for round_keys, grid in normalized]
        )
        results = [
            self._with_wal_suppressed(
                self._ingest_grid, round_keys, grid, columnar_results
            )
            for round_keys, grid in normalized
        ]
        self._maybe_auto_checkpoint()
        return results

    @staticmethod
    def _grid_from_dict(batch: dict) -> tuple[list, np.ndarray]:
        """Validate ``{key: values}`` into a round-major ``(L, n)`` grid."""
        length = None
        columns = []
        for key, values in batch.items():
            values = np.atleast_1d(np.asarray(values, dtype=float))
            if values.ndim != 1:
                raise ValueError(
                    f"columnar ingest values for key {key!r} must be scalars "
                    "or 1-D arrays"
                )
            if length is None:
                length = values.size
            elif values.size != length:
                raise ValueError(
                    "columnar ingest requires equal-length value arrays; "
                    f"key {key!r} has {values.size} values, expected {length}"
                )
            columns.append(values)
        if not columns:
            return [], np.zeros((0, 0))
        return list(batch), np.stack(columns, axis=1)

    def _sequential_fallback(
        self, keys: list, values, columnar_results: bool
    ):
        """Strictly sequential per-observation processing (exact raise order)."""
        process = self.process
        records = [process(key, value) for key, value in zip(keys, values)]
        if columnar_results:
            return IngestResult.from_records(keys, records)
        return records

    @hotpath
    def _ingest_grid(
        self, round_keys: list, grid: np.ndarray, columnar_results: bool
    ):
        """Advance a round-major ``(L, n)`` value grid, one round per row.

        This is the columnar fast path: the round structure is implied by
        the grid (every key appears exactly once per round), so the
        per-observation occurrence bookkeeping of the generic path is
        skipped entirely, and once every key is kernel-absorbed the
        per-round routing collapses to a cached plan of pure array
        operations.
        """
        n_rounds, n = grid.shape
        if n_rounds * n == 0:
            result = IngestResult(round_keys, n_rounds)
            return result if columnar_results else []
        if not self.fleet_kernel_enabled or (
            n < self.kernel_min_cohort and not self._absorbed
        ):
            keys = round_keys * n_rounds
            return self._sequential_fallback(
                keys, grid.reshape(-1), columnar_results
            )
        bad = ~np.isfinite(grid)
        if bad.any():
            # NaN aimed at an already-absorbed series is a missing point the
            # kernel imputes; anything else (infinities, NaN during warmup
            # or on a scalar-path series) must raise exactly where the
            # sequential path would, so the whole batch stays sequential.
            for row, column in zip(*np.nonzero(bad)):
                if not (
                    np.isnan(grid[row, column])
                    and round_keys[column] in self._absorbed
                ):
                    keys = round_keys * n_rounds
                    return self._sequential_fallback(
                        keys, grid.reshape(-1), columnar_results
                    )
        result = IngestResult(round_keys, n_rounds)
        flat = grid.reshape(-1)
        plan = self._grid_plan(round_keys)
        block_rounds = self.time_block_rounds
        row = 0
        while row < n_rounds:
            if plan is None:
                # repro: allow[HP001] cold fallback: runs only while keys
                # are still warming; collapses to the cached pure-array
                # plan once every key is absorbed
                entries = [
                    (key, row * n + j) for j, key in enumerate(round_keys)
                ]
                self._process_round(entries, flat, result)
                # Warming keys may have gone live and been absorbed during
                # the round; once every key is routed the remaining rounds
                # take the planned (pure array) path.
                plan = self._grid_plan(round_keys)
                row += 1
                continue
            stop = (
                n_rounds
                if block_rounds is None
                else min(n_rounds, row + block_rounds)
            )
            if stop - row == 1:
                # One planned round left (or time_block_rounds == 1): the
                # round-at-a-time kernel path, unchanged.
                base = row * n
                row_values = grid[row]
                for group, columns, takes, full in plan:
                    self._advance_cohort(
                        group,
                        columns,
                        takes + base,
                        row_values[takes],
                        full,
                        result,
                    )
            else:
                for group, columns, takes, full in plan:
                    self._advance_cohort_block(
                        group, columns, takes, grid, row, stop, n, full, result
                    )
            row = stop
        return result if columnar_results else result.records()

    def _grid_plan(self, round_keys: list):
        """Cacheable per-group routing of one full round.

        Returns ``[(group, columns, takes, full), ...]`` covering every
        key, or ``None`` when any key is off the kernel path (warming,
        never-absorbable, or in a cohort below the kernel minimum) -- the
        generic round machinery handles those rounds.
        """
        absorbed = self._absorbed
        parts: dict[int, list] = {}
        groups: dict[int, _FleetGroup] = {}
        for j, key in enumerate(round_keys):
            location = absorbed.get(key)
            if location is None:
                return None
            group, column = location
            identity = id(group)
            groups[identity] = group
            parts.setdefault(identity, []).append((column, j))
        plan = []
        for identity, members in parts.items():
            group = groups[identity]
            if len(members) < min(self.kernel_min_cohort, group.n_series):
                return None
            columns = np.array([column for column, _j in members], dtype=np.intp)
            takes = np.array([j for _column, j in members], dtype=np.intp)
            full = columns.size == group.kernel.n_series
            if full:
                # Whole-group rounds take the in-place (no gather/scatter)
                # kernel path; results are scattered back by position, so
                # sorting into column order is free for the caller.
                order = np.argsort(columns)
                columns = columns[order]
                takes = takes[order]
            plan.append((group, columns, takes, full))
        return plan

    def _ingest_keys_values(
        self, keys: list, values: np.ndarray, columnar_results: bool
    ):
        if not keys:
            return IngestResult([], 0) if columnar_results else []
        if not self.fleet_kernel_enabled or (
            len(keys) < self.kernel_min_cohort and not self._absorbed
        ):
            # Nothing is (or could become) kernel-batched at this batch
            # size: skip the round-building machinery entirely.
            return self._sequential_fallback(keys, values, columnar_results)
        bad = ~np.isfinite(values)
        if bad.any():
            # Same contract as the grid path: only NaN-to-absorbed-series
            # may proceed columnar, everything else raises sequentially.
            for position in np.flatnonzero(bad):
                if not (
                    np.isnan(values[position])
                    and keys[position] in self._absorbed
                ):
                    return self._sequential_fallback(
                        keys, values, columnar_results
                    )

        # Split the batch into rounds holding at most one observation per
        # key (values for one key apply oldest first), then advance each
        # round's kernel cohorts with batched array ops and everything else
        # through the scalar path.
        result = IngestResult(keys, 1)
        occurrence: dict = {}
        rounds: list[list] = []
        for position, key in enumerate(keys):
            seen = occurrence.get(key, 0)
            occurrence[key] = seen + 1
            if seen == len(rounds):
                rounds.append([])
            rounds[seen].append((key, position))
        for round_entries in rounds:
            self._process_round(round_entries, values, result)
        return result if columnar_results else result.records()

    def _process_round(
        self, entries: list, values: np.ndarray, result: IngestResult
    ) -> None:
        """Process one round (unique keys) of a batched ingest."""
        # Absorb every newly eligible series first, cohort-at-a-time, so a
        # fleet that goes live together is packed in one shot.
        to_absorb: dict[str, list] = {}
        for key, _position in entries:
            if key in self._absorbed or key in self._never_absorb:
                continue
            state = self._series.get(key)
            if state is None or not state.live:
                continue
            spec = self._absorption_spec(key, state)
            if spec is not None:
                to_absorb.setdefault(spec.to_json(sort_keys=True), []).append(
                    (spec, key, state)
                )
        for spec_key, items in to_absorb.items():
            group = self._groups.get(spec_key)
            if group is None:
                if len(items) < self.kernel_min_cohort:
                    # Too small a cohort to pay off; the keys stay on the
                    # scalar path and are reconsidered on later rounds
                    # (e.g. once more series of this spec go live).
                    continue
                group = self._groups[spec_key] = _FleetGroup(
                    items[0][0], self.latency_window, self.track_latency
                )
            group.absorb(
                [key for _spec, key, _state in items],
                [state for _spec, _key, state in items],
            )
            for _spec, key, _state in items:
                self._absorbed[key] = (group, group.column_of[key])

        # Partition the round into kernel cohorts and scalar leftovers.
        parts: dict[int, list] = {}
        groups: dict[int, _FleetGroup] = {}
        scalar_entries = []
        for key, position in entries:
            location = self._absorbed.get(key)
            if location is None:
                scalar_entries.append((key, position))
            else:
                group, column = location
                identity = id(group)
                groups[identity] = group
                parts.setdefault(identity, []).append((key, position, column))
        for identity, members in parts.items():
            group = groups[identity]
            if len(members) < min(self.kernel_min_cohort, group.n_series):
                # A round touching only a few members of a large group is
                # cheaper through the single-key path (which materializes
                # and writes back just those columns) than through a
                # gathered sub-kernel.
                for key, position, _column in members:
                    result._set_eager(
                        position, self.process(key, float(values[position]))
                    )
                continue
            full = len(members) == group.kernel.n_series
            if full:
                members = sorted(members, key=lambda member: member[2])
            columns = np.array(
                [column for _key, _position, column in members], dtype=np.intp
            )
            positions = np.array(
                [position for _key, position, _column in members], dtype=np.intp
            )
            self._advance_cohort(
                group, columns, positions, values[positions], full, result
            )
        for key, position in scalar_entries:
            result._set_eager(
                position, self.process(key, float(values[position]))
            )

    @hotpath
    def _advance_cohort(
        self,
        group: _FleetGroup,
        columns: np.ndarray,
        positions: np.ndarray,
        batch_values: np.ndarray,
        full: bool,
        result: IngestResult,
    ) -> None:
        """Advance one kernel cohort and scatter the outputs columnar.

        The per-member bookkeeping -- record indices, pending point and
        anomaly counters, latency accounting -- is all batched array
        operations; no per-row Python objects are built here (records are
        materialized lazily by the :class:`IngestResult`).
        """
        track_latency = self._track_latency_now()
        if track_latency:
            start = time.perf_counter()
        if full:
            out = group.kernel.update(batch_values)
            scores, flags = group.scorer.update(out.detection_residual)
        else:
            out = group.kernel.update(batch_values, columns=columns)
            scorer = group.scorer.select(columns)
            scores, flags = scorer.update(out.detection_residual)
            group.scorer.assign(columns, scorer)
        if track_latency:
            per_point = (time.perf_counter() - start) / columns.size
            group.record_latency(None if full else columns, per_point)
        result.index[positions] = group.indices if full else group.indices[columns]
        result.value[positions] = out.value
        result.trend[positions] = out.trend
        result.seasonal[positions] = out.seasonal
        result.residual[positions] = out.residual
        result.anomaly_score[positions] = scores
        result.is_anomaly[positions] = flags
        result.detection_residual[positions] = out.detection_residual
        result.live[positions] = True
        if full:
            group.indices += 1
            group.points_pending += 1
            group.anomalies_pending[flags] += 1
        else:
            group.indices[columns] += 1
            group.points_pending[columns] += 1
            flagged = columns[flags]
            if flagged.size:
                group.anomalies_pending[flagged] += 1

    @hotpath
    def _advance_cohort_block(
        self,
        group: _FleetGroup,
        columns: np.ndarray,
        takes: np.ndarray,
        grid: np.ndarray,
        row: int,
        stop: int,
        n: int,
        full: bool,
        result: IngestResult,
    ) -> None:
        """Advance one kernel cohort ``stop - row`` rounds in one block.

        The time-blocked counterpart of :meth:`_advance_cohort`: one
        :meth:`FleetKernel.update_block` call moves the whole cohort
        through every round of the block (splitting internally on NaN
        rounds and shift-search triggers, bit-identically to the
        round-at-a-time path), and every scatter into the
        :class:`IngestResult` is one 2-D fancy write instead of one write
        per round.
        """
        track_latency = self._track_latency_now()
        if track_latency:
            start = time.perf_counter()
        rounds = stop - row
        block_values = grid[row:stop, takes]
        if full:
            out = group.kernel.update_block(block_values)
            scores, flags = group.scorer.update_block(out.detection_residual)
        else:
            out = group.kernel.update_block(block_values, columns=columns)
            scorer = group.scorer.select(columns)
            scores, flags = scorer.update_block(out.detection_residual)
            group.scorer.assign(columns, scorer)
        if track_latency:
            per_point = (time.perf_counter() - start) / (rounds * columns.size)
            group.record_latency_block(
                None if full else columns, per_point, rounds
            )
        positions = takes[None, :] + n * np.arange(row, stop, dtype=np.intp)[:, None]
        round_offsets = np.arange(rounds, dtype=np.int64)[:, None]
        indices = group.indices if full else group.indices[columns]
        result.index[positions] = indices[None, :] + round_offsets
        result.value[positions] = out.value
        result.trend[positions] = out.trend
        result.seasonal[positions] = out.seasonal
        result.residual[positions] = out.residual
        result.anomaly_score[positions] = scores
        result.is_anomaly[positions] = flags
        result.detection_residual[positions] = out.detection_residual
        result.live[positions] = True
        anomalies = flags.sum(axis=0)
        if full:
            group.indices += rounds
            group.points_pending += rounds
            group.anomalies_pending += anomalies
        else:
            group.indices[columns] += rounds
            group.points_pending[columns] += rounds
            group.anomalies_pending[columns] += anomalies

    def _absorption_spec(self, key: Hashable, state: _SeriesState):
        """Spec to group ``key`` under, or None (not yet / never packable)."""
        pipeline = state.pipeline
        if (
            type(pipeline) is not StreamingPipeline
            or type(pipeline.decomposer) is not OneShotSTL
            or type(pipeline.scorer) is not NSigma
        ):
            self._never_absorb.add(key)
            return None
        if not FleetKernel.eligible(pipeline.decomposer):
            if pipeline.decomposer._initializer is not None:
                self._never_absorb.add(key)
            # Otherwise the solvers are still in dense warm-up: retry on a
            # later round.
            return None
        spec = pipeline.spec
        if spec is None:
            self._never_absorb.add(key)
            return None
        return spec

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` values ahead for one live series."""
        state = self._series[key]
        if not state.live:
            raise RuntimeError(f"series {key!r} is still warming up")
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            group.sync_series(column, state)
        return state.pipeline.forecast(horizon)

    def _sync_all(self) -> None:
        """Materialize every absorbed series' object state from the kernel."""
        self._sync_keys(self._absorbed)

    def _sync_keys(self, keys: Iterable[Hashable]) -> None:
        """Materialize the given absorbed series, batched group by group.

        Non-absorbed keys are skipped (their object state is already
        authoritative); the per-group batches go through
        :meth:`_FleetGroup.sync_members`, so exporting a cohort costs a
        handful of gathered array reads rather than per-series indexing.
        """
        by_group: dict[int, tuple[_FleetGroup, list, list]] = {}
        for key in keys:
            location = self._absorbed.get(key)
            if location is None:
                continue
            group, column = location
            entry = by_group.get(id(group))
            if entry is None:
                entry = by_group[id(group)] = (group, [], [])
            entry[1].append(column)
            entry[2].append(self._series[key])
        for group, columns, states in by_group.values():
            group.sync_members(np.asarray(columns, dtype=np.intp), states)

    def _reset_fleet_groups(self) -> None:
        """Drop all columnar bookkeeping (after replacing ``_series``)."""
        self._groups = {}
        self._absorbed = {}
        self._never_absorb = set()

    def _rebalance_groups(self) -> None:
        """Re-home the members of sparse kernel groups (post-churn compaction).

        Extraction vacates columns without shrinking the arrays, so after
        enough churn a group advances a wide kernel for a thinning cohort
        and its full-round (in-place, no gather/scatter) path becomes
        unreachable.  Groups whose occupancy falls below
        :attr:`group_min_occupancy` are dissolved: the survivors' object
        state is materialized (batched) and they return to the scalar
        path, from which the next batched ingest re-absorbs them into a
        fresh, dense group.  Scalar and kernel paths produce identical
        state, so re-homing never perturbs the stream.
        """
        dissolved = []
        for spec_key, group in self._groups.items():
            if group.n_series and group.occupancy >= self.group_min_occupancy:
                continue
            survivors = [
                (column, key)
                for column, key in enumerate(group.keys)
                if key is not None
            ]
            if survivors:
                columns = np.array(
                    [column for column, _key in survivors], dtype=np.intp
                )
                states = [self._series[key] for _column, key in survivors]
                group.sync_members(columns, states)
                for _column, key in survivors:
                    del self._absorbed[key]
            dissolved.append(spec_key)
        for spec_key in dissolved:
            del self._groups[spec_key]

    # ------------------------------------------------------------- fleet API

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._series

    def keys(self) -> list[Hashable]:
        """All known series keys, in first-seen order."""
        return list(self._series)

    def live_keys(self) -> list[Hashable]:
        """Keys of the series that completed initialization."""
        return [key for key, state in self._series.items() if state.live]

    def series_stats(self, key: Hashable) -> SeriesStats:
        """Statistics of a single series."""
        state = self._series[key]
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            group.flush_counters(column, state)
            group.flush_latency(column, state)
        latencies = state.latencies.to_array()
        return SeriesStats(
            key=key,
            status=SeriesStatus.LIVE if state.live else SeriesStatus.WARMING,
            points=state.points,
            anomalies=state.anomalies,
            latency=(
                summarize_latencies(latencies, method=f"series[{key!r}]")
                if latencies.size
                else None
            ),
        )

    def fleet_stats(self) -> FleetStats:
        """Aggregate statistics across every series in the fleet."""
        per_series = {key: self.series_stats(key) for key in self._series}
        live = sum(
            1 for stats in per_series.values() if stats.status == SeriesStatus.LIVE
        )
        return FleetStats(
            series_total=len(per_series),
            series_live=live,
            series_warming=len(per_series) - live,
            points_total=sum(stats.points for stats in per_series.values()),
            anomalies_total=sum(stats.anomalies for stats in per_series.values()),
            per_series=per_series,
        )

    # ------------------------------------- series migration (shard handoff)

    def extract_series(self, keys: Iterable[Hashable]) -> dict:
        """Remove the given series from this engine and return their state.

        The returned mapping ``{key: state}`` holds each series' complete,
        materialized state (pipeline, warmup buffer, counters, latency
        ring) -- the same per-series objects a checkpoint carries, so it
        pickles across process boundaries -- ready to hand to
        :meth:`adopt_series` on another engine.  Extraction is the drain
        half of a live shard migration.

        Kernel-absorbed series are synced out first and their columns
        vacated; groups whose occupancy falls below
        :attr:`group_min_occupancy` are dissolved and their survivors
        re-homed (see ``_rebalance_groups``).  Durable cohorts that held
        an extracted key are forced dirty, and in a durable session the
        extraction is committed with an immediate :meth:`checkpoint`
        before returning: extraction is a control-plane operation with no
        WAL representation, so the manifest must move past it atomically
        -- otherwise a crash would recover the extracted series into
        *this* engine while another engine also serves them.  (The
        migration coordinator holds the returned states until the target
        engine has committed its :meth:`adopt_series`; a coordinator
        crash inside that window loses the in-flight series, which is the
        usual hand-off trade against duplicating them.)

        Unknown keys raise ``KeyError`` before anything is touched.
        """
        keys = list(keys)
        unknown = [key for key in keys if key not in self._series]
        if unknown:
            raise KeyError(
                f"cannot extract series not in this engine: {unknown!r}"
            )
        if len(set(keys)) != len(keys):
            raise ValueError("extract_series() keys must be unique")
        self._sync_keys(keys)
        extracted = {}
        touched_cohorts = set()
        for key in keys:
            location = self._absorbed.pop(key, None)
            if location is not None:
                group, column = location
                group.vacate(column, key)
            self._never_absorb.discard(key)
            extracted[key] = self._series.pop(key)
            cohort_id = self._cohort_of.pop(key, None)
            if cohort_id is not None:
                self._cohort_members[cohort_id].remove(key)
                touched_cohorts.add(cohort_id)
        for cohort_id in touched_cohorts:
            # Dropping the cohort's markers forces it dirty: its existing
            # segment still contains the extracted series, and a
            # clean-reading cohort would let recovery resurrect them.
            self._cohort_markers.pop(cohort_id, None)
            if not self._cohort_members[cohort_id]:
                del self._cohort_members[cohort_id]
                self._cohort_segments.pop(cohort_id, None)
        self._rebalance_groups()
        if self._store is not None:
            self.checkpoint()
        return extracted

    def adopt_series(self, states: dict) -> None:
        """Install series extracted from another engine (shard handoff).

        ``states`` is the mapping returned by :meth:`extract_series` --
        same process or unpickled from another one.  Adopted series keep
        their exact stream position: the next observation each one sees
        continues bit-identically to never having moved (the engine's
        scalar and kernel paths guarantee this; adopted live series are
        re-absorbed lazily by the next batched ingest).  Keys already
        present in this engine are rejected before anything is installed.

        In a durable session the adoption is committed with an immediate
        :meth:`checkpoint` before returning, so once this method returns
        the migration's target side is crash-safe.
        """
        if not isinstance(states, dict) or not all(
            isinstance(state, _SeriesState) for state in states.values()
        ):
            raise TypeError(
                "adopt_series() takes the mapping returned by "
                "extract_series(): {key: per-series state}"
            )
        duplicates = [key for key in states if key in self._series]
        if duplicates:
            raise ValueError(
                "cannot adopt series already present in this engine: "
                f"{duplicates!r}"
            )
        for key, state in states.items():
            self._series[key] = state
        if self._store is not None and states:
            self.checkpoint()

    # ------------------------------------------------------ durable sessions

    def __enter__(self) -> "MultiSeriesEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # A clean exit checkpoints (the WAL is then empty and recovery is
        # instant); an exception skips the checkpoint but keeps the WAL --
        # everything ingested before the failure replays on reopen.
        self.close(checkpoint=exc_type is None)

    @staticmethod
    def _coerce_store(store: "CheckpointStore | str | os.PathLike") -> CheckpointStore:
        if isinstance(store, CheckpointStore):
            return store
        if isinstance(store, (str, os.PathLike)):
            return DirectoryCheckpointStore(store)
        raise TypeError(
            "store must be a CheckpointStore or a path to a store "
            f"directory, got {type(store).__name__}"
        )

    @classmethod
    def open(
        cls,
        store: "CheckpointStore | str | os.PathLike",
        spec: EngineSpec | None = None,
        recovery: str = "strict",
    ) -> "MultiSeriesEngine":
        """Open a durable engine session on ``store`` (create or recover).

        ``store`` is a :class:`~repro.durability.CheckpointStore` or a
        path (``str`` / :class:`os.PathLike`) to a
        :class:`~repro.durability.DirectoryCheckpointStore` directory.

        * **Empty store**: ``spec`` is required; the engine is built from
          it and the spec is committed to the store's manifest immediately,
          so even a crash before the first :meth:`checkpoint` recovers
          (spec from the manifest, data from the WAL).
        * **Populated store**: the engine is rebuilt from the latest
          consistent manifest -- configuration comes from the manifest, so
          no code-side configuration is needed -- and the surviving WAL
          tail is replayed bit-identically.  Passing ``spec`` is then only
          a cross-check: a mismatch raises ``ValueError``.

        The returned engine is a context manager: ``with
        MultiSeriesEngine.open(...) as engine: ...`` checkpoints on clean
        exit and closes the store either way.  While the session is open,
        every ingested batch is WAL-appended before state advances and
        :meth:`checkpoint` persists dirty cohorts incrementally.

        Two caveats.  *Runtime tuning knobs* --
        :attr:`checkpoint_interval`, :attr:`checkpoint_cohort_size`,
        :attr:`kernel_min_cohort` -- are process-local, not part of the
        stream's configuration, so they are not stored in the manifest:
        re-set them after ``open()`` if you changed the defaults.  And
        WAL records carry their keys/values via pickle, so they share the
        checkpoint's portability constraints: keys and values must
        unpickle in the recovering process (classes defined in a script's
        ``__main__`` or in modules absent on the recovery side will fail
        the replay with :class:`~repro.durability.CorruptCheckpointError`).

        ``recovery`` selects the corruption policy:

        * ``"strict"`` (default): any damaged artifact raises
          :class:`~repro.durability.CorruptCheckpointError` -- nothing is
          modified, nothing is silently lost.
        * ``"truncate"``: a corrupt WAL frame ends replay there (the
          readable prefix is kept, the rest of the chain is dropped from
          replay but left on disk); segment damage still raises.
        * ``"quarantine"``: damaged cohort segments and WAL suffixes are
          *moved aside* into the store's ``quarantine/`` directory and
          recovery continues with every unaffected series; the surviving
          state is re-checkpointed immediately so the store is consistent
          again.  What happened -- down to the affected series keys -- is
          recorded on ``engine.last_recovery``.
        """
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, "
                f"got {recovery!r}"
            )
        store = cls._coerce_store(store)
        manifest = store.read_manifest()
        if manifest is None:
            if spec is None:
                raise ValueError(
                    f"checkpoint store {store.describe()} is empty and no "
                    "spec was given: opening a fresh durable session needs "
                    "an EngineSpec (recovery reads it from the manifest)"
                )
            engine = cls.from_spec(spec)
            engine.attach_store(store, checkpoint=False)
            return engine
        if spec is not None:
            # Cross-check before recovery runs: rebuilding segments and
            # replaying the WAL of a large store is expensive, and a
            # mismatched spec fails regardless of what they contain.
            stored = EngineSpec.from_dict(
                validate_manifest(manifest, store.describe())["engine_spec"]
            )
            if stored != spec:
                store.close()
                raise ValueError(
                    f"checkpoint store {store.describe()} already holds a "
                    "session with a different EngineSpec; recovery always "
                    "uses the stored spec.  Open without spec=, or use a "
                    f"fresh store.  stored={stored!r} given={spec!r}"
                )
        return cls._recover(store, manifest, recovery)

    def attach_store(
        self, store: "CheckpointStore | str | os.PathLike", checkpoint: bool = True
    ) -> None:
        """Bind this engine to an *empty* store and start journaling.

        The manifest (carrying the engine's spec) is committed immediately
        and the WAL opens, so everything ingested from here on is
        recoverable.  With ``checkpoint=True`` (default) the engine's
        *current* state is persisted right away too -- otherwise series
        that exist now are only durable after the next :meth:`checkpoint`.
        """
        if self._store is not None:
            raise RuntimeError(
                "engine is already attached to a checkpoint store; close() "
                "the current session first"
            )
        if self.spec is None:
            raise ValueError(
                "only spec-built engines can open a durable session: the "
                "manifest stores the EngineSpec so recovery needs no "
                "code-side configuration (construct via from_spec() or "
                "for_oneshotstl())"
            )
        store = self._coerce_store(store)
        if store.read_manifest() is not None:
            raise ValueError(
                f"checkpoint store {store.describe()} already holds a "
                "session; use MultiSeriesEngine.open(store) to recover it, "
                "or point attach_store() at a fresh location"
            )
        self._generation = 0
        # Any bookkeeping from a previous session describes segments of the
        # *old* store: dropped, so every cohort reads as dirty and the
        # first checkpoint writes complete segments into this store.
        self._cohort_segments = {}
        self._cohort_markers = {}
        self._cohort_crcs = {}
        store.write_manifest(
            build_manifest(0, self.spec.to_dict(), [], wal_name(0))
        )
        store.wal_start(wal_name(0))
        self._store = store
        self._wal_records_pending = 0
        if checkpoint and self._series:
            self.checkpoint()

    @classmethod
    def _recover(
        cls,
        store: CheckpointStore,
        manifest: dict,
        recovery: str = "strict",
    ) -> "MultiSeriesEngine":
        """Rebuild an engine from a manifest + segments + WAL tail."""
        source = store.describe()
        manifest = validate_manifest(manifest, source)
        if recovery == "quarantine" and not hasattr(store, "quarantine_segment"):
            raise ValueError(
                "recovery='quarantine' needs a store with quarantine "
                f"support (a DirectoryCheckpointStore); "
                f"{type(store).__name__} has none"
            )
        engine = cls.from_spec(EngineSpec.from_dict(manifest["engine_spec"]))
        quarantined_cohorts: list[QuarantinedCohort] = []
        quarantined_keys: set = set()
        for cohort in manifest["cohorts"]:
            cohort_id = int(cohort["id"])
            name = cohort["segment"]
            # Validate the whole cohort before committing any of it to
            # the engine: damage discovered on the Nth key must not leave
            # keys 0..N-1 half-registered (strict recovery re-raises, but
            # quarantine keeps going with the rest of the store).
            try:
                payload = store.read_segment(name)
                expected_crc = cohort.get("crc")
                if (
                    expected_crc is not None
                    and zlib.crc32(payload) != expected_crc
                ):
                    raise CorruptCheckpointError(
                        f"{source}/{name}: segment bytes fail their "
                        f"manifest CRC (found {zlib.crc32(payload)}, "
                        f"manifest says {expected_crc})"
                    )
                states = decode_segment(payload, f"{source}/{name}")
                for key, state in states.items():
                    if not isinstance(state, _SeriesState):
                        raise CorruptCheckpointError(
                            f"{source}/{name}: checkpoint per-series state "
                            f"is malformed (key {key!r} holds a "
                            f"{type(state).__name__}, expected engine "
                            "series state)"
                        )
            except CorruptCheckpointError as error:
                if recovery != "quarantine":
                    raise
                keys = decode_manifest_keys(cohort.get("keys"))
                if keys is None:
                    # Without the manifest's key list the cohort's WAL
                    # records cannot be filtered out of replay -- they
                    # would fabricate partial series holding only
                    # post-checkpoint points.  That is silent corruption,
                    # so it refuses rather than degrades.
                    raise CorruptCheckpointError(
                        f"{source}/{name}: cannot quarantine this cohort "
                        "-- the manifest records no key list for it "
                        "(checkpoint written by an older build?); recover "
                        "strict from a backup instead"
                    ) from error
                store.quarantine_segment(name)
                quarantined_cohorts.append(
                    QuarantinedCohort(cohort_id, name, keys, str(error))
                )
                quarantined_keys.update(keys)
                continue
            members = []
            markers = {}
            for key, state in states.items():
                engine._series[key] = state
                members.append(key)
                # Progress markers are taken *before* WAL replay, so they
                # describe what the segment holds: replayed series drift
                # past their marker and read as dirty at the next
                # checkpoint, untouched series stay clean.
                markers[key] = state.points
            engine._cohort_members[cohort_id] = members
            engine._cohort_segments[cohort_id] = name
            engine._cohort_markers[cohort_id] = markers
            if cohort.get("crc") is not None:
                engine._cohort_crcs[cohort_id] = int(cohort["crc"])
            for key in members:
                engine._cohort_of[key] = cohort_id
        engine._next_cohort_id = (
            max(engine._cohort_members, default=-1) + 1
        )
        engine._generation = int(manifest["generation"])
        engine._store = store
        # _replaying also suspends latency recording (see _track_latency_now):
        # the ring buffers hold *observed ingest* durations, and
        # replay-speed timings (on the record-free columnar path, usually
        # much faster) would fabricate post-recovery latency percentiles.
        engine._replaying = True
        # Size-based rotation may have opened parts past the last manifest
        # write, so the chain is extended by *existence* beyond what the
        # manifest recorded -- a crash can even land between opening a
        # fresh part and its first append, leaving an empty segment that
        # is still the chain's live tail (record counts would miss it).
        chain = list(manifest["wal"])
        while True:
            successor = next_wal_name(chain[-1])
            if not store.wal_exists(successor):
                break
            chain.append(successor)
        replayed = 0
        lost = 0
        quarantined_wal: list[QuarantinedWalSuffix] = []
        findings: list = []
        repaired = False
        try:
            if recovery == "strict" and not quarantined_keys:
                for name in chain:
                    for payload in store.wal_records(name):
                        engine._apply_wal_record(
                            decode_wal_record(payload, f"{source}/{name}")
                        )
                        replayed += 1
            else:
                (
                    replayed,
                    lost,
                    quarantined_wal,
                    findings,
                    repaired,
                ) = engine._replay_wal_tolerant(
                    store, chain, recovery, quarantined_keys, source
                )
        finally:
            engine._replaying = False
        engine.last_recovery = RecoveryReport(
            policy=recovery,
            quarantined_cohorts=tuple(quarantined_cohorts),
            quarantined_wal=tuple(quarantined_wal),
            wal_records_replayed=replayed,
            wal_records_lost=lost,
            findings=tuple(findings),
        )
        if quarantined_cohorts or repaired:
            # The store references artifacts that were moved aside (or a
            # WAL remainder that must not be extended): re-checkpoint the
            # surviving state immediately so the manifest, segments and a
            # fresh WAL are consistent again before the session serves
            # anything.
            engine.checkpoint()
        else:
            # Reopen the chain's tail segment for appending: new records
            # extend the replayed prefix.  The replayed records still
            # count toward checkpoint_interval -- they are real
            # un-checkpointed WAL backlog, and a crash-looping process
            # would otherwise reset the counter on every restart and
            # never auto-checkpoint.
            store.wal_start(chain[-1])
            engine._wal_records_pending = replayed
        return engine

    def _replay_wal_tolerant(
        self,
        store: CheckpointStore,
        chain: list,
        recovery: str,
        skip_keys: set,
        source: str,
    ) -> tuple:
        """Replay a WAL chain under ``truncate``/``quarantine`` policy.

        Returns ``(replayed, lost, quarantined_wal, findings, repaired)``.
        Replay stops at the first unreadable point -- a frame that fails
        its CRC (trailing bytes) or decodes to garbage -- because records
        after a gap would replay into a stream missing its middle.  Under
        ``quarantine`` the unread remainder is preserved in the store's
        quarantine directory; under ``truncate`` it is simply dropped
        (the immediate re-checkpoint prunes it).  A torn tail on the
        *final* chain segment is ordinary crash debris, repaired exactly
        as strict recovery does, not treated as corruption.
        """
        replayed = 0
        lost = 0
        quarantined: list[QuarantinedWalSuffix] = []
        findings: list = []
        stop: tuple | None = None
        for position, name in enumerate(chain):
            final = position == len(chain) - 1
            offset = 0
            segment_replayed = 0
            for payload, end in store.wal_frames(name):
                try:
                    record = decode_wal_record(payload, f"{source}/{name}")
                except CorruptCheckpointError as error:
                    stop = (position, offset, str(error))
                    break
                filtered = self._filter_wal_record(record, skip_keys)
                if filtered is not None:
                    self._apply_wal_record(filtered)
                replayed += 1
                segment_replayed += 1
                offset = end
            if stop is not None:
                frames_total, _good, _total = store.wal_tail(name)
                lost += max(0, frames_total - segment_replayed)
                break
            if not store.wal_exists(name):
                continue
            _frames, good, total = store.wal_tail(name)
            if good < total and not final:
                stop = (
                    position,
                    good,
                    f"{total - good} unreadable bytes mid-chain (offset "
                    f"{good}); records beyond them are unreachable",
                )
                break
        if stop is None:
            return replayed, lost, quarantined, findings, False
        position, offset, reason = stop
        name = chain[position]
        remainder = chain[position + 1 :]
        if recovery == "quarantine":
            dropped = store.quarantine_wal_suffix(name, offset)
            quarantined.append(
                QuarantinedWalSuffix(name, offset, dropped, reason)
            )
            for later in remainder:
                if not store.wal_exists(later):
                    continue
                frames_total, _good, total = store.wal_tail(later)
                lost += frames_total
                store.quarantine_wal_segment(later)
                quarantined.append(
                    QuarantinedWalSuffix(
                        later,
                        0,
                        total,
                        "follows a damaged chain segment",
                    )
                )
        else:  # truncate: drop without preserving
            findings.append(
                ScrubFinding(name, "truncated", reason, fatal=False)
            )
            for later in remainder:
                if not store.wal_exists(later):
                    continue
                frames_total, _good, _total = store.wal_tail(later)
                lost += frames_total
                findings.append(
                    ScrubFinding(
                        later,
                        "truncated",
                        "follows a damaged chain segment",
                        fatal=False,
                    )
                )
        return replayed, lost, quarantined, findings, True

    @staticmethod
    def _filter_wal_record(record: tuple, skip_keys: set) -> tuple | None:
        """Drop quarantined keys from a WAL record (``None``: drop it all).

        A record naming a quarantined series must not replay for that
        key: its checkpointed base state is gone, so replay would
        fabricate a partial series holding only post-checkpoint points.
        """
        if not skip_keys:
            return record
        kind = record[0]
        if kind == "grid":
            round_keys, grid = record[1], record[2]
            keep = [
                index
                for index, key in enumerate(round_keys)
                if key not in skip_keys
            ]
            if len(keep) == len(round_keys):
                return record
            if not keep:
                return None
            return (
                "grid",
                [round_keys[index] for index in keep],
                grid[:, keep],
            )
        if kind == "rows":
            keys, values = record[1], record[2]
            keep = [
                index for index, key in enumerate(keys) if key not in skip_keys
            ]
            if len(keep) == len(keys):
                return record
            if not keep:
                return None
            return ("rows", [keys[index] for index in keep], values[keep])
        if kind == "raw_rows":
            rows = record[1]
            kept = [row for row in rows if row[0] not in skip_keys]
            if len(kept) == len(rows):
                return record
            if not kept:
                return None
            return ("raw_rows", kept)
        if kind == "point":
            return None if record[1] in skip_keys else record
        return record

    def _apply_wal_record(self, record: tuple) -> None:
        """Re-apply one logged batch during recovery.

        Each record replays through exactly the code path that produced
        it.  A record that raises a *validation* error (``ValueError`` /
        ``TypeError``, e.g. a non-finite warmup value or a malformed row)
        raised identically in the original run *after* the same partial
        application, so those are swallowed and replay continues -- just
        as the original caller kept going.  Anything else (``OSError``,
        ``MemoryError``, ...) is a replay-side failure that the original
        run did not have: it propagates, failing recovery loudly instead
        of silently diverging from the logged stream.
        """
        kind = record[0]
        try:
            # columnar_results=True: replay only needs the state advance,
            # so skip the per-row record materialization (the dominant
            # cost of the eager path) entirely.
            if kind == "grid":
                self._ingest_grid(record[1], record[2], True)
            elif kind == "rows":
                self._ingest_keys_values(record[1], record[2], True)
            elif kind == "raw_rows":
                self._ingest_raw_rows(record[1], False)
            elif kind == "point":
                self._process_unlogged(record[1], record[2])
            else:
                raise CorruptCheckpointError(
                    f"{self._store.describe()}: unknown WAL record kind "
                    f"{kind!r} (this build understands grid/rows/raw_rows/"
                    "point)"
                )
        except CorruptCheckpointError:
            raise
        except (ValueError, TypeError):
            pass

    def _wal_append(self, kind: str, *parts) -> None:
        """Append one ingest record to the session WAL (no-op when detached)."""
        if self._store is None or self._replaying or self._wal_suppressed:
            return
        self._store.wal_append(encode_wal_record(kind, *parts))
        self._wal_records_pending += 1

    def _wal_append_many(self, batches: list) -> None:
        """Group-commit one WAL record per ``(kind, *parts)`` batch.

        Encoding is skipped entirely when detached (or replaying), so the
        WAL-off ingest path pays nothing for the group-commit plumbing.
        """
        if (
            self._store is None
            or self._replaying
            or self._wal_suppressed
            or not batches
        ):
            return
        self._store.wal_append_many(
            [encode_wal_record(kind, *parts) for kind, *parts in batches]
        )
        self._wal_records_pending += len(batches)

    def _with_wal_suppressed(self, call, *args):
        """Run ``call`` with per-observation WAL logging disabled.

        Batched ingest logs once per call; the per-observation
        :meth:`process` invocations it makes internally must not log again.
        """
        previous = self._wal_suppressed
        self._wal_suppressed = True
        try:
            return call(*args)
        finally:
            self._wal_suppressed = previous

    def _maybe_auto_checkpoint(self) -> None:
        """Checkpoint when the configured WAL-record interval has passed.

        Runs only after a *completed* top-level ingest/process call (never
        mid-batch, never during replay), so the WAL records dropped by the
        checkpoint are all fully applied.
        """
        if (
            self.checkpoint_interval is None
            or self._store is None
            or self._replaying
            or self._wal_suppressed
        ):
            return
        if self._wal_records_pending >= self.checkpoint_interval:
            self.checkpoint()

    # ------------------------------------------------ incremental checkpoints

    def _series_marker(self, key: Hashable) -> int:
        """Monotone progress counter of one series (cheap, no sync needed).

        The marker is the series' total observation count in one uniform
        basis: the flushed ``points`` counter plus, for kernel-absorbed
        series, the group's pending (not yet flushed) points for that
        column.  Every mutation of a series advances it, every flush
        preserves it (the flush moves pending into ``points``), and it
        never switches representation when a series migrates between the
        scalar and kernel paths -- so a stale marker can never alias a
        newer state, which is what lets :meth:`checkpoint` trust "marker
        unchanged" to mean "cohort segment still valid".
        """
        state = self._series[key]
        location = self._absorbed.get(key)
        if location is not None:
            group, column = location
            return state.points + int(group.points_pending[column])
        return state.points

    def _assign_cohorts(self) -> None:
        """Place every unassigned series into a durable checkpoint cohort.

        New series fill the newest cohort up to
        :attr:`checkpoint_cohort_size`, then open a fresh one -- appending
        only ever dirties the newest cohort, so long-idle cohorts keep
        their segments byte-for-byte.
        """
        newest = self._next_cohort_id - 1
        for key in self._series:
            if key in self._cohort_of:
                continue
            members = self._cohort_members.get(newest)
            if members is None or len(members) >= self.checkpoint_cohort_size:
                newest = self._next_cohort_id
                self._next_cohort_id += 1
                members = self._cohort_members[newest] = []
            members.append(key)
            self._cohort_of[key] = newest

    def _cohort_dirty(self, cohort_id: int) -> bool:
        """Whether a cohort changed since its segment was last written."""
        markers = self._cohort_markers.get(cohort_id)
        members = self._cohort_members[cohort_id]
        if markers is None or len(markers) != len(members):
            return True
        get = markers.get
        return any(get(key) != self._series_marker(key) for key in members)

    def _export_cohort(self, cohort_id: int) -> dict:
        """Materialize one cohort's per-series state, batched per group."""
        members = self._cohort_members[cohort_id]
        self._sync_keys(members)
        return {key: self._series[key] for key in members}

    def checkpoint(self) -> CheckpointSummary:
        """Persist all changes since the last checkpoint to the store.

        Only *dirty* cohorts -- those whose series ingested anything since
        their segment was written -- are re-serialized; clean cohorts keep
        their existing segment files, so checkpointing a mostly-idle fleet
        writes a handful of segments plus one manifest.  The sequence is
        crash-safe at every step: segments first (atomic each), then the
        manifest swap (the commit point), then WAL truncation and garbage
        collection -- a crash anywhere leaves either the old or the new
        checkpoint fully intact, never a mixture.

        Returns a :class:`~repro.durability.CheckpointSummary` saying how
        much was actually written.
        """
        store = self._store
        if store is None:
            raise RuntimeError(
                "engine has no checkpoint store: open a durable session "
                "with MultiSeriesEngine.open(store, spec=...) or "
                "attach_store() first (save(path) writes one-shot "
                "snapshots without a session)"
            )
        self._assign_cohorts()
        generation = self._generation + 1
        segments = dict(self._cohort_segments)
        dirty = [
            cohort_id
            for cohort_id in self._cohort_members
            if self._cohort_dirty(cohort_id)
        ]
        series_written = 0
        new_markers: dict[int, dict] = {}
        crcs = dict(self._cohort_crcs)
        for cohort_id in dirty:
            name = segment_name(generation, cohort_id)
            states = self._export_cohort(cohort_id)
            payload = encode_segment(states)
            store.write_segment(name, payload)
            segments[cohort_id] = name
            crcs[cohort_id] = zlib.crc32(payload)
            series_written += len(states)
            new_markers[cohort_id] = {
                key: self._series_marker(key) for key in states
            }
        cohorts = []
        for cohort_id in sorted(self._cohort_members):
            entry: dict = {
                "id": cohort_id,
                "segment": segments[cohort_id],
                "series": len(self._cohort_members[cohort_id]),
            }
            # Scrub/quarantine metadata: the segment payload's CRC32 (so
            # store.verify() can check bytes it cannot decode) and the
            # cohort's key list (so quarantine can name the affected
            # series without decoding the damaged segment).  Keys outside
            # the JSON-encodable family leave the list off -- visible as
            # "keys unknown", never wrong.
            if cohort_id in crcs:
                entry["crc"] = crcs[cohort_id]
            encoded_keys = encode_manifest_keys(
                self._cohort_members[cohort_id]
            )
            if encoded_keys is not None:
                entry["keys"] = encoded_keys
            cohorts.append(entry)
        store.write_manifest(
            build_manifest(
                generation, self.spec.to_dict(), cohorts, wal_name(generation)
            )
        )
        # -- the manifest rename above is the commit point ------------------
        self._generation = generation
        self._cohort_segments = segments
        self._cohort_crcs = crcs
        self._cohort_markers.update(new_markers)
        store.wal_start(wal_name(generation))
        self._wal_records_pending = 0
        # Garbage: segments/WALs the new manifest no longer references.
        referenced = set(segments.values())
        for name in store.list_segments():
            if name not in referenced:
                store.delete_segment(name)
        current_wal = wal_name(generation)
        for name in store.list_wals():
            if name != current_wal:
                store.wal_delete(name)
        return CheckpointSummary(
            generation=generation,
            cohorts_total=len(self._cohort_members),
            cohorts_written=len(dirty),
            series_total=len(self._series),
            series_written=series_written,
        )

    def close(self, checkpoint: bool = True) -> None:
        """End the durable session (checkpointing first by default).

        Idempotent; a detached engine closes as a no-op.  The engine stays
        fully usable in memory afterwards -- it just stops journaling.
        """
        store = self._store
        if store is None:
            return
        if checkpoint:
            self.checkpoint()
        self._store = None
        self._wal_records_pending = 0
        store.close()

    # --------------------------------------------------------- checkpointing

    def snapshot(self) -> dict:
        """Capture the engine state as an in-memory checkpoint.

        The checkpoint is an independent deep copy: later ingests do not
        mutate it, and it can be restored any number of times (or pickled
        to disk by the caller).  For a checkpoint that survives process
        boundaries and carries its own configuration, use :meth:`save`.

        Kernel-absorbed series are materialized first, so the checkpoint
        always holds plain per-series state -- the same shape whether or
        not batched ingest ever ran.
        """
        self._sync_all()
        return copy.deepcopy(self._series)

    def restore(self, checkpoint: dict) -> None:
        """Rewind the engine to a checkpoint taken with :meth:`snapshot`.

        The checkpoint itself stays untouched (it is deep-copied in), so it
        can be restored again later.

        Not available while a durable session is open: an in-memory rewind
        would silently diverge from the write-ahead log (the rewind is not
        a logged event), so recovery after a crash would replay into the
        wrong base state.  ``close()`` the session first.
        """
        if self._store is not None:
            raise RuntimeError(
                "restore() inside a durable session would diverge from the "
                "write-ahead log; close() the session first, restore, then "
                "attach a fresh store"
            )
        if not isinstance(checkpoint, dict) or not all(
            isinstance(state, _SeriesState) for state in checkpoint.values()
        ):
            raise TypeError("checkpoint must come from MultiSeriesEngine.snapshot()")
        self._series = copy.deepcopy(checkpoint)
        # The columnar arrays described the replaced fleet; rebuild lazily.
        self._reset_fleet_groups()
        # Durable-cohort bookkeeping described the replaced fleet too.
        self._cohort_of = {}
        self._cohort_members = {}
        self._cohort_segments = {}
        self._cohort_markers = {}
        self._next_cohort_id = 0

    def save(self, path: "str | os.PathLike") -> None:
        """Write a portable one-file checkpoint to ``path`` (atomically).

        The file carries ``{format_version, engine_spec, series,
        generation}``: the declarative :class:`EngineSpec` (as a plain
        dict) plus the full per-series state, so :meth:`load` can rebuild
        an equivalent engine in a fresh process from the file alone and
        continue the stream bit-identically.  Only spec-built engines can
        be saved -- a factory callable has no portable representation.
        ``path`` may be anything :class:`os.PathLike`.

        This is a thin shim over
        :class:`~repro.durability.SingleSnapshotStore`: the whole fleet is
        re-serialized on every call, but the write is atomic (tmp file +
        fsync + ``os.replace``), so a crash mid-save leaves the previous
        checkpoint intact instead of a truncated file.

        .. deprecated:: save/load remain supported, but new deployments
           should prefer the durable session API (:meth:`open` /
           :meth:`checkpoint`): it adds a write-ahead log between
           checkpoints (nothing ingested is lost to a crash) and
           re-serializes only the cohorts that changed.

        The container format is pickle (the numeric per-series state has no
        flat representation), so checkpoint files carry pickle's trust
        model: :meth:`load` must only be given files from trusted sources.
        """
        if self.spec is None:
            raise ValueError(
                "only spec-built engines can be saved: construct via "
                "MultiSeriesEngine.from_spec() (or for_oneshotstl()) "
                "instead of a pipeline factory"
            )
        self._sync_all()
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "engine_spec": self.spec.to_dict(),
            "series": self._series,
            "generation": self._generation,
        }
        SingleSnapshotStore(path).write(payload)

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "MultiSeriesEngine":
        """Rebuild an engine from a checkpoint written by :meth:`save`.

        The engine is reconstructed from the embedded spec (via the
        component registry), then the per-series state is installed, so the
        restored engine continues the stream exactly where :meth:`save`
        left off.  ``path`` may be anything :class:`os.PathLike`.

        Version-1 checkpoints (written before the durability redesign)
        are migrated transparently; any other ``format_version`` mismatch
        raises :class:`~repro.durability.CheckpointVersionError` (a
        ``ValueError``) naming the file, the found and the expected
        version.  Unreadable or malformed files raise
        :class:`~repro.durability.CorruptCheckpointError` with the same
        context.

        .. warning:: Checkpoints are pickle files; unpickling runs before
           any validation can happen, so only load checkpoints you trust
           (i.e. that your own deployment saved).
        """
        snapshot = SingleSnapshotStore(path)
        payload = migrate_snapshot_payload(snapshot.read(), snapshot.describe())
        try:
            spec_data = payload["engine_spec"]
            series = payload["series"]
        except KeyError as error:
            raise CorruptCheckpointError(
                f"{snapshot.describe()}: checkpoint is missing required "
                f"section {error.args[0]!r} (expected engine_spec, series)"
            ) from None
        engine = cls.from_spec(EngineSpec.from_dict(spec_data))
        if not isinstance(series, dict) or not all(
            isinstance(state, _SeriesState) for state in series.values()
        ):
            raise CorruptCheckpointError(
                f"{snapshot.describe()}: checkpoint per-series state is "
                "malformed (expected a dict of engine series state)"
            )
        engine._series = series
        engine._generation = int(payload.get("generation", 0))
        return engine
