"""Multi-series streaming engine: one process, thousands of monitored metrics.

The paper's pitch is that an O(1) online decomposition is cheap enough to
run on *every* monitored metric.  :class:`MultiSeriesEngine` is the serving
layer that makes that concrete: it multiplexes any number of independent
keyed streams over the shared fast kernel, with

* **batched ingest** -- ``ingest([(key, value), ...])`` routes a mixed
  batch of observations to their per-key pipelines and returns the derived
  records in input order;
* **per-series lazy initialization** -- the first observation of an unseen
  key creates its pipeline; values are buffered until the configured
  initialization window is full, then the batch initialization phase runs
  and the series goes live;
* **checkpointing** -- :meth:`snapshot` captures the full engine state
  (every pipeline, buffer and counter) as an in-memory, picklable
  checkpoint and :meth:`restore` rewinds to it, so a monitoring service
  can persist and resume mid-stream;
* **fleet statistics** -- :meth:`fleet_stats` aggregates anomaly counts and
  per-key update-latency percentiles (via
  :func:`repro.streaming.latency.summarize_latencies`) across the fleet.

Every series is an ordinary :class:`~repro.streaming.pipeline.StreamingPipeline`,
so the engine's outputs are *identical* to running N independent pipelines
by hand -- the test suite asserts this -- while amortizing the per-call
overhead and centralizing bookkeeping.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence, Tuple

import numpy as np

from repro.streaming.buffer import RingBuffer
from repro.streaming.latency import LatencyReport, summarize_latencies
from repro.streaming.pipeline import StreamingPipeline, StreamRecord
from repro.utils import check_positive_int

__all__ = ["EngineRecord", "FleetStats", "MultiSeriesEngine", "SeriesStats"]

#: status of a series: buffering its initialization window, or streaming.
WARMING = "warming"
LIVE = "live"


@dataclass(frozen=True)
class EngineRecord:
    """Outcome of ingesting one observation for one key.

    ``record`` is ``None`` while the series is still warming (the value was
    buffered for the initialization window); once the series is live it
    carries the full per-point :class:`StreamRecord`.
    """

    key: Hashable
    status: str
    record: StreamRecord | None

    @property
    def is_anomaly(self) -> bool:
        return self.record is not None and self.record.is_anomaly


@dataclass(frozen=True)
class SeriesStats:
    """Aggregated statistics of a single keyed series."""

    key: Hashable
    status: str
    points: int
    anomalies: int
    latency: LatencyReport | None


@dataclass(frozen=True)
class FleetStats:
    """Aggregated statistics of the whole fleet."""

    series_total: int
    series_live: int
    series_warming: int
    points_total: int
    anomalies_total: int
    per_series: dict = field(default_factory=dict)


class _SeriesState:
    """Internal per-key record: pipeline, warmup buffer and counters."""

    __slots__ = ("pipeline", "warmup", "live", "points", "anomalies", "latencies")

    def __init__(self, pipeline: StreamingPipeline, latency_window: int):
        self.pipeline = pipeline
        self.warmup: list[float] = []
        self.live = False
        self.points = 0
        self.anomalies = 0
        self.latencies = RingBuffer(latency_window)


class MultiSeriesEngine:
    """A keyed fleet of online decomposition pipelines behind one ingest API.

    Parameters
    ----------
    pipeline_factory:
        Callable invoked with a series key the first time that key appears;
        must return a *fresh* :class:`StreamingPipeline` (or any object with
        the same ``initialize`` / ``process`` / ``forecast`` interface) for
        that series.  Per-key configuration -- different periods, thresholds
        or decomposers per metric class -- goes here.
    initialization_length:
        Number of leading observations buffered per series before its batch
        initialization phase runs.  Should cover at least two seasonal
        periods of the slowest configured decomposer (the paper uses about
        four).  Warmup values must be finite (non-finite samples are
        rejected with ``ValueError`` before they can poison the window);
        once live, NaN gaps are handled by the decomposer's own
        missing-value imputation.
    latency_window:
        Number of most recent per-point processing durations retained per
        series for the latency percentiles in :meth:`fleet_stats`.
    track_latency:
        Set to False to skip the two clock reads per point (marginally
        faster ingest, no latency percentiles in the stats).
    """

    def __init__(
        self,
        pipeline_factory: Callable[[Hashable], StreamingPipeline],
        initialization_length: int,
        latency_window: int = 1024,
        track_latency: bool = True,
    ):
        self.pipeline_factory = pipeline_factory
        self.initialization_length = check_positive_int(
            initialization_length, "initialization_length", minimum=2
        )
        self.latency_window = check_positive_int(latency_window, "latency_window")
        self.track_latency = bool(track_latency)
        self._series: dict[Hashable, _SeriesState] = {}

    # --------------------------------------------------------- construction

    @classmethod
    def for_oneshotstl(
        cls,
        period: int,
        initialization_length: int | None = None,
        anomaly_threshold: float = 5.0,
        latency_window: int = 1024,
        track_latency: bool = True,
        **oneshotstl_parameters,
    ) -> "MultiSeriesEngine":
        """Engine whose every series runs a OneShotSTL pipeline.

        ``initialization_length`` defaults to four periods, the paper's
        initialization window.  Extra keyword arguments are forwarded to
        :class:`repro.core.OneShotSTL`.
        """
        from repro.core.oneshotstl import OneShotSTL

        if initialization_length is None:
            initialization_length = 4 * int(period)

        def factory(_key: Hashable) -> StreamingPipeline:
            return StreamingPipeline(
                OneShotSTL(period, **oneshotstl_parameters),
                anomaly_threshold=anomaly_threshold,
            )

        return cls(
            factory,
            initialization_length,
            latency_window=latency_window,
            track_latency=track_latency,
        )

    # ------------------------------------------------------------ streaming

    def process(self, key: Hashable, value: float) -> EngineRecord:
        """Ingest one observation for one series.

        Unknown keys lazily create their pipeline; while the initialization
        window is filling the value is buffered and a ``warming`` record is
        returned.  The observation that completes the window triggers the
        batch initialization phase (still reported as ``warming``: its
        decomposition is part of the initialization result, not an online
        point).
        """
        state = self._series.get(key)
        if state is None:
            state = _SeriesState(self.pipeline_factory(key), self.latency_window)
            self._series[key] = state

        if not state.live:
            value = float(value)
            if not np.isfinite(value):
                # Online NaN gaps are imputed by the decomposer, but the
                # batch initialization phase needs finite values; reject the
                # sample up front (without buffering it) instead of letting
                # it poison the window and wedge the series.
                raise ValueError(
                    f"series {key!r} is still warming up and received a "
                    f"non-finite value ({value}); warmup values must be finite"
                )
            state.warmup.append(value)
            state.points += 1
            if len(state.warmup) >= self.initialization_length:
                window = np.asarray(state.warmup)
                # Discard the window if initialization fails so the series
                # starts a fresh one instead of retrying the same bad
                # window (and failing) on every subsequent observation.
                state.warmup = []
                state.pipeline.initialize(window)
                state.live = True
            return EngineRecord(key=key, status=WARMING, record=None)

        if self.track_latency:
            start = time.perf_counter()
            record = state.pipeline.process(value)
            state.latencies.append(time.perf_counter() - start)
        else:
            record = state.pipeline.process(value)
        state.points += 1
        if record.is_anomaly:
            state.anomalies += 1
        return EngineRecord(key=key, status=LIVE, record=record)

    def ingest(
        self, batch: Iterable[Tuple[Hashable, float]]
    ) -> list[EngineRecord]:
        """Ingest a batch of ``(key, value)`` observations.

        Observations are applied in input order (so multiple values for the
        same key within one batch are processed oldest first) and the
        derived records are returned in the same order.
        """
        process = self.process
        return [process(key, value) for key, value in batch]

    def forecast(self, key: Hashable, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` values ahead for one live series."""
        state = self._series[key]
        if not state.live:
            raise RuntimeError(f"series {key!r} is still warming up")
        return state.pipeline.forecast(horizon)

    # ------------------------------------------------------------- fleet API

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._series

    def keys(self) -> list:
        """All known series keys, in first-seen order."""
        return list(self._series)

    def live_keys(self) -> list:
        """Keys of the series that completed initialization."""
        return [key for key, state in self._series.items() if state.live]

    def series_stats(self, key: Hashable) -> SeriesStats:
        """Statistics of a single series."""
        state = self._series[key]
        latencies = state.latencies.to_array()
        return SeriesStats(
            key=key,
            status=LIVE if state.live else WARMING,
            points=state.points,
            anomalies=state.anomalies,
            latency=(
                summarize_latencies(latencies, method=f"series[{key!r}]")
                if latencies.size
                else None
            ),
        )

    def fleet_stats(self) -> FleetStats:
        """Aggregate statistics across every series in the fleet."""
        per_series = {key: self.series_stats(key) for key in self._series}
        live = sum(1 for stats in per_series.values() if stats.status == LIVE)
        return FleetStats(
            series_total=len(per_series),
            series_live=live,
            series_warming=len(per_series) - live,
            points_total=sum(stats.points for stats in per_series.values()),
            anomalies_total=sum(stats.anomalies for stats in per_series.values()),
            per_series=per_series,
        )

    # --------------------------------------------------------- checkpointing

    def snapshot(self):
        """Capture the engine state as an in-memory checkpoint.

        The checkpoint is an independent deep copy: later ingests do not
        mutate it, and it can be restored any number of times (or pickled
        to disk by the caller).
        """
        return copy.deepcopy(self._series)

    def restore(self, checkpoint) -> None:
        """Rewind the engine to a checkpoint taken with :meth:`snapshot`.

        The checkpoint itself stays untouched (it is deep-copied in), so it
        can be restored again later.
        """
        if not isinstance(checkpoint, dict) or not all(
            isinstance(state, _SeriesState) for state in checkpoint.values()
        ):
            raise TypeError("checkpoint must come from MultiSeriesEngine.snapshot()")
        self._series = copy.deepcopy(checkpoint)
