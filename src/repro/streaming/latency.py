"""Per-point latency measurement of online streaming components.

:func:`measure_update_latency` is the Figure 7 harness: it times every
``update`` of a single online decomposer.  :func:`summarize_latencies`
condenses an arbitrary array of raw durations into the same
:class:`LatencyReport`; the multi-series engine uses it to report per-key
latency percentiles from the durations it records while ingesting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.utils import as_float_array, check_positive_int

__all__ = ["LatencyReport", "measure_update_latency", "summarize_latencies"]


@dataclass(frozen=True, slots=True)
class LatencyReport:
    """Latency statistics of an online method over a stream."""

    method: str
    points: int
    mean_seconds: float
    median_seconds: float
    p99_seconds: float
    total_seconds: float

    @property
    def mean_microseconds(self) -> float:
        return self.mean_seconds * 1e6

    def as_row(self) -> dict:
        """Dictionary row for tabular reporting."""
        return {
            "method": self.method,
            "points": self.points,
            "mean_us": self.mean_seconds * 1e6,
            "median_us": self.median_seconds * 1e6,
            "p99_us": self.p99_seconds * 1e6,
            "total_s": self.total_seconds,
        }


def summarize_latencies(durations, method: str) -> LatencyReport:
    """Build a :class:`LatencyReport` from an array of per-point durations.

    Edge cases are well defined instead of leaking NumPy warnings or NaNs:
    an **empty** window yields a zero report (``points == 0`` and all
    statistics ``0.0`` -- ``np.mean``/``np.percentile`` of an empty array
    would emit ``RuntimeWarning`` and return NaN), and a **single-sample**
    window reports that sample as mean, median and p99 alike (NumPy's
    reductions already do so, warning-free, for one element).

    Parameters
    ----------
    durations:
        Observed per-point durations in seconds (may be empty).
    method:
        Label used in the report.
    """
    durations = as_float_array(durations, "durations", min_length=0)
    if durations.size == 0:
        return LatencyReport(
            method=method,
            points=0,
            mean_seconds=0.0,
            median_seconds=0.0,
            p99_seconds=0.0,
            total_seconds=0.0,
        )
    return LatencyReport(
        method=method,
        points=int(durations.size),
        mean_seconds=float(durations.mean()),
        median_seconds=float(np.median(durations)),
        p99_seconds=float(np.percentile(durations, 99)),
        total_seconds=float(durations.sum()),
    )


def measure_update_latency(
    decomposer,
    initialization,
    stream,
    max_points: int | None = None,
    name: str | None = None,
) -> LatencyReport:
    """Measure the per-point update latency of an online decomposer.

    Parameters
    ----------
    decomposer:
        An object implementing the :class:`~repro.decomposition.base.OnlineDecomposer`
        interface.
    initialization:
        Prefix used for the (untimed) initialization phase.
    stream:
        Online portion whose updates are timed individually.
    max_points:
        Optional cap on the number of timed points.
    name:
        Label used in the report (defaults to the class name).
    """
    initialization = as_float_array(initialization, "initialization", min_length=2)
    stream = as_float_array(stream, "stream", min_length=1)
    if max_points is not None:
        max_points = check_positive_int(max_points, "max_points")
        stream = stream[:max_points]

    decomposer.initialize(initialization)
    durations = np.empty(stream.size)
    for index, value in enumerate(stream):
        start = time.perf_counter()
        decomposer.update(float(value))
        durations[index] = time.perf_counter() - start
    return summarize_latencies(durations, name or type(decomposer).__name__)
