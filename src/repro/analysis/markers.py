"""Source markers read by the static-analysis rules.

:func:`hotpath` is a do-nothing decorator: it exists so that the purity
rules (:mod:`repro.analysis.rules_hotpath`) can find the functions whose
inner loops must stay allocation-free by looking at the AST alone.  It
adds no call overhead -- the function object is returned unchanged, with
only a ``__hotpath__`` attribute stamped on for runtime introspection.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hotpath"]

_F = TypeVar("_F", bound=Callable)


def hotpath(func: _F) -> _F:
    """Mark ``func`` as engine hot path (enforced by ``repro.analysis``).

    Marked functions may not, per the HP00x rules: allocate containers
    inside loops, re-resolve ``a.b.c`` attribute chains inside loops,
    enter ``try``/``except`` inside loops, or forward ``**kwargs``.
    """
    setattr(func, "__hotpath__", True)
    return func
