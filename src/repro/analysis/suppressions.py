"""Inline suppression comments: ``# repro: allow[RULE-ID] reason``.

A suppression silences findings of exactly one rule on exactly one line:
its own line when it trails code, or -- when it stands alone -- the next
code line (blank lines and the rest of the comment block are skipped, so
a multi-line reason is fine)::

    self._frobnicate(**options)  # repro: allow[HP004] cold config path

    # repro: allow[HP001] cold path: runs once per warmup round
    entries = [(key, base + j) for j, key in enumerate(round_keys)]

The reason is mandatory (SUP002) and the rule id must exist (SUP001);
those two meta-findings can never themselves be suppressed, so a stale or
sloppy suppression always surfaces.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.findings import RULES, Finding

__all__ = ["Suppression", "collect_suppressions", "filter_findings"]

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``allow`` comment."""

    path: str
    line: int
    rule: str
    reason: str
    #: the source line whose findings this suppression silences
    target_line: int


def _iter_comments(source: str):
    """Yield ``(row, col, text)`` for every comment token in ``source``."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # Unterminated source: the AST pass reports PARSE001; any comments
        # yielded before the error still count.
        return


def collect_suppressions(
    source: str, path: str
) -> tuple[list[Suppression], list[Finding]]:
    """Parse every ``allow`` comment, returning them plus meta-findings."""
    lines = source.splitlines()
    suppressions: list[Suppression] = []
    findings: list[Finding] = []
    for row, col, text in _iter_comments(source):
        match = _ALLOW.search(text)
        if match is None:
            continue
        rule = match.group(1).strip()
        reason = match.group(2).strip()
        if rule not in RULES:
            findings.append(
                Finding(
                    path,
                    row,
                    "SUP001",
                    f"suppression names unknown rule id {rule!r} "
                    f"(known: {', '.join(sorted(RULES))})",
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    path,
                    row,
                    "SUP002",
                    f"suppression of {rule} must state a reason after the ']'",
                )
            )
            continue
        standalone = row <= len(lines) and not lines[row - 1][:col].strip()
        target = row
        if standalone:
            # cover the next code line, skipping the rest of the comment
            # block and any blank lines in between
            target = row + 1
            while target <= len(lines) and (
                not lines[target - 1].strip()
                or lines[target - 1].lstrip().startswith("#")
            ):
                target += 1
        suppressions.append(Suppression(path, row, rule, reason, target))
    return suppressions, findings


def filter_findings(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Drop findings covered by a suppression (SUP findings never are)."""
    covered = {(s.rule, s.target_line) for s in suppressions}
    return [
        finding
        for finding in findings
        if finding.rule.startswith("SUP")
        or (finding.rule, finding.line) not in covered
    ]
