"""Static enforcement of the codebase's hand-maintained invariants.

The engine's performance and durability rest on contracts that no test
exercises directly: the fleet kernel must not allocate per point, every
durable mutation must happen *after* its WAL append, every component must
be registered and spec-round-trippable, and hot state carriers must be
slotted.  This package turns each contract into a checkable rule:

* ``python -m repro.analysis [paths]`` lints the tree and exits non-zero
  on any finding (``path:line: RULE-ID message``);
* ``tests/test_analysis_clean.py`` runs the same pass as a tier-1 test;
* a finding is silenced only by an inline comment that states why::

      # repro: allow[HP001] cold path: runs once per warmup round

The rules themselves live in ``rules_*`` modules; :mod:`.engine` walks
files, applies suppressions and aggregates findings.  This ``__init__``
stays import-light on purpose -- hot modules import :func:`hotpath` from
here, so it must not pull in the analysis machinery (or anything heavy).
"""

from repro.analysis.findings import RULES, Finding
from repro.analysis.markers import hotpath

__all__ = ["Finding", "RULES", "hotpath"]
