"""The analysis driver: walk files, run rules, apply suppressions."""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis import rules_hotpath, rules_structure, rules_wal
from repro.analysis.findings import Finding
from repro.analysis.suppressions import collect_suppressions, filter_findings

__all__ = ["analyze_paths", "analyze_source", "iter_python_files", "main"]

#: the pure-AST rules, each ``(tree, path) -> [Finding]``
AST_RULES: tuple[Callable[[ast.AST, str], list[Finding]], ...] = (
    rules_hotpath.check,
    rules_wal.check,
    rules_structure.check,
)


def analyze_source(source: str, path: str) -> list[Finding]:
    """Run every AST rule over one source text, honouring suppressions."""
    suppressions, findings = collect_suppressions(source, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        findings.append(
            Finding(path, error.lineno or 1, "PARSE001", f"syntax error: {error.msg}")
        )
        return findings
    for rule in AST_RULES:
        findings.extend(rule(tree, path))
    return filter_findings(findings, suppressions)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"{path}: not a Python file or directory")
    return sorted(files)


def _filter_registry_findings(findings: list[Finding]) -> list[Finding]:
    """Apply each flagged file's inline suppressions to registry findings."""
    cache: dict[str, list] = {}
    kept: list[Finding] = []
    for finding in findings:
        if finding.path not in cache:
            try:
                source = Path(finding.path).read_text()
            except OSError:
                cache[finding.path] = []
            else:
                cache[finding.path] = collect_suppressions(source, finding.path)[0]
        kept.extend(filter_findings([finding], cache[finding.path]))
    return kept


def analyze_paths(
    paths: Iterable[Path], *, registry: bool = True
) -> list[Finding]:
    """Run the full analysis (AST rules + registry rule) over ``paths``."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(analyze_source(file.read_text(), str(file)))
    if registry:
        from repro.analysis.rules_registry import check_registry

        findings.extend(_filter_registry_findings(check_registry()))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the repro source tree against its invariant rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the import-time registry/spec coverage rule",
    )
    args = parser.parse_args(argv)
    findings = analyze_paths(
        [Path(p) for p in args.paths], registry=not args.no_registry
    )
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
