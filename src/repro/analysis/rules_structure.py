"""SLOTS001 / SPEC001: structural discipline rules.

* **SLOTS001** -- dataclasses defined under ``core/``, ``solvers/`` or
  ``streaming/`` must declare ``slots=True``.  These are the modules whose
  instances exist per series or per point; a ``__dict__`` per instance is
  measurable memory and lookup overhead at fleet scale (PR 4 slotted the
  record types for exactly this reason).
* **SPEC001** -- dataclass fields in ``repro/specs.py`` may only be
  annotated as JSON primitives (``str``/``int``/``float``/``bool``/
  ``dict``/``list``/``tuple``, unions and subscripts thereof) or nested
  spec types (``*Spec``).  The spec layer's portability guarantee -- a
  spec is pure data that survives JSON -- is only as strong as its field
  types.
"""

from __future__ import annotations

import ast
from pathlib import PurePath

from repro.analysis.findings import Finding

__all__ = ["check"]

_SLOTTED_DIRS = frozenset({"core", "solvers", "streaming"})
_PRIMITIVES = frozenset({"str", "int", "float", "bool", "dict", "list", "tuple"})


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | ast.Call | None:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _declares_slots(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "slots":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _check_slots(tree: ast.AST, path: str, findings: list[Finding]) -> None:
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        decorator = _dataclass_decorator(cls)
        if decorator is None:
            continue
        if not _declares_slots(decorator):
            findings.append(
                Finding(
                    path,
                    cls.lineno,
                    "SLOTS001",
                    f"dataclass {cls.name} in a hot module must declare "
                    "slots=True (per-instance __dict__ costs memory and "
                    "lookups at fleet scale)",
                )
            )


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


def _allowed_spec_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Constant):
        # None (in unions) or a string forward reference to a spec type
        if annotation.value is None:
            return True
        return isinstance(annotation.value, str) and annotation.value.endswith(
            "Spec"
        )
    if isinstance(annotation, ast.Name):
        return annotation.id in _PRIMITIVES or annotation.id.endswith("Spec")
    if isinstance(annotation, ast.Attribute):
        return annotation.attr.endswith("Spec")
    if isinstance(annotation, ast.Subscript):
        if not _allowed_spec_annotation(annotation.value):
            return False
        inner = annotation.slice
        parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_allowed_spec_annotation(part) for part in parts)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _allowed_spec_annotation(annotation.left) and _allowed_spec_annotation(
            annotation.right
        )
    return False


def _check_spec_fields(tree: ast.AST, path: str, findings: list[Finding]) -> None:
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef) or _dataclass_decorator(cls) is None:
            continue
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            if _is_classvar(stmt.annotation):
                continue
            if not _allowed_spec_annotation(stmt.annotation):
                findings.append(
                    Finding(
                        path,
                        stmt.lineno,
                        "SPEC001",
                        f"spec field {cls.name}.{stmt.target.id} is annotated "
                        f"'{ast.unparse(stmt.annotation)}'; spec fields must "
                        "be JSON primitives or nested *Spec types",
                    )
                )


def check(tree: ast.AST, path: str) -> list[Finding]:
    """Run the structural rules that apply to ``path``."""
    findings: list[Finding] = []
    parts = PurePath(path).parts
    if _SLOTTED_DIRS & set(parts):
        _check_slots(tree, path, findings)
    if parts and parts[-1] == "specs.py":
        _check_spec_fields(tree, path, findings)
    return findings
