"""REG001 / REG002: registry and spec coverage (import-time rule).

Unlike the AST rules this one imports the live component packages and
introspects the class hierarchy, because registration *is* an import-time
effect -- no syntactic check can see whether a ``@register_detector``
decorator actually ran.

* **REG001** -- every concrete subclass of the component bases
  (:class:`~repro.decomposition.base.OnlineDecomposer`,
  :class:`~repro.anomaly.base.AnomalyDetector`,
  :class:`~repro.forecasting.base.Forecaster`) defined under ``repro.*``
  must be registered in some registry namespace.  A class whose *subclass*
  is registered is exempt: intermediate adapter bases (``STDDetector``,
  ``WindowedDecomposer``) are reachable through their registered leaves.
* **REG002** -- for every registered component of a spec-backed namespace
  (decomposer / scorer / forecaster), a spec built from the component's
  primitive constructor defaults must survive
  ``to_dict`` -> ``from_dict`` -> ``to_dict`` as a fixed point.  This is
  the portability contract the engine checkpoint format relies on.

Findings carry the source location of the offending *class*, so the
standard inline suppressions apply (placed on or directly above the
``class`` line).
"""

from __future__ import annotations

import inspect
from typing import Iterable

from repro.analysis.findings import Finding

__all__ = ["check_registry"]


def _location(cls: type) -> tuple[str, int]:
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):  # pragma: no cover - C extensions etc.
        return "<unknown>", 1
    return path, line


def _walk_subclasses(cls: type) -> list[type]:
    out: list[type] = []
    for sub in cls.__subclasses__():
        out.append(sub)
        out.extend(_walk_subclasses(sub))
    return out


def _registered_name(registry, kinds: tuple[str, ...], cls: type) -> str | None:
    for kind in kinds:
        name = registry.component_name(kind, cls)
        if name is not None:
            return f"{kind}:{name}"
    return None


def _primitive_ctor_defaults(cls: type) -> dict:
    """The constructor parameters that have primitive defaults."""
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return {}
    params = {}
    for parameter in signature.parameters.values():
        if parameter.name == "self":
            continue
        default = parameter.default
        if default is inspect.Parameter.empty:
            continue
        if isinstance(default, (bool, int, float, str)):
            params[parameter.name] = default
        elif isinstance(default, tuple) and all(
            isinstance(item, (bool, int, float, str)) for item in default
        ):
            params[parameter.name] = list(default)
    return params


def check_registry(extra_classes: Iterable[type] = ()) -> list[Finding]:
    """Run REG001/REG002 against the live ``repro`` component hierarchy.

    ``extra_classes`` lets tests inject subclasses defined outside the
    ``repro.*`` module namespace (which the repo-wide scan ignores).
    """
    from repro import registry, specs
    from repro.anomaly.base import AnomalyDetector
    from repro.decomposition.base import OnlineDecomposer
    from repro.forecasting.base import Forecaster

    kinds = (
        registry.DECOMPOSER,
        registry.SCORER,
        registry.DETECTOR,
        registry.FORECASTER,
    )
    for kind in kinds:  # force the lazy built-in registrations
        registry.available(kind)

    extra = set(extra_classes)
    findings: list[Finding] = []
    seen: set[type] = set()
    for base in (OnlineDecomposer, AnomalyDetector, Forecaster):
        for cls in _walk_subclasses(base):
            if cls in seen:
                continue
            seen.add(cls)
            if not (cls.__module__.startswith("repro.") or cls in extra):
                continue
            if inspect.isabstract(cls):
                continue
            if _registered_name(registry, kinds, cls) is not None:
                continue
            if any(
                _registered_name(registry, kinds, sub) is not None
                for sub in _walk_subclasses(cls)
            ):
                continue  # adapter base reachable through a registered leaf
            path, line = _location(cls)
            findings.append(
                Finding(
                    path,
                    line,
                    "REG001",
                    f"concrete component subclass {cls.__name__} of "
                    f"{base.__name__} is not registered in any registry "
                    "namespace (and has no registered subclass)",
                )
            )

    spec_backed = (
        (registry.DECOMPOSER, specs.DecomposerSpec),
        (registry.SCORER, specs.DetectorSpec),
        (registry.FORECASTER, specs.ForecasterSpec),
    )
    for kind, spec_class in spec_backed:
        for name in registry.available(kind):
            cls = registry.get_component(kind, name)
            path, line = _location(cls)
            try:
                spec = spec_class(name=name, params=_primitive_ctor_defaults(cls))
                first = spec.to_dict()
                second = spec_class.from_dict(first).to_dict()
            except Exception as error:  # noqa: BLE001 - report, don't crash
                findings.append(
                    Finding(
                        path,
                        line,
                        "REG002",
                        f"{spec_class.__name__}({name!r}) round-trip raised "
                        f"{type(error).__name__}: {error}",
                    )
                )
                continue
            if first != second:
                findings.append(
                    Finding(
                        path,
                        line,
                        "REG002",
                        f"{spec_class.__name__}({name!r}) is not a "
                        "to_dict->from_dict->to_dict fixed point: "
                        f"{first!r} != {second!r}",
                    )
                )
    return findings
