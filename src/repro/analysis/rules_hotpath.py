"""HP00x: purity rules for functions marked ``@hotpath``.

The fleet kernel's throughput comes from doing zero Python-object work
per point (PR 3/4); these rules keep edits from quietly reintroducing it.
Inside a function carrying the :func:`repro.analysis.markers.hotpath`
decorator:

* **HP001** -- no ``list``/``dict``/``set`` literals or comprehensions
  inside a loop (every iteration would allocate a fresh container;
  tuples are exempt -- CPython handles constant tuples without a per-
  iteration allocation, and index tuples like ``a[:, None]`` are how the
  kernels address their arrays);
* **HP002** -- no ``a.b.c`` attribute chains (two or more dots) inside a
  loop: each iteration pays two dictionary lookups for a value that a
  single pre-loop hoist (``b = a.b``) resolves once;
* **HP003** -- no ``try``/``except`` inside a loop (zero-cost only until
  it isn't; error handling belongs outside the per-point path);
* **HP004** -- no ``**kwargs`` forwarding anywhere in the function (it
  allocates a dict per call and hides the callee's real signature).

The whole body of a ``for``/``while`` statement counts as "inside the
loop", including the iterable expression -- hoist it if it matters.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

__all__ = ["check"]

_ALLOC_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)
_ALLOC_LABELS: dict[type, str] = {
    ast.List: "list literal",
    ast.Dict: "dict literal",
    ast.Set: "set literal",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _is_hotpath(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    # both bare ``@hotpath`` and qualified ``@analysis.hotpath`` count
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "hotpath":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hotpath":
            return True
    return False


def _snippet(node: ast.AST) -> str:
    text = ast.unparse(node)
    return text if len(text) <= 60 else text[:57] + "..."


def _scan(
    node: ast.AST, in_loop: bool, name: str, path: str, findings: list[Finding]
) -> None:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
        if in_loop:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "HP002",
                    f"{name}: attribute chain '{_snippet(node)}' re-resolved "
                    "inside a loop; hoist the intermediate lookup before it",
                )
            )
        # recurse past the chain so 'a.b.c.d' is one finding, not two
        base: ast.AST = node.value
        while isinstance(base, ast.Attribute):
            base = base.value
        _scan(base, in_loop, name, path, findings)
        return
    if in_loop and isinstance(node, _ALLOC_NODES):
        label = _ALLOC_LABELS.get(type(node), "container literal")
        findings.append(
            Finding(
                path,
                node.lineno,
                "HP001",
                f"{name}: {label} '{_snippet(node)}' "
                "allocates inside a loop; preallocate or hoist it",
            )
        )
    if in_loop and isinstance(node, ast.Try):
        findings.append(
            Finding(
                path,
                node.lineno,
                "HP003",
                f"{name}: try/except inside a loop; move error handling "
                "outside the per-point path",
            )
        )
    if isinstance(node, ast.Call) and any(kw.arg is None for kw in node.keywords):
        findings.append(
            Finding(
                path,
                node.lineno,
                "HP004",
                f"{name}: call '{_snippet(node)}' forwards **kwargs on a hot "
                "path; spell the arguments out",
            )
        )
    enters_loop = isinstance(node, _LOOPS)
    for child in ast.iter_child_nodes(node):
        _scan(child, in_loop or enters_loop, name, path, findings)


def check(tree: ast.AST, path: str) -> list[Finding]:
    """Run the HP00x rules over every ``@hotpath`` function in ``tree``."""
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_hotpath(
            node
        ):
            for child in ast.iter_child_nodes(node):
                _scan(child, False, node.name, path, findings)
    return findings
