"""WAL001: the write-ahead append must dominate every state mutation.

Crash recovery (PR 5) replays the WAL on top of the last checkpoint; that
only reconstructs the exact pre-crash state if every ingest record was
appended *before* the corresponding state advanced.  A mutation hoisted
above its ``self._wal_append`` call opens a crash window in which state
moved but the log never heard about it.

The rule checks every method that calls ``self._wal_append`` (in any
class -- the engine is the real subject, fixtures stand in for it in
tests): walking the method body in statement order, any *mutation* --

* a ``self._process*`` / ``self._ingest*`` / ``self._advance*`` /
  ``self._sequential*`` / ``self._apply*`` / ``self._with_wal_suppressed``
  call (the engine's state-advancing helpers), or
* a store to / mutating call on ``self._series`` / ``self._groups`` /
  ``self._absorbed`` / ``self._group_of`` / ``self._warm`` (the engine's
  fleet dictionaries)

-- must come after a point where the append has happened on **every**
path: a plain append statement establishes it, an ``if`` establishes it
only when both branches do, and a loop body never does (it may run zero
times).
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.analysis.findings import Finding

__all__ = ["check"]

_WAL_CALL = "_wal_append"
_MUTATING_CALL_PREFIXES = (
    "_process",
    "_ingest",
    "_advance",
    "_sequential",
    "_apply",
    "_with_wal_suppressed",
)
_MUTATED_ATTRS = frozenset(
    {"_series", "_groups", "_absorbed", "_group_of", "_warm"}
)


def _is_self_attr(node: ast.AST, names: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in names
    )


def _contains_wal_call(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == _WAL_CALL
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return True
    return False


def _tracked_base(node: ast.AST) -> bool:
    """``self._series`` itself, or ``self._series[...]``."""
    if _is_self_attr(node, _MUTATED_ATTRS):
        return True
    return isinstance(node, ast.Subscript) and _is_self_attr(
        node.value, _MUTATED_ATTRS
    )


def _mutations(stmt: ast.stmt) -> list[tuple[int, str]]:
    """Every ``(line, description)`` of a state mutation inside ``stmt``."""
    found: list[tuple[int, str]] = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr.startswith(_MUTATING_CALL_PREFIXES)
            ):
                found.append((node.lineno, f"call 'self.{func.attr}(...)'"))
            elif _tracked_base(func.value):
                found.append(
                    (node.lineno, f"mutating call '{ast.unparse(func)}(...)'")
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets: Sequence[ast.AST]
            if isinstance(node, (ast.Assign, ast.Delete)):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if _tracked_base(sub):
                        found.append(
                            (node.lineno, f"store to '{ast.unparse(sub)}'")
                        )
                        break
    return found


def _scan_block(
    stmts: list[ast.stmt],
    seen: bool,
    method: str,
    path: str,
    findings: list[Finding],
) -> bool:
    """Walk one statement sequence; return whether every path appended."""
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            body_seen = _scan_block(stmt.body, seen, method, path, findings)
            orelse_seen = (
                _scan_block(stmt.orelse, seen, method, path, findings)
                if stmt.orelse
                else seen
            )
            seen = body_seen and orelse_seen
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # the loop body may run zero times: it never establishes the
            # append for statements after the loop
            _scan_block(stmt.body, seen, method, path, findings)
            _scan_block(stmt.orelse, seen, method, path, findings)
        elif isinstance(stmt, ast.Try):
            body_seen = _scan_block(stmt.body, seen, method, path, findings)
            handler_seen = body_seen
            for handler in stmt.handlers:
                # the body may have failed anywhere, including before its
                # append -- handlers start from the incoming state
                handler_seen = (
                    _scan_block(handler.body, seen, method, path, findings)
                    and handler_seen
                )
            _scan_block(stmt.orelse, body_seen, method, path, findings)
            _scan_block(stmt.finalbody, seen, method, path, findings)
            seen = handler_seen if (stmt.handlers or stmt.orelse) else body_seen
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            seen = _scan_block(stmt.body, seen, method, path, findings)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested scopes are checked on their own merits
        else:
            if not seen:
                for line, description in _mutations(stmt):
                    findings.append(
                        Finding(
                            path,
                            line,
                            "WAL001",
                            f"{method}: {description} precedes the "
                            "_wal_append call; the WAL must be appended "
                            "before state mutates",
                        )
                    )
            if _contains_wal_call(stmt):
                seen = True
    return seen


def check(tree: ast.AST, path: str) -> list[Finding]:
    """Run WAL001 over every WAL-logging method in ``tree``."""
    findings: list[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == _WAL_CALL:
                continue
            if not any(_contains_wal_call(stmt) for stmt in method.body):
                continue
            _scan_block(method.body, False, method.name, path, findings)
    return findings
