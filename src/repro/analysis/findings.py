"""The finding record and the catalogue of rule identifiers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "RULES"]

#: every rule the analyzer can emit; a suppression naming any other id is
#: itself a finding (SUP001)
RULES: dict[str, str] = {
    "HP001": "@hotpath function allocates a container inside a loop",
    "HP002": "@hotpath function re-resolves an attribute chain inside a loop",
    "HP003": "@hotpath function enters try/except inside a loop",
    "HP004": "@hotpath function forwards **kwargs",
    "WAL001": "state mutation is not dominated by the _wal_append call",
    "REG001": "concrete component subclass is not registered",
    "REG002": "component spec does not round-trip to a fixed point",
    "SLOTS001": "hot-module dataclass does not declare slots=True",
    "SPEC001": "spec dataclass field is not a JSON primitive or nested spec",
    "SUP001": "suppression names an unknown rule id",
    "SUP002": "suppression does not state a reason",
    "PARSE001": "source file does not parse",
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical one-line form: ``path:line: RULE-ID message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
