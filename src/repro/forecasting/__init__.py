"""Time-series forecasting methods and evaluation (paper Section 5.5).

Decomposition-based
-------------------
:class:`OneShotSTLForecaster`, :class:`OnlineSTLForecaster`, :class:`STDForecaster`
    Online decomposition + periodic continuation (paper Section 4).

Classical
---------
:class:`AutoARIMAForecaster`, :class:`ARIMAForecaster`
    AR(I)MA with automatic order selection.
:class:`HoltWintersForecaster`
    Additive triple exponential smoothing.
:class:`NaiveForecaster`, :class:`SeasonalNaiveForecaster`, :class:`DriftForecaster`
    Sanity baselines.

Learned proxies (stand-ins for the GPU deep baselines, see DESIGN.md)
----------------------------------------------------------------------
:class:`DirectRidgeForecaster`
    Direct multi-horizon ridge regression ("DLinear-style").
:class:`NBeatsLiteForecaster`
    Residual-stacked MLP in the spirit of N-BEATS.

Evaluation
----------
:func:`rolling_origin_evaluation`, :func:`evaluate_on_series`
    The Informer-style rolling protocol used by Table 5.
"""

from repro.forecasting.arima import ARIMAForecaster, AutoARIMAForecaster
from repro.forecasting.base import Forecaster
from repro.forecasting.evaluation import (
    ForecastEvaluation,
    evaluate_on_series,
    rolling_origin_evaluation,
)
from repro.forecasting.holt_winters import HoltWintersForecaster
from repro.forecasting.linear import DirectRidgeForecaster
from repro.forecasting.naive import DriftForecaster, NaiveForecaster, SeasonalNaiveForecaster
from repro.forecasting.nbeats_lite import NBeatsLiteForecaster
from repro.forecasting.std_forecaster import (
    OneShotSTLForecaster,
    OnlineSTLForecaster,
    STDForecaster,
)

__all__ = [
    "ARIMAForecaster",
    "AutoARIMAForecaster",
    "DirectRidgeForecaster",
    "DriftForecaster",
    "ForecastEvaluation",
    "Forecaster",
    "HoltWintersForecaster",
    "NBeatsLiteForecaster",
    "NaiveForecaster",
    "OneShotSTLForecaster",
    "OnlineSTLForecaster",
    "STDForecaster",
    "SeasonalNaiveForecaster",
    "evaluate_on_series",
    "rolling_origin_evaluation",
]
