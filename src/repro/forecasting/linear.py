"""Direct multi-horizon ridge regression ("DLinear-style" proxy).

One of the two learned proxies standing in for the paper's GPU deep
forecasters (DESIGN.md documents the substitution).  The model maps the
last ``input_window`` (train-standardized) values directly to all
``horizon`` outputs with a ridge-regularized linear layer -- the same family
of simple direct linear forecasters that has repeatedly been shown to match
transformer models on these benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster
from repro.utils import check_positive, check_positive_int, sliding_window_view

__all__ = ["DirectRidgeForecaster"]


@register_forecaster("direct_ridge")
class DirectRidgeForecaster(Forecaster):
    """Ridge regression from an input window to the full forecast horizon.

    Parameters
    ----------
    input_window:
        Number of most recent values used as the regression input.
    horizon:
        Forecast horizon the model is trained for (requests for shorter
        horizons reuse the leading outputs; longer requests are rejected).
    regularization:
        Ridge penalty added to the normal equations.
    """

    name = "DirectRidge"

    def __init__(self, input_window: int, horizon: int, regularization: float = 1.0):
        self.input_window = check_positive_int(input_window, "input_window", minimum=2)
        self.horizon = check_positive_int(horizon, "horizon")
        self.regularization = check_positive(regularization, "regularization")
        self._weights: np.ndarray | None = None
        self._mean = 0.0
        self._scale = 1.0

    def fit(self, train_values) -> "DirectRidgeForecaster":
        train = self._validate_fit(
            train_values, min_length=self.input_window + self.horizon + 1
        )
        self._mean = float(train.mean())
        scale = float(train.std())
        self._scale = scale if scale > 1e-8 else 1.0
        normalized = (train - self._mean) / self._scale

        window = self.input_window + self.horizon
        segments = sliding_window_view(normalized, window)
        inputs = segments[:, : self.input_window]
        targets = segments[:, self.input_window :]
        design = np.column_stack([np.ones(inputs.shape[0]), inputs])
        gram = design.T @ design + self.regularization * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ targets)
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if self._weights is None:
            raise RuntimeError("fit() must be called before forecast()")
        if horizon > self.horizon:
            raise ValueError(
                f"model was trained for horizon {self.horizon}, got request for {horizon}"
            )
        if history.size < self.input_window:
            return np.full(horizon, history[-1])
        normalized = (history[-self.input_window :] - self._mean) / self._scale
        features = np.concatenate([[1.0], normalized])
        predictions = features @ self._weights
        return predictions[:horizon] * self._scale + self._mean
