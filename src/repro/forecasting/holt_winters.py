"""Additive Holt-Winters (triple exponential smoothing).

A classical statistical forecaster with level, trend and seasonal states.
It serves two roles: a strong non-deep baseline in its own right, and part
of the proxy family standing in for the paper's GPU-trained forecasters
(see DESIGN.md).  The three smoothing factors are selected with a small
grid search on the training split.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster
from repro.utils import check_period

__all__ = ["HoltWintersForecaster"]


@register_forecaster("holt_winters")
class HoltWintersForecaster(Forecaster):
    """Additive Holt-Winters with grid-searched smoothing factors.

    Parameters
    ----------
    period:
        Seasonal period length.
    grid:
        Candidate values tried for each smoothing factor during fitting.
    """

    name = "HoltWinters"

    def __init__(self, period: int, grid: tuple[float, ...] = (0.1, 0.3, 0.6)):
        self.period = check_period(period)
        self.grid = tuple(float(value) for value in grid)
        self.level_smoothing = 0.3
        self.trend_smoothing = 0.1
        self.seasonal_smoothing = 0.1

    # ------------------------------------------------------------------ API

    def fit(self, train_values) -> "HoltWintersForecaster":
        train = self._validate_fit(train_values, min_length=2 * self.period + 2)
        best_error = np.inf
        best = (self.level_smoothing, self.trend_smoothing, self.seasonal_smoothing)
        holdout = min(max(self.period, train.size // 5), train.size // 2)
        fit_part, validation_part = train[:-holdout], train[-holdout:]
        for alpha, beta, gamma in product(self.grid, repeat=3):
            state = self._run(fit_part, alpha, beta, gamma)
            predictions = self._predict_from_state(state, validation_part.size)
            error = float(np.mean(np.abs(predictions - validation_part)))
            if error < best_error:
                best_error = error
                best = (alpha, beta, gamma)
        self.level_smoothing, self.trend_smoothing, self.seasonal_smoothing = best
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if history.size < 2 * self.period + 2:
            return np.full(horizon, history[-1])
        state = self._run(
            history, self.level_smoothing, self.trend_smoothing, self.seasonal_smoothing
        )
        return self._predict_from_state(state, horizon)

    # ------------------------------------------------------------- internals

    def _run(self, values: np.ndarray, alpha: float, beta: float, gamma: float) -> dict:
        period = self.period
        seasonal = np.array(
            [values[phase::period][: values.size // period].mean() for phase in range(period)]
        )
        seasonal = seasonal - seasonal.mean()
        level = float(values[:period].mean())
        trend = float((values[period : 2 * period].mean() - values[:period].mean()) / period)
        for index in range(values.size):
            phase = index % period
            observation = values[index]
            previous_level = level
            level = alpha * (observation - seasonal[phase]) + (1 - alpha) * (level + trend)
            trend = beta * (level - previous_level) + (1 - beta) * trend
            seasonal[phase] = gamma * (observation - level) + (1 - gamma) * seasonal[phase]
        return {
            "level": level,
            "trend": trend,
            "seasonal": seasonal,
            "next_phase": values.size % period,
        }

    def _predict_from_state(self, state: dict, horizon: int) -> np.ndarray:
        predictions = np.empty(horizon)
        for step in range(horizon):
            phase = (state["next_phase"] + step) % self.period
            predictions[step] = (
                state["level"] + (step + 1) * state["trend"] + state["seasonal"][phase]
            )
        return predictions
