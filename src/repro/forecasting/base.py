"""Common interface of the forecasting methods.

All forecasters expose::

    forecaster.fit(train_values)
    predictions = forecaster.forecast(history, horizon)

``fit`` is called once with the training split; ``forecast`` is then called
for every rolling origin of the test split with the full history observed
up to that origin (models are free to look only at the most recent window,
and online models may consume the history incrementally).  The rolling
evaluation harness in :mod:`repro.forecasting.evaluation` relies only on
this interface, which is what lets Table 5 iterate over classical,
decomposition-based and learned forecasters uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils import as_float_array, check_positive_int

__all__ = ["Forecaster"]


class Forecaster(ABC):
    """A univariate point forecaster."""

    #: human-readable name used in benchmark tables
    name: str = "forecaster"

    @abstractmethod
    def fit(self, train_values) -> "Forecaster":
        """Train / initialize the model on the training split."""

    @abstractmethod
    def forecast(self, history, horizon: int) -> np.ndarray:
        """Predict the next ``horizon`` values following ``history``."""

    def _validate_fit(self, train_values, min_length: int = 4) -> np.ndarray:
        return as_float_array(train_values, "train_values", min_length=min_length)

    def _validate_forecast(self, history, horizon: int) -> tuple[np.ndarray, int]:
        history = as_float_array(history, "history", min_length=1)
        horizon = check_positive_int(horizon, "horizon")
        return history, horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
