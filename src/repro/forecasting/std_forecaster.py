"""Decomposition-based forecasters (paper Section 4, Table 5).

The online STD methods forecast by combining the latest decomposed trend
with the periodic continuation of their seasonal buffer:
``y_hat(t + i) = trend(t) + v[(t + i) mod T]``.  This wrapper adapts any
online decomposer that exposes a ``forecast`` method (OneShotSTL and
OnlineSTL both do) to the common :class:`~repro.forecasting.base.Forecaster`
interface, consuming the history incrementally so that a rolling evaluation
over a long test split costs one online update per new point -- exactly the
"0.3 seconds for the whole benchmark" behaviour reported in Table 5.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.oneshotstl import OneShotSTL
from repro.decomposition.base import OnlineDecomposer
from repro.decomposition.online_stl import OnlineSTL
from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster

__all__ = ["STDForecaster", "OneShotSTLForecaster", "OnlineSTLForecaster"]


class STDForecaster(Forecaster):
    """Adapter from an online decomposer to the forecaster interface.

    Parameters
    ----------
    decomposer_factory:
        Callable returning a fresh online decomposer with a ``forecast``
        method.
    name:
        Reported method name.
    """

    def __init__(self, decomposer_factory: Callable[[], OnlineDecomposer], name: str = "STD"):
        self.decomposer_factory = decomposer_factory
        self.name = name
        self._decomposer: OnlineDecomposer | None = None
        self._consumed = 0

    def fit(self, train_values) -> "STDForecaster":
        train = self._validate_fit(train_values)
        self._decomposer = self.decomposer_factory()
        self._decomposer.initialize(train)
        self._consumed = train.size
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if self._decomposer is None:
            raise RuntimeError("fit() must be called before forecast()")
        if history.size < self._consumed:
            raise ValueError(
                "history must extend the data already consumed "
                f"({history.size} < {self._consumed})"
            )
        for value in history[self._consumed :]:
            self._decomposer.update(float(value))
        self._consumed = history.size
        return np.asarray(self._decomposer.forecast(horizon), dtype=float)


@register_forecaster("oneshotstl")
class OneShotSTLForecaster(STDForecaster):
    """OneShotSTL + periodic continuation (the paper's proposed TSF method)."""

    def __init__(
        self,
        period: int,
        lambda1: float = 1.0,
        lambda2: float = 1.0,
        iterations: int = 8,
        shift_window: int = 20,
    ):
        self.period = period
        super().__init__(
            decomposer_factory=lambda: OneShotSTL(
                period,
                lambda1=lambda1,
                lambda2=lambda2,
                iterations=iterations,
                shift_window=shift_window,
            ),
            name="OneShotSTL",
        )


@register_forecaster("online_stl")
class OnlineSTLForecaster(STDForecaster):
    """OnlineSTL + periodic continuation."""

    def __init__(self, period: int, smoothing: float = 0.7):
        self.period = period
        super().__init__(
            decomposer_factory=lambda: OnlineSTL(period, smoothing=smoothing),
            name="OnlineSTL",
        )
