"""ARIMA-style forecasting (the paper's AutoArima baseline).

A from-scratch AR(I)MA implementation sufficient for the univariate
point-forecast comparison of Table 5:

* the differencing order ``d`` and the autoregressive order ``p`` are chosen
  by a small grid search that minimizes AIC on the training split
  (mirroring statsforecast's AutoARIMA in spirit);
* AR coefficients are estimated by conditional least squares;
* an optional seasonal-naive term handles strong seasonality, selected
  automatically when it lowers the in-sample error.

The moving-average component is omitted (documented simplification): for
the long-horizon point forecasts evaluated in the paper the AR + seasonal
structure dominates, and dropping MA keeps estimation a single linear
solve.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster
from repro.utils import check_positive_int

__all__ = ["ARIMAForecaster", "AutoARIMAForecaster"]


def _difference(values: np.ndarray, order: int) -> np.ndarray:
    for _ in range(order):
        values = np.diff(values)
    return values


def _fit_ar(values: np.ndarray, order: int) -> tuple[np.ndarray, float, float]:
    """Least-squares AR(p) fit; returns (coefficients, intercept, sigma2)."""
    if order == 0:
        residuals = values - values.mean()
        return np.zeros(0), float(values.mean()), float(np.var(residuals) + 1e-12)
    if values.size <= order + 1:
        raise ValueError("not enough data for the requested AR order")
    design = np.column_stack(
        [values[order - lag - 1 : values.size - lag - 1] for lag in range(order)]
    )
    design = np.column_stack([np.ones(design.shape[0]), design])
    target = values[order:]
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    predictions = design @ solution
    sigma2 = float(np.mean((target - predictions) ** 2) + 1e-12)
    return solution[1:], float(solution[0]), sigma2


@register_forecaster("arima")
class ARIMAForecaster(Forecaster):
    """AR(p) model on the ``d``-times differenced series."""

    name = "ARIMA"

    def __init__(self, order: int = 3, difference_order: int = 1):
        self.order = check_positive_int(order, "order", minimum=0)
        self.difference_order = check_positive_int(
            difference_order, "difference_order", minimum=0
        )
        self._coefficients = np.zeros(0)
        self._intercept = 0.0

    def fit(self, train_values) -> "ARIMAForecaster":
        train = self._validate_fit(train_values, min_length=self.order + self.difference_order + 3)
        differenced = _difference(train, self.difference_order)
        self._coefficients, self._intercept, self._sigma2 = _fit_ar(differenced, self.order)
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        differenced = _difference(history, self.difference_order)
        order = self._coefficients.size
        buffer = list(differenced[-order:]) if order else []
        predicted_differences = []
        for _ in range(horizon):
            if order:
                recent = np.asarray(buffer[-order:])[::-1]
                value = self._intercept + float(np.dot(self._coefficients, recent))
            else:
                value = self._intercept
            predicted_differences.append(value)
            buffer.append(value)
        predictions = np.asarray(predicted_differences)
        # Undo the differencing by cumulative integration from the last
        # observed values.
        for level in range(self.difference_order, 0, -1):
            anchor = _difference(history, level - 1)[-1]
            predictions = anchor + np.cumsum(predictions)
        return predictions

    @property
    def aic(self) -> float:
        """Akaike information criterion of the fitted AR model."""
        parameters = self.order + 1
        sigma2 = getattr(self, "_sigma2", None)
        if sigma2 is None:
            raise RuntimeError("fit() must be called before reading aic")
        return float(2 * parameters + np.log(sigma2))


@register_forecaster("auto_arima")
class AutoARIMAForecaster(Forecaster):
    """Grid-searched ARIMA with an optional seasonal-naive component."""

    name = "AutoArima"

    def __init__(
        self,
        period: int | None = None,
        max_order: int = 5,
        max_difference: int = 2,
    ):
        self.period = period
        self.max_order = check_positive_int(max_order, "max_order", minimum=0)
        self.max_difference = check_positive_int(max_difference, "max_difference", minimum=0)
        self._model: ARIMAForecaster | None = None
        self._use_seasonal = False

    def fit(self, train_values) -> "AutoARIMAForecaster":
        train = self._validate_fit(train_values, min_length=self.max_order + self.max_difference + 8)
        best_aic = np.inf
        best_model = None
        for difference_order in range(self.max_difference + 1):
            for order in range(self.max_order + 1):
                try:
                    candidate = ARIMAForecaster(order, difference_order).fit(train)
                except (ValueError, np.linalg.LinAlgError):
                    continue
                penalty = candidate.aic + 0.05 * difference_order
                if penalty < best_aic:
                    best_aic = penalty
                    best_model = candidate
        if best_model is None:
            best_model = ARIMAForecaster(0, 0).fit(train)
        self._model = best_model

        self._use_seasonal = False
        if self.period and train.size >= 3 * self.period:
            holdout = min(2 * self.period, train.size // 4)
            fit_part, validation = train[:-holdout], train[-holdout:]
            arima_error = np.mean(
                np.abs(
                    ARIMAForecaster(best_model.order, best_model.difference_order)
                    .fit(fit_part)
                    .forecast(fit_part, holdout)
                    - validation
                )
            )
            seasonal_prediction = np.tile(
                fit_part[-self.period :], int(np.ceil(holdout / self.period))
            )[:holdout]
            seasonal_error = np.mean(np.abs(seasonal_prediction - validation))
            self._use_seasonal = bool(seasonal_error < arima_error)
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if self._model is None:
            raise RuntimeError("fit() must be called before forecast()")
        if self._use_seasonal and self.period and history.size >= self.period:
            repetitions = int(np.ceil(horizon / self.period))
            return np.tile(history[-self.period :], repetitions)[:horizon]
        return self._model.forecast(history, horizon)
