"""N-BEATS-lite: a residual-stacked MLP forecaster (deep-baseline proxy).

A compact re-creation of N-BEATS' central idea -- a stack of fully connected
blocks where each block produces a *backcast* that is subtracted from the
input before the next block, and a *forecast* that is added to the running
prediction -- trained with the in-repo numpy neural substrate.  Together
with :class:`~repro.forecasting.linear.DirectRidgeForecaster` it stands in
for the GPU deep baselines of Table 5 (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster
from repro.neural import MLPRegressor
from repro.utils import check_positive_int, sliding_window_view

__all__ = ["NBeatsLiteForecaster"]


@register_forecaster("nbeats_lite")
class NBeatsLiteForecaster(Forecaster):
    """Residual stack of MLP blocks mapping an input window to the horizon.

    Parameters
    ----------
    input_window / horizon:
        Input and output lengths.
    blocks:
        Number of residual blocks.
    hidden:
        Hidden width of each block.
    epochs / learning_rate:
        Training hyper-parameters of each block.
    max_training_windows:
        Cap on the number of training windows (sampled uniformly) to bound
        the CPU training cost.
    """

    name = "NBEATS-lite"

    def __init__(
        self,
        input_window: int,
        horizon: int,
        blocks: int = 2,
        hidden: int = 64,
        epochs: int = 40,
        learning_rate: float = 1e-3,
        max_training_windows: int = 2000,
        seed: int = 0,
    ):
        self.input_window = check_positive_int(input_window, "input_window", minimum=2)
        self.horizon = check_positive_int(horizon, "horizon")
        self.blocks = check_positive_int(blocks, "blocks")
        self.hidden = check_positive_int(hidden, "hidden")
        self.epochs = check_positive_int(epochs, "epochs")
        self.learning_rate = learning_rate
        self.max_training_windows = check_positive_int(
            max_training_windows, "max_training_windows"
        )
        self.seed = int(seed)
        self._block_models: list[MLPRegressor] = []
        self._mean = 0.0
        self._scale = 1.0

    def fit(self, train_values) -> "NBeatsLiteForecaster":
        train = self._validate_fit(
            train_values, min_length=self.input_window + self.horizon + 1
        )
        self._mean = float(train.mean())
        scale = float(train.std())
        self._scale = scale if scale > 1e-8 else 1.0
        normalized = (train - self._mean) / self._scale

        window = self.input_window + self.horizon
        segments = sliding_window_view(normalized, window)
        if segments.shape[0] > self.max_training_windows:
            rng = np.random.default_rng(self.seed)
            keep = rng.choice(segments.shape[0], self.max_training_windows, replace=False)
            segments = segments[np.sort(keep)]
        inputs = segments[:, : self.input_window].copy()
        targets = segments[:, self.input_window :].copy()

        self._block_models = []
        residual_inputs = inputs
        residual_targets = targets
        for block_index in range(self.blocks):
            model = MLPRegressor(
                input_size=self.input_window,
                output_size=self.input_window + self.horizon,
                hidden_sizes=(self.hidden, self.hidden),
                epochs=self.epochs,
                learning_rate=self.learning_rate,
                batch_size=64,
                seed=self.seed + block_index,
            )
            block_targets = np.concatenate([residual_inputs, residual_targets], axis=1)
            model.fit(residual_inputs, block_targets)
            self._block_models.append(model)
            predictions = model.predict(residual_inputs)
            backcast = predictions[:, : self.input_window]
            forecast = predictions[:, self.input_window :]
            residual_inputs = residual_inputs - backcast
            residual_targets = residual_targets - forecast
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if not self._block_models:
            raise RuntimeError("fit() must be called before forecast()")
        if horizon > self.horizon:
            raise ValueError(
                f"model was trained for horizon {self.horizon}, got request for {horizon}"
            )
        if history.size < self.input_window:
            return np.full(horizon, history[-1])
        residual = (history[-self.input_window :] - self._mean) / self._scale
        combined_forecast = np.zeros(self.horizon)
        for model in self._block_models:
            predictions = model.predict(residual[None, :])[0]
            backcast = predictions[: self.input_window]
            combined_forecast += predictions[self.input_window :]
            residual = residual - backcast
        return combined_forecast[:horizon] * self._scale + self._mean
