"""Naive forecasting baselines (sanity floor for Table 5)."""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster
from repro.registry import register_forecaster
from repro.utils import check_period

__all__ = ["NaiveForecaster", "SeasonalNaiveForecaster", "DriftForecaster"]


@register_forecaster("naive")
class NaiveForecaster(Forecaster):
    """Repeat the last observed value."""

    name = "Naive"

    def fit(self, train_values) -> "NaiveForecaster":
        self._validate_fit(train_values, min_length=1)
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        return np.full(horizon, history[-1])


@register_forecaster("seasonal_naive")
class SeasonalNaiveForecaster(Forecaster):
    """Repeat the value observed one period earlier."""

    name = "SeasonalNaive"

    def __init__(self, period: int):
        self.period = check_period(period)

    def fit(self, train_values) -> "SeasonalNaiveForecaster":
        self._validate_fit(train_values, min_length=self.period)
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if history.size < self.period:
            return np.full(horizon, history[-1])
        last_period = history[-self.period :]
        repetitions = int(np.ceil(horizon / self.period))
        return np.tile(last_period, repetitions)[:horizon]


@register_forecaster("drift")
class DriftForecaster(Forecaster):
    """Extrapolate the average slope of the history (the classic drift method)."""

    name = "Drift"

    def fit(self, train_values) -> "DriftForecaster":
        self._validate_fit(train_values, min_length=2)
        return self

    def forecast(self, history, horizon: int) -> np.ndarray:
        history, horizon = self._validate_forecast(history, horizon)
        if history.size < 2:
            return np.full(horizon, history[-1])
        slope = (history[-1] - history[0]) / (history.size - 1)
        return history[-1] + slope * np.arange(1, horizon + 1)
