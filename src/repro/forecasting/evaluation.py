"""Rolling-origin evaluation of forecasters (the Table 5 protocol).

Following the Informer/FEDformer protocol the paper adopts: the series is
standardized with the training split's mean and standard deviation, the
forecaster is fitted once on the training split, and then for a sequence of
rolling origins inside the test split it predicts ``horizon`` steps ahead;
the reported number is the MAE between predictions and actuals in
standardized units, averaged over all evaluated origins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.types import ForecastSeries
from repro.forecasting.base import Forecaster
from repro.metrics.forecasting import mae, mse
from repro.utils import check_positive_int

__all__ = ["ForecastEvaluation", "rolling_origin_evaluation", "evaluate_on_series"]


@dataclass(frozen=True)
class ForecastEvaluation:
    """Result of a rolling-origin evaluation."""

    method: str
    dataset: str
    horizon: int
    mae: float
    mse: float
    origins: int

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "horizon": self.horizon,
            "mae": self.mae,
            "mse": self.mse,
            "origins": self.origins,
        }


def rolling_origin_evaluation(
    forecaster: Forecaster,
    values: np.ndarray,
    train_end: int,
    horizon: int,
    stride: int | None = None,
    max_origins: int = 50,
    standardize: bool = True,
    dataset_name: str = "series",
) -> ForecastEvaluation:
    """Evaluate ``forecaster`` on rolling origins of ``values[train_end:]``.

    Parameters
    ----------
    forecaster:
        Unfitted forecaster instance (``fit`` is called on the training split).
    values:
        Complete series.
    train_end:
        Index separating the training split from the evaluation region.
    horizon:
        Forecast horizon.
    stride:
        Spacing between consecutive origins; defaults to a value that yields
        about ``max_origins`` evaluations.
    max_origins:
        Upper bound on the number of evaluated origins.
    standardize:
        Standardize the series by the training mean/std before evaluating
        (the Informer convention, which the paper follows).
    """
    values = np.asarray(values, dtype=float)
    horizon = check_positive_int(horizon, "horizon")
    train_end = check_positive_int(train_end, "train_end")
    if train_end + horizon >= values.size:
        raise ValueError("not enough data after train_end for one forecast window")

    if standardize:
        mean = values[:train_end].mean()
        scale = values[:train_end].std()
        scale = scale if scale > 1e-8 else 1.0
        values = (values - mean) / scale

    forecaster.fit(values[:train_end])

    last_origin = values.size - horizon
    available = last_origin - train_end
    if stride is None:
        stride = max(1, available // max_origins)
    origins = list(range(train_end, last_origin + 1, stride))[:max_origins]

    absolute_errors = []
    squared_errors = []
    for origin in origins:
        prediction = forecaster.forecast(values[:origin], horizon)
        actual = values[origin : origin + horizon]
        absolute_errors.append(mae(actual, prediction))
        squared_errors.append(mse(actual, prediction))
    return ForecastEvaluation(
        method=forecaster.name,
        dataset=dataset_name,
        horizon=horizon,
        mae=float(np.mean(absolute_errors)),
        mse=float(np.mean(squared_errors)),
        origins=len(origins),
    )


def evaluate_on_series(
    forecaster: Forecaster,
    series: ForecastSeries,
    horizon: int,
    stride: int | None = None,
    max_origins: int = 50,
) -> ForecastEvaluation:
    """Rolling-origin evaluation on a :class:`ForecastSeries` test split."""
    return rolling_origin_evaluation(
        forecaster,
        series.values,
        train_end=series.validation_end,
        horizon=horizon,
        stride=stride,
        max_origins=max_origins,
        dataset_name=series.name,
    )
