"""String-keyed component registry: stable names for every pluggable piece.

The declarative configuration layer (:mod:`repro.specs`) describes a
pipeline as plain data -- ``{"name": "oneshotstl", "params": {...}}`` --
and needs a way to turn a stable string name back into the class that
implements it.  This module is that mapping.  Components self-register at
class-definition time with one of the decorators below::

    from repro.registry import register_decomposer

    @register_decomposer("oneshotstl")
    class OneShotSTL(OnlineDecomposer):
        ...

Four namespaces keep the names unambiguous:

``decomposer``
    Online decomposers usable inside a :class:`~repro.streaming.pipeline.
    StreamingPipeline` (``initialize`` / ``update``).
``scorer``
    Streaming anomaly scorers for the pipeline's detection stage
    (``update(value) -> verdict``), e.g. :class:`repro.core.nsigma.NSigma`.
``detector``
    Batch :class:`~repro.anomaly.base.AnomalyDetector` methods
    (``detect(train, test) -> scores``) used by the TSAD benchmarks.
``forecaster``
    :class:`~repro.forecasting.base.Forecaster` implementations.

The registry is intentionally passive: importing this module pulls in no
component code.  Lookups lazily import the built-in component packages the
first time a name is requested, so ``get_component("decomposer",
"oneshotstl")`` works from a cold start while third-party code can still
register its own classes before or after.

Registration stamps the chosen name onto the class as ``registry_name``,
which is how a *live* component reports the stable name for its spec
(:func:`component_name` guards against subclasses inheriting the stamp).
"""

from __future__ import annotations

import importlib
from typing import Callable, Type

__all__ = [
    "DECOMPOSER",
    "DETECTOR",
    "FORECASTER",
    "SCORER",
    "available",
    "component_name",
    "get_component",
    "is_registered",
    "register",
    "register_decomposer",
    "register_detector",
    "register_forecaster",
    "register_scorer",
]

DECOMPOSER = "decomposer"
SCORER = "scorer"
DETECTOR = "detector"
FORECASTER = "forecaster"

_KINDS = (DECOMPOSER, SCORER, DETECTOR, FORECASTER)

#: packages whose import triggers the built-in registrations
_BUILTIN_PACKAGES = (
    "repro.core",
    "repro.decomposition",
    "repro.anomaly",
    "repro.forecasting",
)

_registry: dict[str, dict[str, type]] = {kind: {} for kind in _KINDS}
_builtins_loaded = False


def _check_kind(kind: str) -> str:
    if kind not in _KINDS:
        raise ValueError(f"unknown registry kind {kind!r}; expected one of {_KINDS}")
    return kind


def _load_builtins() -> None:
    """Import the built-in component packages once, on first lookup."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for package in _BUILTIN_PACKAGES:
        importlib.import_module(package)


def register(kind: str, name: str) -> Callable[[Type], Type]:
    """Class decorator: register the class under ``(kind, name)``.

    Re-registering the *same* class under the same name is a no-op (so
    module reloads stay safe); registering a different class under a taken
    name raises ``ValueError``.
    """
    _check_kind(kind)
    if not isinstance(name, str) or not name:
        raise ValueError("registry names must be non-empty strings")

    def decorator(cls: Type) -> Type:
        existing = _registry[kind].get(name)
        if (
            existing is not None
            and existing is not cls
            and (
                existing.__module__ != cls.__module__
                or existing.__qualname__ != cls.__qualname__
            )
        ):
            # A different class object with the same module and qualname is
            # the same definition re-executed (importlib.reload, pytest
            # re-imports): take the newer one.  Anything else is a genuine
            # name collision.
            raise ValueError(
                f"{kind} name {name!r} is already registered to "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        _registry[kind][name] = cls
        setattr(cls, "registry_name", name)
        return cls

    return decorator


def register_decomposer(name: str) -> Callable[[Type], Type]:
    """Register an online decomposer (``initialize`` / ``update``)."""
    return register(DECOMPOSER, name)


def register_scorer(name: str) -> Callable[[Type], Type]:
    """Register a streaming anomaly scorer (``update(value) -> verdict``)."""
    return register(SCORER, name)


def register_detector(name: str) -> Callable[[Type], Type]:
    """Register a batch anomaly detector (``detect(train, test)``)."""
    return register(DETECTOR, name)


def register_forecaster(name: str) -> Callable[[Type], Type]:
    """Register a forecaster (``fit`` / ``forecast``)."""
    return register(FORECASTER, name)


def get_component(kind: str, name: str) -> type:
    """Return the class registered under ``(kind, name)``.

    Unknown names raise ``KeyError`` listing the registered alternatives.
    """
    _check_kind(kind)
    _load_builtins()
    try:
        return _registry[kind][name]
    except KeyError:
        known = ", ".join(sorted(_registry[kind])) or "(none)"
        raise KeyError(
            f"no {kind} registered under {name!r}; known {kind}s: {known}"
        ) from None


def is_registered(kind: str, name: str) -> bool:
    """Whether ``name`` resolves to a class in the ``kind`` namespace."""
    _check_kind(kind)
    _load_builtins()
    return name in _registry[kind]


def available(kind: str) -> list[str]:
    """Sorted names registered under ``kind``."""
    _check_kind(kind)
    _load_builtins()
    return sorted(_registry[kind])


def component_name(kind: str, cls: type) -> str | None:
    """Stable registered name of ``cls`` under ``kind``, or ``None``.

    The ``registry_name`` stamp is inherited by subclasses, so this checks
    that the name actually resolves back to ``cls`` itself -- an
    unregistered subclass of a registered class reports ``None`` rather
    than silently impersonating its parent.
    """
    _check_kind(kind)
    name = getattr(cls, "registry_name", None)
    if name is None:
        return None
    _load_builtins()
    if _registry[kind].get(name) is not cls:
        return None
    return name
