"""A small feed-forward network with manual backpropagation.

Only what the deep-baseline proxies need is implemented -- dense layers,
ReLU/tanh/identity activations, mean-squared-error loss, Adam, mini-batch
training with validation-based early stopping -- but each piece is written
and tested as a standalone component.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive, check_positive_int

__all__ = ["DenseLayer", "AdamOptimizer", "MLPRegressor"]

_ACTIVATIONS = {
    "identity": (lambda x: x, lambda x: np.ones_like(x)),
    "relu": (lambda x: np.maximum(x, 0.0), lambda x: (x > 0).astype(float)),
    "tanh": (np.tanh, lambda x: 1.0 - np.tanh(x) ** 2),
}


class DenseLayer:
    """Fully connected layer with an element-wise activation."""

    def __init__(self, input_size: int, output_size: int, activation: str = "relu", rng=None):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        input_size = check_positive_int(input_size, "input_size")
        output_size = check_positive_int(output_size, "output_size")
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / input_size)
        self.weights = rng.normal(0.0, scale, size=(input_size, output_size))
        self.bias = np.zeros(output_size)
        self.activation = activation
        self._forward_fn, self._derivative_fn = _ACTIVATIONS[activation]
        self._last_input: np.ndarray | None = None
        self._last_preactivation: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._last_input = inputs
        self._last_preactivation = inputs @ self.weights + self.bias
        return self._forward_fn(self._last_preactivation)

    def backward(self, gradient: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (input gradient, weight gradient, bias gradient)."""
        if self._last_input is None:
            raise RuntimeError("forward() must be called before backward()")
        local = gradient * self._derivative_fn(self._last_preactivation)
        weight_gradient = self._last_input.T @ local / self._last_input.shape[0]
        bias_gradient = local.mean(axis=0)
        input_gradient = local @ self.weights.T
        return input_gradient, weight_gradient, bias_gradient


class AdamOptimizer:
    """Adam optimizer over a list of parameter arrays."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8):
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moments: list[np.ndarray] | None = None
        self._second_moments: list[np.ndarray] | None = None
        self._step = 0

    def update(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._first_moments is None:
            self._first_moments = [np.zeros_like(p) for p in parameters]
            self._second_moments = [np.zeros_like(p) for p in parameters]
        self._step += 1
        for index, (parameter, gradient) in enumerate(zip(parameters, gradients)):
            first = self._first_moments[index]
            second = self._second_moments[index]
            first[:] = self.beta1 * first + (1 - self.beta1) * gradient
            second[:] = self.beta2 * second + (1 - self.beta2) * gradient ** 2
            corrected_first = first / (1 - self.beta1 ** self._step)
            corrected_second = second / (1 - self.beta2 ** self._step)
            parameter -= self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )


class MLPRegressor:
    """Multi-layer perceptron trained with MSE loss and Adam.

    Parameters
    ----------
    input_size / output_size:
        Input and output dimensionality.
    hidden_sizes:
        Sizes of the hidden layers (may be empty for a linear model).
    activation:
        Hidden-layer activation.
    learning_rate / epochs / batch_size:
        Training hyper-parameters.
    validation_fraction / patience:
        Early stopping: training stops when the validation loss has not
        improved for ``patience`` consecutive epochs.
    seed:
        Seed of the weight-initialization and shuffling RNG.
    """

    def __init__(
        self,
        input_size: int,
        output_size: int,
        hidden_sizes: tuple[int, ...] = (64, 64),
        activation: str = "relu",
        learning_rate: float = 1e-3,
        epochs: int = 100,
        batch_size: int = 32,
        validation_fraction: float = 0.2,
        patience: int = 10,
        seed: int = 0,
    ):
        self.input_size = check_positive_int(input_size, "input_size")
        self.output_size = check_positive_int(output_size, "output_size")
        self.hidden_sizes = tuple(int(size) for size in hidden_sizes)
        self.activation = activation
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.epochs = check_positive_int(epochs, "epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in [0, 1)")
        self.validation_fraction = validation_fraction
        self.patience = check_positive_int(patience, "patience")
        self.seed = int(seed)

        self._rng = np.random.default_rng(self.seed)
        sizes = (self.input_size, *self.hidden_sizes, self.output_size)
        self.layers = []
        for index in range(len(sizes) - 1):
            is_output = index == len(sizes) - 2
            self.layers.append(
                DenseLayer(
                    sizes[index],
                    sizes[index + 1],
                    activation="identity" if is_output else activation,
                    rng=self._rng,
                )
            )
        self.training_history: list[float] = []

    # ------------------------------------------------------------------ API

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass; accepts a single sample or a batch."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        outputs = inputs
        for layer in self.layers:
            outputs = layer.forward(outputs)
        return outputs

    def fit(self, inputs: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        """Train on ``(inputs, targets)`` with mini-batch Adam and early stopping."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs and targets must have the same number of rows")
        if inputs.shape[1] != self.input_size or targets.shape[1] != self.output_size:
            raise ValueError("inputs/targets dimensionality does not match the model")

        sample_count = inputs.shape[0]
        validation_count = int(sample_count * self.validation_fraction)
        permutation = self._rng.permutation(sample_count)
        validation_idx = permutation[:validation_count]
        training_idx = permutation[validation_count:]
        if training_idx.size == 0:
            training_idx = permutation
            validation_idx = permutation[:0]

        optimizer = AdamOptimizer(self.learning_rate)
        best_validation = np.inf
        best_weights = None
        epochs_without_improvement = 0
        self.training_history = []

        for _ in range(self.epochs):
            order = self._rng.permutation(training_idx)
            for start in range(0, order.size, self.batch_size):
                batch = order[start : start + self.batch_size]
                self._train_batch(inputs[batch], targets[batch], optimizer)

            if validation_idx.size:
                validation_loss = float(
                    np.mean((self.predict(inputs[validation_idx]) - targets[validation_idx]) ** 2)
                )
            else:
                validation_loss = float(
                    np.mean((self.predict(inputs[training_idx]) - targets[training_idx]) ** 2)
                )
            self.training_history.append(validation_loss)
            if validation_loss < best_validation - 1e-12:
                best_validation = validation_loss
                best_weights = [
                    (layer.weights.copy(), layer.bias.copy()) for layer in self.layers
                ]
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    break

        if best_weights is not None:
            for layer, (weights, bias) in zip(self.layers, best_weights):
                layer.weights = weights
                layer.bias = bias
        return self

    # ------------------------------------------------------------- internals

    def _train_batch(self, inputs, targets, optimizer) -> None:
        predictions = self.predict(inputs)
        gradient = 2.0 * (predictions - targets) / targets.shape[1]
        parameters: list[np.ndarray] = []
        gradients: list[np.ndarray] = []
        for layer in reversed(self.layers):
            gradient, weight_gradient, bias_gradient = layer.backward(gradient)
            parameters.extend([layer.weights, layer.bias])
            gradients.extend([weight_gradient, bias_gradient])
        optimizer.update(parameters, gradients)
