"""Minimal numpy neural-network substrate.

The paper compares against several deep-learning methods (LSTM, USAD,
TranAD for anomaly detection; DeepAR, N-BEATS, Informer, FEDformer, FiLM
for forecasting) that were trained on a V100 GPU.  This offline
reproduction has no GPU and no deep-learning framework, so those baselines
are represented by small feed-forward proxies built on this substrate (see
DESIGN.md, "dataset/baseline substitutions").  The substrate itself is a
complete, tested mini-library: dense layers, ReLU/tanh activations, MSE
loss, Adam optimizer, mini-batch training with early stopping.
"""

from repro.neural.network import AdamOptimizer, DenseLayer, MLPRegressor

__all__ = ["AdamOptimizer", "DenseLayer", "MLPRegressor"]
