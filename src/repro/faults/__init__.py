"""Deterministic fault injection and supervision policies.

The durability layer (PR 5) grew injectable *kill points* -- the store's
``fault_hook`` fires a symbolic name at every interesting I/O boundary --
and the sharding tier (PR 7) used them to arm one hard-coded failure
mode: SIGKILL at a WAL/manifest boundary.  This package generalizes that
into a composable harness plus the policies that survive it:

* :class:`FaultInjector` / :class:`FaultPlan` -- a *plan* of named
  injectors (``sigkill``, ``raise`` -- an ``OSError`` such as ENOSPC,
  ``torn`` partial writes, ``bit_flip`` on-disk corruption, fixed
  ``hang``, ``drop``/``delay`` of a worker reply) bound to boundary
  names and **counter-based trigger windows**.  No randomness anywhere:
  the N-th hit of a boundary fires, every run reproduces the same
  failure at the same byte.  Plans are JSON-able so the router can ship
  them into worker processes.
* :class:`RetryPolicy` -- bounded exponential backoff for transient
  errors, used by the shard router's supervision layer and usable
  standalone around any callable.

Boundary names come from two layers: the checkpoint store's kill points
(``wal.append.before/torn/after``, ``segment.write.*``,
``manifest.swap.*``, ``wal.rotate.*``, ``delete.before``) and the shard
worker's command loop (:data:`WORKER_RECV`, :data:`WORKER_REPLY`).
"""

from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    WORKER_RECV,
    WORKER_REPLY,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "WORKER_RECV",
    "WORKER_REPLY",
]
