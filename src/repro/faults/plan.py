"""Composable, deterministic fault plans.

A :class:`FaultPlan` is a tuple of :class:`FaultInjector` entries, each
naming a boundary *point*, an *action*, and a counter-based trigger
window.  The plan keeps one hit counter per point; injector ``i`` fires
on hits ``after .. after + times - 1`` of its point (``times=0`` means
forever).  There is no randomness and no clock in the trigger logic, so
a plan reproduces the same failure at the same operation on every run --
the property the fault-matrix oracle tests lean on.

Actions
-------
``sigkill``
    ``SIGKILL`` this process -- nothing runs after the boundary, exactly
    the on-disk state a hardware-level death leaves.
``raise`` (alias ``torn`` for readability at ``wal.append.torn``)
    Raise ``OSError(errno_code)`` (default ``ENOSPC``).  At the store's
    ``wal.append.torn`` point the store turns any raise into a *torn
    partial write* -- half the frame persists -- before re-raising, so
    attaching ``torn`` there simulates a mid-write I/O failure.
``bit_flip``
    Flip one bit of an on-disk artifact (``target``: the open ``wal``
    segment, the last written ``segment``, or the ``manifest``) at a
    deterministic byte offset, then continue silently -- the corruption
    is discovered later, by ``store.verify()`` or recovery.
``hang``
    Sleep ``duration`` seconds (default far beyond any request timeout):
    the worker is alive but unresponsive, which is what the router's
    watchdog must distinguish from a crash.
``delay``
    Sleep ``duration`` seconds, then continue -- a slow reply, not a
    dead one.
``drop``
    Cooperative: :meth:`FaultPlan.fire` returns ``"drop"`` and the
    caller discards the message (the shard worker skips its reply, so
    state advanced but the confirmation is lost).
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass, fields
from typing import Any, Iterable

__all__ = ["FaultInjector", "FaultPlan", "WORKER_RECV", "WORKER_REPLY"]

#: worker command-loop boundary: a command was received, not yet executed
WORKER_RECV = "worker.recv.after"
#: worker command-loop boundary: the reply is computed, not yet sent
WORKER_REPLY = "worker.reply.before"

_ACTIONS = ("sigkill", "raise", "torn", "bit_flip", "hang", "delay", "drop")
_BIT_FLIP_TARGETS = ("wal", "segment", "manifest")

#: default hang duration: longer than any sane request timeout, short
#: enough that a leaked sleeper cannot outlive a test session by much
_DEFAULT_HANG_SECONDS = 600.0


@dataclass(frozen=True, slots=True)
class FaultInjector:
    """One named fault: *what* happens, *where*, and on *which* hits.

    Parameters
    ----------
    point:
        Boundary name (a store kill point or a worker-loop boundary).
    action:
        One of ``sigkill | raise | torn | bit_flip | hang | delay | drop``.
    after:
        1-based hit of ``point`` on which the injector starts firing.
    times:
        How many consecutive hits fire (``0``: every hit from ``after``
        on -- the crash-loop shape).
    persist:
        Router-side: re-arm this injector in replacement workers spawned
        by failover (default ``False``: consumed by the first worker, so
        a replacement starts clean).
    errno_code:
        For ``raise``/``torn``: the ``OSError`` errno (default ENOSPC).
    duration:
        For ``hang``/``delay``: seconds to sleep.
    target / byte_offset:
        For ``bit_flip``: which artifact to corrupt (``wal`` --
        the open WAL segment, ``segment`` -- the last written cohort
        segment, ``manifest``) and where (byte offset; negative counts
        from the end; ``None``: the middle of the file).
    """

    point: str
    action: str
    after: int = 1
    times: int = 1
    persist: bool = False
    errno_code: int | None = None
    duration: float | None = None
    target: str = "wal"
    byte_offset: int | None = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {_ACTIONS}"
            )
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")
        if self.times < 0:
            raise ValueError(f"times must be >= 0 (0 = forever), got {self.times}")
        if self.action == "bit_flip" and self.target not in _BIT_FLIP_TARGETS:
            raise ValueError(
                f"bit_flip target must be one of {_BIT_FLIP_TARGETS}, "
                f"got {self.target!r}"
            )

    def to_dict(self) -> dict:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, document: dict) -> "FaultInjector":
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(f"unknown FaultInjector fields {unknown}")
        return cls(**document)


class FaultPlan:
    """A set of injectors sharing per-point hit counters.

    Install into a store with :meth:`install` (becomes its
    ``fault_hook`` and binds ``bit_flip`` targets), or call
    :meth:`fire` directly at cooperative boundaries.  Counters are
    per-process and start at zero -- a plan shipped to a worker process
    counts that worker's own boundary hits.
    """

    __slots__ = ("injectors", "_hits", "_fired", "_store")

    def __init__(self, injectors: Iterable[FaultInjector] = ()):
        self.injectors: tuple[FaultInjector, ...] = tuple(injectors)
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._store: Any = None

    def bind_store(self, store: Any) -> None:
        """Give ``bit_flip`` injectors access to the store's files."""
        self._store = store

    def install(self, store: Any) -> None:
        """Bind the store and become its ``fault_hook``."""
        self.bind_store(store)
        store.fault_hook = self.fire

    def fire(self, point: str) -> str | None:
        """Register one hit of ``point``; run any armed injector.

        Returns ``"drop"`` when a ``drop`` injector fired (the caller
        discards the message); ``None`` otherwise.  ``raise``/``torn``
        injectors raise, ``sigkill`` does not return.
        """
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        directive: str | None = None
        for index, injector in enumerate(self.injectors):
            if injector.point != point or hit < injector.after:
                continue
            fired = self._fired.get(index, 0)
            if injector.times and fired >= injector.times:
                continue
            self._fired[index] = fired + 1
            outcome = self._run(injector)
            if outcome is not None:
                directive = outcome
        return directive

    def _run(self, injector: FaultInjector) -> str | None:
        action = injector.action
        if action == "sigkill":
            # A real SIGKILL, not an exception: no finally, no atexit, no
            # checkpoint-on-close runs after the boundary.
            os.kill(os.getpid(), signal.SIGKILL)
        if action in ("raise", "torn"):
            code = injector.errno_code or errno.ENOSPC
            raise OSError(
                code,
                f"injected {action} fault at {injector.point!r} "
                f"({os.strerror(code)})",
            )
        if action == "hang":
            time.sleep(
                _DEFAULT_HANG_SECONDS
                if injector.duration is None
                else injector.duration
            )
            return None
        if action == "delay":
            time.sleep(injector.duration or 0.0)
            return None
        if action == "drop":
            return "drop"
        if action == "bit_flip":
            self._bit_flip(injector)
            return None
        raise AssertionError(f"unreachable action {action!r}")

    def _bit_flip(self, injector: FaultInjector) -> None:
        """Flip one bit of the injector's target file, deterministically."""
        store = self._store
        if store is None:
            raise RuntimeError(
                "bit_flip injector fired on an unbound FaultPlan; call "
                "plan.install(store) (or bind_store) first"
            )
        if injector.target == "wal":
            name = store._wal_open_name
            if name is None:
                raise RuntimeError("bit_flip target 'wal': no WAL segment open")
            if store._wal_handle is not None:
                store._wal_handle.flush()
            path = store._wal_path(name)
        elif injector.target == "segment":
            name = store.last_segment_name
            if name is None:
                raise RuntimeError(
                    "bit_flip target 'segment': no segment written yet"
                )
            path = store._segment_path(name)
        else:  # manifest
            path = store.manifest_path
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                raise RuntimeError(f"bit_flip: {path} is empty")
            offset = injector.byte_offset
            if offset is None:
                offset = size // 2
            elif offset < 0:
                offset = size + offset
            offset = min(max(offset, 0), size - 1)
            handle.seek(offset)
            original = handle.read(1)
            handle.seek(offset)
            handle.write(bytes((original[0] ^ 0x01,)))

    # ------------------------------------------------------------- plumbing

    def survivors(self) -> "FaultPlan":
        """The sub-plan a replacement worker should be armed with."""
        return FaultPlan(
            injector for injector in self.injectors if injector.persist
        )

    def to_dict(self) -> dict:
        return {
            "injectors": [injector.to_dict() for injector in self.injectors]
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FaultPlan":
        if not isinstance(document, dict) or "injectors" not in document:
            raise ValueError(
                "FaultPlan document must be {'injectors': [...]}, got "
                f"{type(document).__name__}"
            )
        return cls(
            FaultInjector.from_dict(entry) for entry in document["injectors"]
        )

    @classmethod
    def coerce(
        cls, plan: "FaultPlan | Iterable[FaultInjector] | dict"
    ) -> "FaultPlan":
        """Accept a plan, an injector iterable, or a ``to_dict`` document."""
        if isinstance(plan, FaultPlan):
            return plan
        if isinstance(plan, dict):
            return cls.from_dict(plan)
        return cls(plan)

    def __bool__(self) -> bool:
        return bool(self.injectors)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.injectors)!r})"
