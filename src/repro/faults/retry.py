"""Bounded exponential backoff for transient failures.

The policy is pure data (frozen dataclass) and fully deterministic: no
jitter, no clock reads in the schedule itself.  The router's supervision
layer uses it to decide how many times a transiently failing shard
request is re-sent and how long to sleep between attempts; it works just
as well standalone around any callable via :meth:`RetryPolicy.call`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

__all__ = ["RetryPolicy"]

_T = TypeVar("_T")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Up to ``attempts`` tries with bounded exponential backoff.

    ``delays()`` yields ``attempts - 1`` sleep durations:
    ``base_delay * multiplier**i`` capped at ``max_delay``.  With the
    defaults: 0.05 s, 0.2 s -- three attempts total, ~0.25 s worst-case
    added latency before the failure is surfaced.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 4.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1.0, got {self.multiplier}"
            )

    def delays(self) -> Iterator[float]:
        """Sleep durations between consecutive attempts."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], _T],
        *,
        transient: tuple[type[BaseException], ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
    ) -> _T:
        """Run ``fn``, retrying on ``transient`` exceptions.

        The final attempt's exception propagates unchanged.  ``sleep``
        is injectable so tests (and the supervision bench row) can run
        the schedule without wall-clock cost.
        """
        remaining = self.delays()
        while True:
            try:
                return fn()
            except transient:
                pause = next(remaining, None)
                if pause is None:
                    raise
                sleep(pause)
