"""Autocorrelation and periodogram based period detection.

:func:`find_length` mirrors the behaviour of the TSB-UAD utility of the
same name that the paper uses to estimate the seasonal period of real-world
series: it looks for the most prominent local maximum of the sample
autocorrelation function within a bounded lag range.  :func:`periodogram_period`
offers an FFT-based alternative and :func:`estimate_period` combines the
two with simple cross-checking.
"""

from __future__ import annotations

import numpy as np

from repro.utils import as_float_array, check_positive_int

__all__ = ["autocorrelation", "find_length", "periodogram_period", "estimate_period"]


def autocorrelation(values, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function computed with the FFT.

    Returns the autocorrelation for lags ``0 .. max_lag`` (inclusive),
    normalized so that lag 0 equals 1.
    """
    values = as_float_array(values, "values", min_length=2)
    n = values.size
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(check_positive_int(max_lag, "max_lag"), n - 1)
    centered = values - values.mean()
    size = int(2 ** np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centered, size)
    correlation = np.fft.irfft(spectrum * np.conjugate(spectrum), size)[: max_lag + 1]
    if correlation[0] <= 0:
        return np.concatenate([[1.0], np.zeros(max_lag)])
    return correlation / correlation[0]


def find_length(values, max_period: int = 1000, min_period: int = 3) -> int:
    """Estimate the dominant period via the autocorrelation function.

    This follows TSB-UAD's ``find_length``: compute the ACF, restrict it to
    ``[min_period, max_period]``, and return the most prominent local
    maximum.  When no convincing peak exists a fallback of ``min_period``
    multiples of the strongest periodogram frequency is attempted, and
    finally a default of 125 (TSB-UAD's fallback window) is returned.
    """
    values = as_float_array(values, "values", min_length=10)
    n = values.size
    max_period = min(check_positive_int(max_period, "max_period"), n // 2)
    min_period = check_positive_int(min_period, "min_period", minimum=2)
    if max_period <= min_period:
        return min_period

    acf = autocorrelation(values, max_lag=max_period)
    best_lag = None
    best_value = -np.inf
    for lag in range(min_period, max_period):
        is_local_maximum = acf[lag] >= acf[lag - 1] and acf[lag] >= acf[lag + 1]
        if is_local_maximum and acf[lag] > best_value:
            best_value = acf[lag]
            best_lag = lag
    if best_lag is not None and best_value > 0.1:
        return int(best_lag)

    fallback = periodogram_period(values, max_period=max_period)
    if fallback is not None:
        return int(fallback)
    return min(125, max_period)


def periodogram_period(values, max_period: int | None = None) -> int | None:
    """Return the period of the strongest periodogram peak, or ``None``.

    The candidate frequency must be strictly positive and correspond to a
    period of at least 2 samples and at most ``max_period``.
    """
    values = as_float_array(values, "values", min_length=8)
    n = values.size
    if max_period is None:
        max_period = n // 2
    centered = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centered)) ** 2
    frequencies = np.fft.rfftfreq(n)
    spectrum[0] = 0.0
    order = np.argsort(spectrum)[::-1]
    for index in order:
        frequency = frequencies[index]
        if frequency <= 0:
            continue
        period = int(round(1.0 / frequency))
        if 2 <= period <= max_period:
            return period
    return None


def estimate_period(values, max_period: int = 1000) -> int:
    """Combined estimator: ACF peak, cross-checked against the periodogram.

    When the two detectors roughly agree (within 10 %), the ACF estimate is
    returned; otherwise the ACF estimate is still preferred unless its peak
    was weak, in which case the periodogram estimate wins.
    """
    values = as_float_array(values, "values", min_length=10)
    acf_estimate = find_length(values, max_period=max_period)
    fft_estimate = periodogram_period(values, max_period=max_period)
    if fft_estimate is None:
        return acf_estimate
    if abs(acf_estimate - fft_estimate) <= 0.1 * max(acf_estimate, fft_estimate):
        return acf_estimate
    acf = autocorrelation(values, max_lag=min(max_period, values.size - 1))
    if acf_estimate < acf.size and acf[acf_estimate] >= 0.3:
        return acf_estimate
    return fft_estimate
