"""Seasonal period detection.

All non-deep methods in the paper take the period length ``T`` as input; on
real data it is estimated from the initialization window with an
autocorrelation-based detector (the paper uses TSB-UAD's ``find_length``).
This subpackage provides that detector plus a periodogram-based
alternative and a combined estimator.
"""

from repro.periodicity.detection import (
    autocorrelation,
    estimate_period,
    find_length,
    periodogram_period,
)

__all__ = [
    "autocorrelation",
    "estimate_period",
    "find_length",
    "periodogram_period",
]
