"""Sharding-tier error types.

Routing and worker-lifecycle failures subclass :class:`ShardingError` (a
``RuntimeError``: they describe a broken *process topology*, not bad
values).  The distinction that matters operationally is between

* :class:`WorkerCrashError` -- a worker died and could **not** be brought
  back (its store is gone, locked by a live foreign process, or recovery
  itself failed), and
* :class:`ShardFailoverError` -- a worker died mid-request but a
  replacement **has already recovered its store**; the error reports
  whether the in-flight batch survived into the WAL so the caller knows
  exactly whether to re-send it.

Every message names the shard, because a router-level failure surfaces on
an operator's console far from the worker that caused it.
"""

from __future__ import annotations

__all__ = [
    "ShardDownError",
    "ShardFailoverError",
    "ShardingError",
    "WorkerCrashError",
]


class ShardingError(RuntimeError):
    """Base class for shard-router and worker-lifecycle failures."""


class ShardDownError(ShardingError):
    """A shard's circuit breaker is open: it is marked ``down``.

    Raised by strict (non-``allow_partial``) requests that need a shard
    whose crash loop exhausted the router's failover budget
    (``circuit_threshold`` consecutive failures).  The shard stays down
    -- no automatic respawn attempts -- until an operator-level
    :meth:`~repro.sharding.ShardRouter.failover` succeeds, which resets
    the breaker.  ``skipped_keys`` names this request's keys that the
    shard would have served (empty for key-less requests like
    ``stats``); ``allow_partial=True`` requests serve the surviving
    shards instead and report the same keys in their degraded result.
    """

    def __init__(self, shard_id: str, detail: str, skipped_keys: tuple = ()):
        self.shard_id = str(shard_id)
        self.detail = str(detail)
        self.skipped_keys = tuple(skipped_keys)
        named = (
            f"; this request's affected keys: {list(self.skipped_keys)!r}"
            if self.skipped_keys
            else ""
        )
        super().__init__(
            f"shard {self.shard_id!r} is down (circuit breaker open): "
            f"{self.detail}{named}.  Fix the underlying fault and call "
            "router.failover() to bring it back, or pass "
            "allow_partial=True to serve the surviving shards"
        )


class WorkerCrashError(ShardingError):
    """A shard worker died and could not be replaced.

    Carries the ``shard_id`` and a human-readable ``detail`` of why
    recovery was not attempted or did not succeed.
    """

    def __init__(self, shard_id: str, detail: str):
        self.shard_id = str(shard_id)
        self.detail = str(detail)
        super().__init__(f"shard {self.shard_id!r}: {self.detail}")


class ShardFailoverError(ShardingError):
    """A worker died mid-request; a replacement has recovered its store.

    Raised *after* failover completed, so the cluster is already serving
    again when the caller sees this.  Attributes tell the caller what to
    do next:

    ``shard_id``
        The shard that failed over.  Shards that did *not* die already
        applied their slices of the batch (per-shard application is not
        transactional across the cluster), so recovery actions concern
        only this shard's slice -- the keys for which
        ``router.shard_of(key) == shard_id``.
    ``batch_survived``
        ``True``: this shard's slice reached the dead worker's WAL and
        replay applied it -- state advanced, do **not** re-send (only
        the batch's *results* were lost with the worker).  ``False``:
        the slice died before its WAL append -- re-send this shard's
        keys (and only them).
    ``recovered_points``
        Total observation count the replacement recovered to, for audit
        logs.
    ``cause``
        How the worker died: ``"crash"`` (process exited / was killed) or
        ``"hang"`` (alive but unresponsive past the request deadline; the
        router's watchdog SIGKILLed it before failing over).
    """

    def __init__(
        self,
        shard_id: str,
        batch_survived: bool,
        recovered_points: int,
        cause: str = "crash",
    ):
        self.shard_id = str(shard_id)
        self.batch_survived = bool(batch_survived)
        self.recovered_points = int(recovered_points)
        self.cause = str(cause)
        action = (
            "its slice of the in-flight batch survived into the WAL and "
            "is applied; do not re-send it"
            if batch_survived
            else "its slice of the in-flight batch was lost before the "
            "WAL append; re-send this shard's keys (other shards applied "
            "theirs)"
        )
        died = (
            "worker hung past its deadline (watchdog-killed)"
            if self.cause == "hang"
            else "worker died mid-request"
        )
        super().__init__(
            f"shard {self.shard_id!r}: {died} and a "
            f"replacement recovered its store "
            f"(recovered_points={self.recovered_points}); {action}"
        )
