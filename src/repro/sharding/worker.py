"""Shard worker: one process, one durable engine session, one store.

:func:`worker_main` is the entry point the router spawns (module-level so
it imports under both the ``fork`` and ``spawn`` start methods).  A
worker is deliberately boring: it opens its
:class:`~repro.durability.DirectoryCheckpointStore` **exclusively** (the
ownership lease is what makes failover safe -- a SIGKILLed worker's
lease reads stale by dead pid and the replacement takes it over), opens
or crash-recovers a :class:`~repro.streaming.MultiSeriesEngine` session
on it, reports readiness, and then serves a synchronous command loop
over its pipe: one pickled request in, one pickled reply out.

The hot path is ``ingest``: the router ships this worker's slice of a
columnar batch as a ``(round_keys, grid)`` pair -- **one message per
shard per batch**, never per-point IPC -- and the worker feeds it to
:meth:`~repro.streaming.MultiSeriesEngine.ingest_grid`, WAL-appending
before state advances as always, then replies with the
:class:`~repro.streaming.IngestResult` arrays for fan-in.

Failure discipline: **every** exception a command raises is replied as an
``error`` message -- ``(kind, message, traceback_text)`` -- and the loop
continues.  A worker process only dies from ``close``, a broken pipe
(router gone), or genuine kill injection; an unexpected ``OSError`` from
a full disk must *not* silently kill the worker and burn the router's
whole request timeout discovering it.

Fault injection is a :class:`~repro.faults.FaultPlan` shipped through
``options`` as a dict: it installs on the store's ``fault_hook`` (the
durability kill points) and fires at two loop boundaries of its own --
:data:`~repro.faults.WORKER_RECV` after a command arrives and
:data:`~repro.faults.WORKER_REPLY` before its reply is sent (a ``drop``
there loses the confirmation of applied work, the
watchdog-then-failover shape).
"""

from __future__ import annotations

import os
import traceback
from typing import Any

from repro.durability import DirectoryCheckpointStore
from repro.durability.lock import DEFAULT_STALE_AFTER
from repro.faults import WORKER_RECV, WORKER_REPLY, FaultInjector, FaultPlan
from repro.specs import EngineSpec
from repro.streaming.engine import MultiSeriesEngine

__all__ = ["worker_main"]


def _build_plan(options: dict) -> FaultPlan:
    """Assemble the worker's fault plan from its options.

    ``fault_plan`` ships a full :meth:`FaultPlan.to_dict` document; the
    legacy ``kill_point`` / ``kill_after`` pair (PR 7's oracle tests)
    translates into one SIGKILL injector appended to it.
    """
    plan = FaultPlan.from_dict(
        options.get("fault_plan") or {"injectors": []}
    )
    kill_point = options.get("kill_point")
    if kill_point is None:
        return plan
    return FaultPlan(
        plan.injectors
        + (
            FaultInjector(
                point=str(kill_point),
                action="sigkill",
                after=int(options.get("kill_after", 1)),
            ),
        )
    )


def _points_total(engine: MultiSeriesEngine) -> int:
    """Total observations applied, without materializing fleet stats."""
    return sum(engine._series_marker(key) for key in engine.keys())


def worker_main(
    conn: Any,
    shard_id: str,
    store_path: str,
    spec_dict: dict,
    options: dict | None = None,
) -> None:
    """Run one shard worker until ``close`` or process death.

    Parameters
    ----------
    conn:
        The worker end of a ``multiprocessing.Pipe`` (duplex).
    shard_id:
        This shard's ring identity (used only for error context here).
    store_path:
        Root directory of this shard's checkpoint store.
    spec_dict:
        The cluster's :class:`~repro.specs.EngineSpec` as a dict.  Always
        passed to ``MultiSeriesEngine.open`` -- on a populated store it
        cross-checks the manifest, so a worker pointed at the wrong
        shard's store fails loudly instead of serving someone else's
        series.
    options:
        ``wal_sync`` / ``stale_after`` store knobs;
        ``checkpoint_interval`` engine knob; ``recovery`` selects the
        engine's corruption policy (``strict|truncate|quarantine``);
        ``fault_plan`` (a :meth:`FaultPlan.to_dict` document) and the
        legacy ``kill_point`` + ``kill_after`` arm fault injection
        (tests only).
    """
    options = options or {}
    spec = EngineSpec.from_dict(spec_dict)
    try:
        store = DirectoryCheckpointStore(
            store_path,
            wal_sync=bool(options.get("wal_sync", False)),
            exclusive=True,
            stale_after=options.get("stale_after", DEFAULT_STALE_AFTER),
        )
        # The plan installs before recovery so injectors can target
        # recovery-time boundaries (e.g. crash while re-checkpointing a
        # quarantined store) as well as serving-time ones.
        plan = _build_plan(options)
        plan.install(store)
        had_state = store.read_manifest() is not None
        engine = MultiSeriesEngine.open(
            store,
            spec=spec,
            recovery=str(options.get("recovery", "strict")),
        )
        if options.get("checkpoint_interval") is not None:
            engine.checkpoint_interval = int(options["checkpoint_interval"])
    except BaseException as error:  # noqa: BLE001 -- reported, then re-raised
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        raise
    recovery_info = (
        engine.last_recovery.to_dict()
        if engine.last_recovery is not None and not engine.last_recovery.clean
        else None
    )
    conn.send(
        (
            "ready",
            {
                "pid": os.getpid(),
                "shard_id": shard_id,
                "recovered": had_state,
                "points_total": _points_total(engine),
                "recovery": recovery_info,
            },
        )
    )

    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            # Router gone: park the state safely and exit.
            engine.close(checkpoint=True)
            return
        try:
            # Heartbeat inside the try: a transiently failing lease
            # refresh (e.g. injected ENOSPC) must surface as an error
            # reply, not kill the worker.
            store.heartbeat()
            if plan.fire(WORKER_RECV) == "drop":
                # The command "never arrived": no reply, no state change.
                # The router's watchdog will time the request out.
                continue
            if command == "ingest":
                round_keys, grid = payload
                result = engine.ingest_grid(round_keys, grid)
                reply: Any = (
                    result.index,
                    result.value,
                    result.trend,
                    result.seasonal,
                    result.residual,
                    result.anomaly_score,
                    result.is_anomaly,
                    result.detection_residual,
                    result.live,
                )
            elif command == "ingest_rows":
                keys, values = payload
                result = engine.ingest((list(keys), values), columnar_results=True)
                reply = (
                    result.index,
                    result.value,
                    result.trend,
                    result.seasonal,
                    result.residual,
                    result.anomaly_score,
                    result.is_anomaly,
                    result.detection_residual,
                    result.live,
                )
            elif command == "process":
                key, value = payload
                reply = engine.process(key, value)
            elif command == "forecast":
                key, horizon = payload
                reply = engine.forecast(key, horizon)
            elif command == "stats":
                reply = engine.fleet_stats()
            elif command == "series_stats":
                reply = engine.series_stats(payload)
            elif command == "keys":
                reply = engine.keys()
            elif command == "points_total":
                reply = _points_total(engine)
            elif command == "checkpoint":
                reply = engine.checkpoint()
            elif command == "extract":
                reply = engine.extract_series(payload)
            elif command == "adopt":
                engine.adopt_series(payload)
                reply = len(payload)
            elif command == "ping":
                reply = "pong"
            elif command == "close":
                engine.close(checkpoint=bool(payload))
                conn.send(("ok", None))
                return
            else:
                raise ValueError(f"unknown worker command {command!r}")
        except Exception as error:  # noqa: BLE001 -- anything but process death
            # Reply with the full picture: kind and message drive the
            # router's retry/re-raise decision, the traceback rides along
            # for the operator (an unexpected error's stack is otherwise
            # lost with the worker's stderr).
            conn.send(
                (
                    "error",
                    (
                        type(error).__name__,
                        str(error),
                        traceback.format_exc(),
                    ),
                )
            )
            continue
        if plan.fire(WORKER_REPLY) == "drop":
            # State advanced but the confirmation is lost: the watchdog
            # escalates, failover replays the WAL, and the router learns
            # the batch survived.
            continue
        conn.send(("ok", reply))
