"""Shard worker: one process, one durable engine session, one store.

:func:`worker_main` is the entry point the router spawns (module-level so
it imports under both the ``fork`` and ``spawn`` start methods).  A
worker is deliberately boring: it opens its
:class:`~repro.durability.DirectoryCheckpointStore` **exclusively** (the
ownership lease is what makes failover safe -- a SIGKILLed worker's
lease reads stale by dead pid and the replacement takes it over), opens
or crash-recovers a :class:`~repro.streaming.MultiSeriesEngine` session
on it, reports readiness, and then serves a synchronous command loop
over its pipe: one pickled request in, one pickled reply out.

The hot path is ``ingest``: the router ships this worker's slice of a
columnar batch as a ``(round_keys, grid)`` pair -- **one message per
shard per batch**, never per-point IPC -- and the worker feeds it to
:meth:`~repro.streaming.MultiSeriesEngine.ingest_grid`, WAL-appending
before state advances as always, then replies with the
:class:`~repro.streaming.IngestResult` arrays for fan-in.

Validation failures (bad values, unknown keys) are replied as ``error``
messages and the loop continues; the worker only exits on ``close``, a
broken pipe (router gone), or a crash.  Fault injection for the
cross-process kill-point oracle arms the store's ``fault_hook`` to
``SIGKILL`` the process at a named durability boundary -- a real kill,
exercising real recovery.
"""

from __future__ import annotations

import os
import signal
from typing import Any

from repro.durability import DirectoryCheckpointStore
from repro.durability.lock import DEFAULT_STALE_AFTER
from repro.specs import EngineSpec
from repro.streaming.engine import MultiSeriesEngine

__all__ = ["worker_main"]


def _arm_kill(
    store: DirectoryCheckpointStore, kill_point: str, kill_after: int
) -> None:
    """SIGKILL this process at the ``kill_after``-th hit of ``kill_point``.

    SIGKILL (not an exception) so nothing -- no ``finally``, no atexit,
    no checkpoint-on-close -- runs after the boundary: the surviving
    on-disk state is exactly what a hardware-level process death leaves.
    """
    remaining = kill_after

    def hook(point: str) -> None:
        nonlocal remaining
        if point != kill_point:
            return
        remaining -= 1
        if remaining <= 0:
            os.kill(os.getpid(), signal.SIGKILL)

    store.fault_hook = hook


def _points_total(engine: MultiSeriesEngine) -> int:
    """Total observations applied, without materializing fleet stats."""
    return sum(engine._series_marker(key) for key in engine.keys())


def worker_main(
    conn: Any,
    shard_id: str,
    store_path: str,
    spec_dict: dict,
    options: dict | None = None,
) -> None:
    """Run one shard worker until ``close`` or process death.

    Parameters
    ----------
    conn:
        The worker end of a ``multiprocessing.Pipe`` (duplex).
    shard_id:
        This shard's ring identity (used only for error context here).
    store_path:
        Root directory of this shard's checkpoint store.
    spec_dict:
        The cluster's :class:`~repro.specs.EngineSpec` as a dict.  Always
        passed to ``MultiSeriesEngine.open`` -- on a populated store it
        cross-checks the manifest, so a worker pointed at the wrong
        shard's store fails loudly instead of serving someone else's
        series.
    options:
        ``wal_sync`` / ``stale_after`` store knobs;
        ``checkpoint_interval`` engine knob; ``kill_point`` +
        ``kill_after`` arm the fault-injection SIGKILL (tests only).
    """
    options = options or {}
    spec = EngineSpec.from_dict(spec_dict)
    try:
        store = DirectoryCheckpointStore(
            store_path,
            wal_sync=bool(options.get("wal_sync", False)),
            exclusive=True,
            stale_after=options.get("stale_after", DEFAULT_STALE_AFTER),
        )
        had_state = store.read_manifest() is not None
        engine = MultiSeriesEngine.open(store, spec=spec)
        if options.get("checkpoint_interval") is not None:
            engine.checkpoint_interval = int(options["checkpoint_interval"])
        kill_point = options.get("kill_point")
        if kill_point is not None:
            _arm_kill(store, str(kill_point), int(options.get("kill_after", 1)))
    except BaseException as error:  # noqa: BLE001 -- reported, then re-raised
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        raise
    conn.send(
        (
            "ready",
            {
                "pid": os.getpid(),
                "shard_id": shard_id,
                "recovered": had_state,
                "points_total": _points_total(engine),
            },
        )
    )

    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            # Router gone: park the state safely and exit.
            engine.close(checkpoint=True)
            return
        store.heartbeat()
        try:
            if command == "ingest":
                round_keys, grid = payload
                result = engine.ingest_grid(round_keys, grid)
                reply: Any = (
                    result.index,
                    result.value,
                    result.trend,
                    result.seasonal,
                    result.residual,
                    result.anomaly_score,
                    result.is_anomaly,
                    result.detection_residual,
                    result.live,
                )
            elif command == "ingest_rows":
                keys, values = payload
                result = engine.ingest((list(keys), values), columnar_results=True)
                reply = (
                    result.index,
                    result.value,
                    result.trend,
                    result.seasonal,
                    result.residual,
                    result.anomaly_score,
                    result.is_anomaly,
                    result.detection_residual,
                    result.live,
                )
            elif command == "process":
                key, value = payload
                reply = engine.process(key, value)
            elif command == "forecast":
                key, horizon = payload
                reply = engine.forecast(key, horizon)
            elif command == "stats":
                reply = engine.fleet_stats()
            elif command == "keys":
                reply = engine.keys()
            elif command == "points_total":
                reply = _points_total(engine)
            elif command == "checkpoint":
                reply = engine.checkpoint()
            elif command == "extract":
                reply = engine.extract_series(payload)
            elif command == "adopt":
                engine.adopt_series(payload)
                reply = len(payload)
            elif command == "ping":
                reply = "pong"
            elif command == "close":
                engine.close(checkpoint=bool(payload))
                conn.send(("ok", None))
                return
            else:
                raise ValueError(f"unknown worker command {command!r}")
        except (ValueError, TypeError, KeyError, RuntimeError) as error:
            conn.send(("error", (type(error).__name__, str(error))))
            continue
        conn.send(("ok", reply))
