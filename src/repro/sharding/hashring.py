"""Consistent hashing: stable key-to-shard assignment with minimal remap.

The router must send every observation for one series key to the same
shard across processes, restarts and host reboots -- which rules out
Python's builtin ``hash`` (salted per process by ``PYTHONHASHSEED``) and
motivates the classic consistent-hash ring: each shard owns
``virtual_nodes`` pseudo-random points on a 64-bit ring, a key maps to
the first shard point at or after its own hash (wrapping), and adding or
removing one shard remaps only the keys that fall into that shard's arcs
(about ``1/n`` of the space) instead of reshuffling everything -- the
property live shard migration depends on.

Tokens come from ``blake2b`` (stdlib, keyed-hash-quality dispersion,
stable everywhere); both shard points and keys hash through it.  Key
bytes are canonicalized per type (``str``/``bytes``/``int`` and a
``repr`` fallback) so equal keys always land on the same shard while
``"1"`` and ``1`` stay distinct.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Hashable, Iterable, Sequence

__all__ = ["ConsistentHashRing"]

#: default virtual nodes per shard: at 64 points each, the max/mean load
#: imbalance across 4-16 shards stays within a few percent.
DEFAULT_VIRTUAL_NODES = 64


def _token(data: bytes) -> int:
    """64-bit ring position of ``data`` (blake2b -- process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def _key_bytes(key: Hashable) -> bytes:
    """Canonical byte form of a series key (equal keys, equal bytes)."""
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8", "surrogatepass")
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, bool):
        # True == 1 as a dict key, so they must land on the same shard.
        return b"i:" + str(int(key)).encode()
    if isinstance(key, int):
        return b"i:" + str(key).encode()
    return b"r:" + repr(key).encode("utf-8", "backslashreplace")


class ConsistentHashRing:
    """A consistent-hash ring over string shard ids.

    Parameters
    ----------
    shard_ids:
        Initial shards (order-independent: the ring layout depends only
        on the id strings).
    virtual_nodes:
        Ring points per shard; more points smooth the load distribution
        at a small memory/lookup cost.
    """

    def __init__(
        self,
        shard_ids: Iterable[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ):
        self.virtual_nodes = int(virtual_nodes)
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self._shards: set[str] = set()
        #: sorted ring tokens and the shard owning each, kept parallel
        self._tokens: list[int] = []
        self._owners: list[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------ membership

    @property
    def shard_ids(self) -> list[str]:
        """Current shards, sorted."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def _shard_tokens(self, shard_id: str) -> list[int]:
        return [
            _token(f"{shard_id}#{point}".encode())
            for point in range(self.virtual_nodes)
        ]

    def add_shard(self, shard_id: str) -> None:
        if not isinstance(shard_id, str) or not shard_id:
            raise ValueError("shard_id must be a non-empty string")
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._shards.add(shard_id)
        for token in self._shard_tokens(shard_id):
            at = bisect_right(self._tokens, token)
            self._tokens.insert(at, token)
            self._owners.insert(at, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        self._shards.remove(shard_id)
        keep = [
            (token, owner)
            for token, owner in zip(self._tokens, self._owners)
            if owner != shard_id
        ]
        self._tokens = [token for token, _owner in keep]
        self._owners = [owner for _token, owner in keep]

    # --------------------------------------------------------------- routing

    def shard_for(self, key: Hashable) -> str:
        """The shard owning ``key`` (first ring point at/after its hash)."""
        if not self._tokens:
            raise ValueError("cannot route on an empty ring (no shards)")
        at = bisect_right(self._tokens, _token(_key_bytes(key)))
        if at == len(self._tokens):
            at = 0
        return self._owners[at]

    def assignments(self, keys: Sequence[Hashable]) -> dict[str, list[int]]:
        """Partition key *positions* by owning shard.

        Returns ``{shard_id: [position, ...]}`` covering every position in
        ``keys`` exactly once, positions in input order -- the shape the
        router needs to slice a columnar batch per shard.
        """
        parts: dict[str, list[int]] = {}
        shard_for = self.shard_for
        for position, key in enumerate(keys):
            parts.setdefault(shard_for(key), []).append(position)
        return parts
