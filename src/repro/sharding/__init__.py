"""Sharded multi-process serving tier: route a keyed fleet across workers.

PR 5 made an engine plain data -- a spec in the manifest plus segments
and a WAL -- rebuildable on any worker from its
:class:`~repro.durability.CheckpointStore` alone.  This package is the
thing that contract was built for:

* :class:`ConsistentHashRing` -- process-independent (``blake2b``)
  consistent hashing of series keys onto shard ids, minimal remap on
  membership change;
* :class:`ShardSpec` / :class:`ClusterSpec` -- the tier as JSON-able
  data, mirroring :mod:`repro.specs`;
* the :mod:`worker <repro.sharding.worker>` -- one process, one durable
  engine session over one exclusively-locked store, serving a batched
  command loop (one message per shard per batch, never per-point IPC);
* :class:`ShardRouter` -- the front door: columnar fan-out/fan-in over
  the workers, checkpoint-handoff failover (a SIGKILLed worker's store
  is reopened by a replacement that replays the surviving WAL prefix
  bit-identically), and live shard add/remove by drain-and-adopt
  migration.

Start to finish::

    from repro.sharding import ClusterSpec, ShardRouter

    cluster = ClusterSpec.for_root(engine_spec, "/var/lib/fleet", n_shards=4)
    with ShardRouter(cluster) as router:
        result = router.ingest({key: values for ...})   # one msg per shard
        router.stats()                                   # aggregated fleet
"""

from repro.sharding.errors import (
    ShardDownError,
    ShardFailoverError,
    ShardingError,
    WorkerCrashError,
)
from repro.sharding.hashring import ConsistentHashRing
from repro.sharding.router import (
    ClusterStats,
    DegradedResult,
    FailoverReport,
    ShardHealth,
    ShardRouter,
)
from repro.sharding.spec import ClusterSpec, ShardSpec

__all__ = [
    "ClusterSpec",
    "ClusterStats",
    "ConsistentHashRing",
    "DegradedResult",
    "FailoverReport",
    "ShardDownError",
    "ShardFailoverError",
    "ShardHealth",
    "ShardRouter",
    "ShardSpec",
    "ShardingError",
    "WorkerCrashError",
]
