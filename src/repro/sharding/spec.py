"""Declarative cluster configuration: shards as data.

A sharded deployment is described the same way everything else in this
codebase is -- as JSON-able frozen dataclasses that round-trip through
``to_dict``/``from_dict`` (and ``to_json``/``from_json``), mirroring
:mod:`repro.specs`:

* :class:`ShardSpec` -- one worker: a stable ``shard_id`` (its identity
  on the consistent-hash ring) plus the filesystem path of its
  :class:`~repro.durability.DirectoryCheckpointStore`;
* :class:`ClusterSpec` -- the whole tier: the shared
  :class:`~repro.specs.EngineSpec` every worker runs, the shard list,
  and the ring's ``virtual_nodes``.

Because a cluster spec is plain data it can live in a config file, ship
to an orchestrator, or be rebuilt from the JSON alone -- and because each
shard's *state* lives entirely in its store, a cluster spec plus the
store directories is a complete, restartable description of a running
tier.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Mapping

from repro.sharding.hashring import DEFAULT_VIRTUAL_NODES
from repro.specs import EngineSpec

__all__ = ["ClusterSpec", "ShardSpec"]


def _reject_unknown_keys(data: Mapping, allowed: tuple, context: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(
            f"{context}: unknown keys {sorted(unknown)}; expected a subset "
            f"of {list(allowed)}"
        )


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a ring identity plus its checkpoint-store location."""

    shard_id: str
    store_path: str

    def __post_init__(self) -> None:
        if not isinstance(self.shard_id, str) or not self.shard_id:
            raise ValueError("ShardSpec.shard_id must be a non-empty string")
        if not isinstance(self.store_path, str) or not self.store_path:
            raise ValueError("ShardSpec.store_path must be a non-empty string")

    def to_dict(self) -> dict:
        return {"shard_id": self.shard_id, "store_path": self.store_path}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShardSpec":
        _reject_unknown_keys(data, ("shard_id", "store_path"), cls.__name__)
        for required in ("shard_id", "store_path"):
            if required not in data:
                raise ValueError(
                    f"ShardSpec: missing required key {required!r}"
                )
        return cls(
            shard_id=data["shard_id"], store_path=data["store_path"]
        )

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ShardSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ClusterSpec:
    """A whole sharded tier: shared engine spec + shard list + ring shape."""

    engine: EngineSpec
    shards: tuple = ()
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES

    def __post_init__(self) -> None:
        if not isinstance(self.engine, EngineSpec):
            raise ValueError("ClusterSpec.engine must be an EngineSpec")
        shards = tuple(self.shards)
        if not shards:
            raise ValueError("ClusterSpec.shards must name at least one shard")
        seen_ids: set[str] = set()
        seen_paths: set[str] = set()
        for shard in shards:
            if not isinstance(shard, ShardSpec):
                raise ValueError(
                    "ClusterSpec.shards entries must be ShardSpec instances"
                )
            if shard.shard_id in seen_ids:
                raise ValueError(
                    f"ClusterSpec: duplicate shard_id {shard.shard_id!r}"
                )
            if shard.store_path in seen_paths:
                raise ValueError(
                    f"ClusterSpec: duplicate store_path {shard.store_path!r} "
                    "(two shards writing one store would corrupt it; the "
                    "store ownership lock would reject the second anyway)"
                )
            seen_ids.add(shard.shard_id)
            seen_paths.add(shard.store_path)
        object.__setattr__(self, "shards", shards)
        if (
            not isinstance(self.virtual_nodes, int)
            or isinstance(self.virtual_nodes, bool)
            or self.virtual_nodes < 1
        ):
            raise ValueError("ClusterSpec.virtual_nodes must be an int >= 1")

    @classmethod
    def for_root(
        cls,
        engine: EngineSpec,
        root: "str | os.PathLike",
        n_shards: int,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> "ClusterSpec":
        """Conventional layout: ``n_shards`` stores under one directory.

        Shard ids are ``shard-000`` ... and each store lives at
        ``<root>/<shard_id>`` -- the quick way to stand up a local tier.
        """
        if not isinstance(n_shards, int) or n_shards < 1:
            raise ValueError("n_shards must be an int >= 1")
        root = os.fspath(root)
        shards = tuple(
            ShardSpec(
                shard_id=f"shard-{index:03d}",
                store_path=os.path.join(root, f"shard-{index:03d}"),
            )
            for index in range(n_shards)
        )
        return cls(engine=engine, shards=shards, virtual_nodes=virtual_nodes)

    def shard(self, shard_id: str) -> ShardSpec:
        """The :class:`ShardSpec` named ``shard_id`` (``KeyError`` if absent)."""
        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        raise KeyError(f"cluster has no shard {shard_id!r}")

    def to_dict(self) -> dict:
        return {
            "engine": self.engine.to_dict(),
            "shards": [shard.to_dict() for shard in self.shards],
            "virtual_nodes": self.virtual_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClusterSpec":
        allowed = ("engine", "shards", "virtual_nodes")
        _reject_unknown_keys(data, allowed, cls.__name__)
        for required in ("engine", "shards"):
            if required not in data:
                raise ValueError(
                    f"ClusterSpec: missing required key {required!r}"
                )
        spec = {
            "engine": EngineSpec.from_dict(data["engine"]),
            "shards": tuple(
                ShardSpec.from_dict(entry) for entry in data["shards"]
            ),
        }
        if "virtual_nodes" in data:
            spec["virtual_nodes"] = data["virtual_nodes"]
        return cls(**spec)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        return cls.from_dict(json.loads(text))
